"""Language-level operations on DSL regexes (equivalence, inclusion, witnesses).

These are the queries the paper's evaluation relies on: deciding whether a
synthesized regex is *the intended one* (language equivalence with the ground
truth) and producing distinguishing strings for the iterative example-feedback
protocol of Section 8.1.
"""

from __future__ import annotations

from typing import Optional

from repro.dsl import ast
from repro.automata.compiler import CompiledRegex, _compile_dfa
from repro.automata.minterms import alphabet_for


def _joint_compile(left: ast.Regex, right: ast.Regex, extra_chars: str = ""):
    alphabet = alphabet_for(left, right, extra_chars=extra_chars)
    return (
        alphabet,
        CompiledRegex(left, alphabet, _compile_dfa(left, alphabet)),
        CompiledRegex(right, alphabet, _compile_dfa(right, alphabet)),
    )


def regex_equivalent(left: ast.Regex, right: ast.Regex) -> bool:
    """True iff the two regexes denote the same language over the alphabet."""
    _, compiled_left, compiled_right = _joint_compile(left, right)
    return compiled_left.dfa.equivalent(compiled_right.dfa)


def regex_included(left: ast.Regex, right: ast.Regex) -> bool:
    """True iff every string matched by ``left`` is matched by ``right``."""
    _, compiled_left, compiled_right = _joint_compile(left, right)
    return compiled_left.dfa.difference(compiled_right.dfa).is_empty()


def difference_witness(left: ast.Regex, right: ast.Regex) -> Optional[str]:
    """A shortest string matched by ``left`` but not ``right`` (None if included)."""
    alphabet, compiled_left, compiled_right = _joint_compile(left, right)
    difference = compiled_left.dfa.difference(compiled_right.dfa)
    symbols = difference.shortest_accepted()
    if symbols is None:
        return None
    return "".join(alphabet.representative(symbol) for symbol in symbols)


def language_nonempty(regex: ast.Regex) -> bool:
    """True iff the regex matches at least one string.

    Used to filter degenerate benchmarks out of the generated DeepRegex-style
    dataset, mirroring the filtering step of Section 7.
    """
    from repro.automata.compiler import compile_regex

    return not compile_regex(regex).is_empty()
