"""Compiled membership: concrete DSL subtrees as process-global automata.

The PBE engine answers the same question — "does this interned concrete
regex match this example string?" — thousands of times per run, and warm
service workers answer it for the *same* interned nodes across requests.
This module turns that access pattern into compile-once/run-many:

* a regex is compiled **once** to a Thompson NFA over its own minterm
  alphabet (:mod:`repro.automata.minterms`), with epsilon closures folded
  into per-state bitmask transition tables at compile time;
* membership queries run the NFA as a **lazily determinized** DFA — state
  sets are integer bitmasks, and each discovered ``(state set, symbol)``
  successor is memoised as an integer-indexed transition row, so the second
  subject through an automaton walks plain list lookups;
* compiled artifacts live in a process-global cache keyed by the interned
  node (:mod:`repro.caches`), so hash-consing makes reuse free across
  candidate regexes, engine runs, and service requests alike.

Regexes the backend cannot compile within budget (pathological ``Not``/
``And`` nests blowing the state cap) are remembered as uncompilable and the
caller falls back to the match-set evaluator — the DFA path is a pure
accelerator, never a semantics change.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.caches import CACHE_LOCK, GuardedDict, cache_insert, register_cache
from repro.dsl import ast
from repro.automata.compiler import _Builder
from repro.automata.minterms import Alphabet, predicates_of

#: Compile budget: reject NFAs larger than this instead of determinizing
#: them lazily forever.  Engine-generated candidates are tens of states;
#: only adversarial ``Not``/``And`` towers (whose sub-DFAs are embedded
#: eagerly by the compiler) approach the cap.
MAX_NFA_STATES = 4096

#: Eviction threshold for the compiled-artifact cache.  Artifacts are a few
#: KB each; the cap only exists so a pathological workload cannot grow the
#: process without bound.
MAX_CACHED_AUTOMATA = 65536

#: Per-alphabet cap on memoised subject encodings.
_MAX_ENCODINGS = 4096


class MembershipStats:
    """Global counters for the compiled-membership cache.

    ``hits``/``misses`` count artifact-cache lookups, ``compiled`` the
    automata actually built, ``uncompilable`` the regexes that blew the
    compile budget (and fell back to the match-set evaluator), and
    ``compile_seconds`` the wall clock spent compiling.  Increments are
    plain (benign-race) telemetry, same as the other global cache stats.
    """

    __slots__ = ("hits", "misses", "compiled", "uncompilable", "compile_seconds")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.compiled = 0
        self.uncompilable = 0
        self.compile_seconds = 0.0

    def snapshot(self) -> Tuple[int, int, int, int, float]:
        return (self.hits, self.misses, self.compiled, self.uncompilable, self.compile_seconds)

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.compiled = 0
        self.uncompilable = 0
        self.compile_seconds = 0.0


MEMBERSHIP_CACHE_STATS = MembershipStats()

#: Sentinel cached for regexes the compiler refused (state-cap blowup).
_UNCOMPILABLE = object()

#: predicate-set key -> (Alphabet, subject-encoding memo).  Regexes with the
#: same character classes share one alphabet, and therefore one encoding of
#: each example string.
_ALPHABET_CACHE: Dict[frozenset, "_SharedAlphabet"] = register_cache(
    "automata.membership.alphabets", GuardedDict()
)

#: interned regex node -> MembershipAutomaton | _UNCOMPILABLE.  Strong
#: references are deliberate: keeping the interned node alive is what makes
#: the artifact reusable by the next request that builds the same subtree.
_AUTOMATON_CACHE: Dict[ast.Regex, object] = register_cache(
    "automata.membership.automata", GuardedDict()
)


class _SharedAlphabet:
    """An :class:`Alphabet` plus a memo of encoded subjects.

    One instance is shared by every automaton built from the same predicate
    set, so each example string is translated to minterm symbols once per
    alphabet rather than once per (regex, subject) query.
    """

    __slots__ = ("alphabet", "_encodings")

    def __init__(self, alphabet: Alphabet):
        self.alphabet = alphabet
        self._encodings: Dict[str, Optional[Tuple[int, ...]]] = {}

    def encode(self, text: str) -> Optional[Tuple[int, ...]]:
        encodings = self._encodings
        symbols = encodings.get(text, _UNCOMPILABLE)
        if symbols is not _UNCOMPILABLE:
            return symbols  # type: ignore[return-value]
        raw = self.alphabet.encode(text)
        symbols = tuple(raw) if raw is not None else None
        if len(encodings) >= _MAX_ENCODINGS:
            with CACHE_LOCK:
                if len(encodings) >= _MAX_ENCODINGS:
                    encodings.clear()
        cache_insert(encodings, text, symbols)
        return symbols


def _shared_alphabet(regex: ast.Regex) -> _SharedAlphabet:
    predicates = predicates_of([regex])
    key = frozenset(predicates)
    shared = _ALPHABET_CACHE.get(key)
    if shared is None:
        shared = cache_insert(_ALPHABET_CACHE, key, _SharedAlphabet(Alphabet(predicates)))
    return shared


class MembershipAutomaton:
    """A concrete regex compiled for whole-string membership queries.

    The underlying NFA is run as a lazily determinized DFA: subset states
    are integer bitmasks interned to dense ids, and the transition function
    is a per-id row of symbol slots filled in on first use.  Exploration is
    serialised by :data:`repro.caches.CACHE_LOCK`; the steady-state query
    path (every transition already discovered) is lock-free list indexing.
    """

    __slots__ = (
        "regex",
        "shared",
        "num_nfa_states",
        "_trans",
        "_accept_mask",
        "_ids",
        "_masks",
        "_rows",
        "_accepting",
    )

    def __init__(
        self,
        regex: ast.Regex,
        shared: _SharedAlphabet,
        trans: List[Dict[int, int]],
        start_mask: int,
        accept_mask: int,
    ):
        self.regex = regex
        self.shared = shared
        self.num_nfa_states = len(trans)
        self._trans = trans
        self._accept_mask = accept_mask
        self._ids: Dict[int, int] = {start_mask: 0}
        self._masks: List[int] = [start_mask]
        self._rows: List[List[Optional[int]]] = [[None] * shared.alphabet.num_symbols]
        self._accepting: List[bool] = [bool(start_mask & accept_mask)]

    @property
    def num_dfa_states(self) -> int:
        """Subset states discovered so far (grows as subjects are run)."""
        return len(self._masks)

    def accepts(self, text: str) -> bool:
        """Whole-string membership.  ``text`` must be over the alphabet."""
        symbols = self.shared.encode(text)
        if symbols is None:
            raise ValueError(
                f"subject contains characters outside the printable alphabet: {text!r}"
            )
        rows = self._rows
        state = 0
        for symbol in symbols:
            nxt = rows[state][symbol]
            if nxt is None:
                nxt = self._explore(state, symbol)
            state = nxt
        return self._accepting[state]

    def accepts_batch(self, texts: Sequence[str]) -> List[bool]:
        """Membership of every subject in one pass over the automaton.

        The artifact is compiled once; each subject then costs one walk of
        the (shared, progressively memoised) transition rows — later
        subjects reuse every ``(state set, symbol)`` successor the earlier
        ones discovered.
        """
        return [self.accepts(text) for text in texts]

    def end_masks(self, text: str) -> List[int]:
        """Match-set view: row ``i`` has bit ``j`` set iff ``text[i:j]`` matches.

        Same table shape as :meth:`repro.dsl.semantics.Matcher.match_sets`,
        which is what the three-way differential tests compare against.
        """
        symbols = self.shared.encode(text)
        if symbols is None:
            raise ValueError(
                f"subject contains characters outside the printable alphabet: {text!r}"
            )
        n = len(symbols)
        rows = self._rows
        accepting = self._accepting
        out: List[int] = []
        for i in range(n + 1):
            state = 0
            mask = (1 << i) if accepting[0] else 0
            for j in range(i, n):
                nxt = rows[state][symbols[j]]
                if nxt is None:
                    nxt = self._explore(state, symbols[j])
                state = nxt
                if accepting[state]:
                    mask |= 1 << (j + 1)
            out.append(mask)
        return out

    # -- internal -----------------------------------------------------------

    def _explore(self, state: int, symbol: int) -> int:
        """Discover the successor of ``(state, symbol)`` (serialised)."""
        with CACHE_LOCK:
            row = self._rows[state]
            cached = row[symbol]
            if cached is not None:
                return cached
            trans = self._trans
            mask = 0
            remaining = self._masks[state]
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                delta = trans[low.bit_length() - 1].get(symbol)
                if delta:
                    mask |= delta
            target = self._ids.get(mask)
            if target is None:
                target = len(self._masks)
                self._ids[mask] = target
                self._masks.append(mask)
                self._rows.append([None] * self.shared.alphabet.num_symbols)
                self._accepting.append(bool(mask & self._accept_mask))
            row[symbol] = target
            return target


def _closure_masks(epsilon: Dict[int, set], num_states: int) -> List[int]:
    """Bitmask epsilon-closure of each state (iterative, cycle-safe)."""
    masks: List[int] = []
    for state in range(num_states):
        mask = 1 << state
        seen = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for target in epsilon.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    mask |= 1 << target
                    stack.append(target)
        masks.append(mask)
    return masks


def _compile(regex: ast.Regex) -> Optional[MembershipAutomaton]:
    shared = _shared_alphabet(regex)
    try:
        builder = _Builder(shared.alphabet)
        entry, exit_ = builder.build(regex)
    except (ValueError, RecursionError, MemoryError):
        return None
    nfa = builder.nfa
    if nfa.num_states > MAX_NFA_STATES:
        return None
    closures = _closure_masks(nfa.epsilon, nfa.num_states)
    trans: List[Dict[int, int]] = []
    for state in range(nfa.num_states):
        folded: Dict[int, int] = {}
        for symbol, targets in nfa.transitions.get(state, {}).items():
            mask = 0
            for target in targets:
                mask |= closures[target]
            folded[symbol] = mask
        trans.append(folded)
    return MembershipAutomaton(regex, shared, trans, closures[entry], 1 << exit_)


def membership_automaton(regex: ast.Regex) -> Optional[MembershipAutomaton]:
    """The compiled automaton of a concrete regex, or None if uncompilable.

    Artifacts are cached process-globally by interned node: the first call
    per regex compiles, every later call — same engine run, later run, or a
    different service request warming the same worker — is a dict hit.
    """
    stats = MEMBERSHIP_CACHE_STATS
    cached = _AUTOMATON_CACHE.get(regex)
    if cached is not None:
        stats.hits += 1
        return None if cached is _UNCOMPILABLE else cached  # type: ignore[return-value]
    stats.misses += 1
    started = time.perf_counter()
    automaton = _compile(regex)
    stats.compile_seconds += time.perf_counter() - started
    if automaton is None:
        stats.uncompilable += 1
    else:
        stats.compiled += 1
    if len(_AUTOMATON_CACHE) >= MAX_CACHED_AUTOMATA:
        with CACHE_LOCK:
            if len(_AUTOMATON_CACHE) >= MAX_CACHED_AUTOMATA:
                _AUTOMATON_CACHE.clear()
    stored = cache_insert(
        _AUTOMATON_CACHE, regex, automaton if automaton is not None else _UNCOMPILABLE
    )
    return None if stored is _UNCOMPILABLE else stored  # type: ignore[return-value]
