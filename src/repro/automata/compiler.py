"""Compilation of DSL regexes into automata.

The compiler performs a Thompson-style construction over a minterm alphabet.
``Not`` and ``And`` are handled by determinizing the relevant sub-automata and
applying complement / product, exactly the way the paper uses the Brics
library ("we use the automata complementation and intersection functionalities
... in addition to simple membership queries").
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dsl import ast
from repro.dsl.charclass import chars_of
from repro.automata.dfa import DFA
from repro.automata.minterms import Alphabet, alphabet_for
from repro.automata.nfa import NFA


class _Builder:
    """Accumulates Thompson fragments inside a single NFA."""

    def __init__(self, alphabet: Alphabet):
        self.alphabet = alphabet
        self.nfa = NFA(alphabet.num_symbols)

    # Fragments are (entry, exit) state pairs.

    def build(self, regex: ast.Regex) -> Tuple[int, int]:
        if isinstance(regex, ast.CharClass):
            return self._char_class(regex)
        if isinstance(regex, ast.Epsilon):
            return self._epsilon_fragment()
        if isinstance(regex, ast.EmptySet):
            return self.nfa.new_state(), self.nfa.new_state()
        if isinstance(regex, ast.StartsWith):
            return self.build(ast.Concat(regex.arg, ast.KleeneStar(ast.ANY)))
        if isinstance(regex, ast.EndsWith):
            return self.build(ast.Concat(ast.KleeneStar(ast.ANY), regex.arg))
        if isinstance(regex, ast.Contains):
            return self.build(
                ast.Concat(ast.KleeneStar(ast.ANY), ast.Concat(regex.arg, ast.KleeneStar(ast.ANY)))
            )
        if isinstance(regex, ast.Not):
            return self._embed_dfa(_compile_dfa(regex.arg, self.alphabet).complement())
        if isinstance(regex, ast.And):
            left = _compile_dfa(regex.left, self.alphabet)
            right = _compile_dfa(regex.right, self.alphabet)
            return self._embed_dfa(left.intersect(right))
        if isinstance(regex, ast.Optional):
            return self._optional(regex.arg)
        if isinstance(regex, ast.KleeneStar):
            return self._star(regex.arg)
        if isinstance(regex, ast.Concat):
            return self._concat(self.build(regex.left), self.build(regex.right))
        if isinstance(regex, ast.Or):
            return self._union(self.build(regex.left), self.build(regex.right))
        if isinstance(regex, ast.Repeat):
            return self._repeat(regex.arg, regex.count)
        if isinstance(regex, ast.RepeatAtLeast):
            fragment = self._repeat(regex.arg, regex.count)
            star = self._star(regex.arg)
            return self._concat(fragment, star)
        if isinstance(regex, ast.RepeatRange):
            fragment = self._repeat(regex.arg, regex.low)
            for _ in range(regex.high - regex.low):
                fragment = self._concat(fragment, self._optional(regex.arg))
            return fragment
        raise TypeError(f"unknown regex node: {regex!r}")

    # -- fragment helpers ---------------------------------------------------

    def _epsilon_fragment(self) -> Tuple[int, int]:
        entry = self.nfa.new_state()
        exit_ = self.nfa.new_state()
        self.nfa.add_epsilon(entry, exit_)
        return entry, exit_

    def _char_class(self, regex: ast.CharClass) -> Tuple[int, int]:
        predicate = chars_of(regex.kind)
        entry = self.nfa.new_state()
        exit_ = self.nfa.new_state()
        for symbol, block in enumerate(self.alphabet.blocks):
            overlap = block & predicate
            if not overlap:
                continue
            if overlap != block:
                raise ValueError(
                    "alphabet is not refined enough for this regex; build it with "
                    "alphabet_for() over every regex involved"
                )
            self.nfa.add_transition(entry, symbol, exit_)
        return entry, exit_

    def _concat(self, left: Tuple[int, int], right: Tuple[int, int]) -> Tuple[int, int]:
        self.nfa.add_epsilon(left[1], right[0])
        return left[0], right[1]

    def _union(self, left: Tuple[int, int], right: Tuple[int, int]) -> Tuple[int, int]:
        entry = self.nfa.new_state()
        exit_ = self.nfa.new_state()
        self.nfa.add_epsilon(entry, left[0])
        self.nfa.add_epsilon(entry, right[0])
        self.nfa.add_epsilon(left[1], exit_)
        self.nfa.add_epsilon(right[1], exit_)
        return entry, exit_

    def _optional(self, arg: ast.Regex) -> Tuple[int, int]:
        # The empty-string bypass needs fresh entry/exit states: wiring an
        # epsilon straight across the inner fragment is wrong whenever that
        # fragment's entry is re-enterable (embedded complement/product DFAs
        # loop back through their start state), because a run that has already
        # consumed input can return to the entry and leak out via the bypass.
        inner_entry, inner_exit = self.build(arg)
        entry = self.nfa.new_state()
        exit_ = self.nfa.new_state()
        self.nfa.add_epsilon(entry, inner_entry)
        self.nfa.add_epsilon(entry, exit_)
        self.nfa.add_epsilon(inner_exit, exit_)
        return entry, exit_

    def _star(self, arg: ast.Regex) -> Tuple[int, int]:
        inner_entry, inner_exit = self.build(arg)
        entry = self.nfa.new_state()
        exit_ = self.nfa.new_state()
        self.nfa.add_epsilon(entry, exit_)
        self.nfa.add_epsilon(entry, inner_entry)
        self.nfa.add_epsilon(inner_exit, inner_entry)
        self.nfa.add_epsilon(inner_exit, exit_)
        return entry, exit_

    def _repeat(self, arg: ast.Regex, count: int) -> Tuple[int, int]:
        fragment = self.build(arg)
        for _ in range(count - 1):
            fragment = self._concat(fragment, self.build(arg))
        return fragment

    def _embed_dfa(self, dfa: DFA) -> Tuple[int, int]:
        """Copy a DFA into the NFA as a fragment with a single exit state."""
        state_map = {state: self.nfa.new_state() for state in range(dfa.num_states)}
        exit_ = self.nfa.new_state()
        for state in range(dfa.num_states):
            for symbol in range(dfa.num_symbols):
                self.nfa.add_transition(state_map[state], symbol, state_map[dfa.transitions[state][symbol]])
            if state in dfa.accepting:
                self.nfa.add_epsilon(state_map[state], exit_)
        return state_map[dfa.start], exit_


def _compile_dfa(regex: ast.Regex, alphabet: Alphabet) -> DFA:
    builder = _Builder(alphabet)
    entry, exit_ = builder.build(regex)
    nfa = builder.nfa
    nfa.start = entry
    nfa.accepting = {exit_}
    return nfa.determinize().minimize()


class CompiledRegex:
    """A DSL regex compiled to a minimal DFA over a minterm alphabet."""

    def __init__(self, regex: ast.Regex, alphabet: Alphabet, dfa: DFA):
        self.regex = regex
        self.alphabet = alphabet
        self.dfa = dfa

    def accepts(self, text: str) -> bool:
        """Membership query for a concrete string."""
        symbols = self.alphabet.encode(text)
        if symbols is None:
            return False
        return self.dfa.accepts_symbols(symbols)

    def is_empty(self) -> bool:
        """True iff the regex matches no string over the alphabet."""
        return self.dfa.is_empty()

    def shortest_example(self) -> Optional[str]:
        """A shortest accepted string, or None if the language is empty."""
        symbols = self.dfa.shortest_accepted()
        if symbols is None:
            return None
        return "".join(self.alphabet.representative(symbol) for symbol in symbols)


def compile_regex(
    regex: ast.Regex,
    alphabet: Optional[Alphabet] = None,
    extra_chars: str = "",
) -> CompiledRegex:
    """Compile a DSL regex to a :class:`CompiledRegex`.

    If no alphabet is supplied, a minterm alphabet refined for ``regex`` (plus
    ``extra_chars``) is constructed automatically.
    """
    if alphabet is None:
        alphabet = alphabet_for(regex, extra_chars=extra_chars)
    return CompiledRegex(regex, alphabet, _compile_dfa(regex, alphabet))
