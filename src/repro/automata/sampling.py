"""String sampling from regex languages.

The original datasets were annotated by humans: Mechanical-Turk workers and
colleagues of the authors wrote positive and negative examples for each
benchmark.  We replace the human annotators with automaton-based sampling:

* positive examples are random accepting walks of the DFA (biased towards
  short, natural-looking strings),
* negative examples are *near misses* — mutations of positive examples that
  fall outside the language — plus samples of the complement language,
* :func:`distinguishing_examples` produces the extra examples handed to the
  tools in later iterations of the Section 8.1 protocol (strings on which the
  candidate regex and the ground truth disagree).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.dsl import ast
from repro.dsl.semantics import Matcher
from repro.automata.compiler import CompiledRegex, compile_regex
from repro.automata.minterms import alphabet_for


class SamplingError(ValueError):
    """A language-level reason example sampling cannot proceed.

    Typed (rather than an empty return or a silent loop to the mutation
    limit) so corpus-scale callers can count the reason and move on.
    """

    reason = "sampling-error"


class EmptyLanguageError(SamplingError):
    """The regex matches no string at all — there is nothing to sample."""

    reason = "empty-language"


class UniversalLanguageError(SamplingError):
    """The regex matches *every* string over the DSL alphabet (e.g. ``.*``):
    no negative example exists, so asking for one is an error."""

    reason = "universal-language"


def language_is_empty(regex: ast.Regex, compiled: Optional[CompiledRegex] = None) -> bool:
    """Exact emptiness over the DSL alphabet, with a cheap static fast path."""
    from repro.analysis.analyzer import facts_of_regex

    if facts_of_regex(regex).empty:
        return True
    return (compiled or compile_regex(regex)).is_empty()


def language_is_universal(regex: ast.Regex, extra_chars: str = "") -> bool:
    """Exact universality over the DSL alphabet (complement emptiness).

    The static analyzer's ``universal`` fact is the fast path; the decision
    procedure is a complement DFA built over a minterm alphabet refined for
    the regex (plus ``extra_chars``), which partitions the full printable
    alphabet — so emptiness of the complement is exact, not approximate.
    """
    from repro.analysis.analyzer import facts_of_regex

    facts = facts_of_regex(regex)
    if facts.universal:
        return True
    if facts.empty:
        return False
    return compile_regex(ast.Not(regex), extra_chars=extra_chars).is_empty()


def enumerate_language(regex: ast.Regex, max_length: int, limit: int = 200) -> List[str]:
    """Enumerate accepted strings in length-lexicographic order (up to ``limit``)."""
    compiled = compile_regex(regex)
    dfa, alphabet = compiled.dfa, compiled.alphabet
    live = dfa.live_states()
    results: List[str] = []
    frontier: List[tuple[int, str]] = [(dfa.start, "")]
    for length in range(max_length + 1):
        next_frontier: List[tuple[int, str]] = []
        for state, text in frontier:
            if state in dfa.accepting and len(text) == length:
                results.append(text)
                if len(results) >= limit:
                    return results
            for symbol in range(dfa.num_symbols):
                target = dfa.transitions[state][symbol]
                if target in live:
                    next_frontier.append((target, text + alphabet.representative(symbol)))
        frontier = next_frontier
    return results


def _random_accepting_walk(
    compiled: CompiledRegex, rng: random.Random, max_length: int
) -> Optional[str]:
    """One random accepted string, steered towards accepting states."""
    dfa, alphabet = compiled.dfa, compiled.alphabet
    live = dfa.live_states()
    if dfa.start not in live:
        return None
    state = dfa.start
    text: List[str] = []
    for _ in range(max_length):
        # Stop early (with some probability) once we are in an accepting state
        # so sampled examples stay short like human-written ones.
        if state in dfa.accepting and rng.random() < 0.35:
            return "".join(text)
        choices = [
            (symbol, dfa.transitions[state][symbol])
            for symbol in range(dfa.num_symbols)
            if dfa.transitions[state][symbol] in live
        ]
        if not choices:
            break
        symbol, state = rng.choice(choices)
        block = sorted(alphabet.blocks[symbol])
        text.append(rng.choice(block))
    if state in dfa.accepting:
        return "".join(text)
    return None


def sample_positive(
    regex: ast.Regex,
    count: int,
    rng: Optional[random.Random] = None,
    max_length: int = 18,
) -> List[str]:
    """Sample up to ``count`` distinct strings accepted by the regex."""
    rng = rng or random.Random(0)
    compiled = compile_regex(regex)
    samples: set[str] = set()
    shortest = compiled.shortest_example()
    if shortest is not None:
        samples.add(shortest)
    attempts = 0
    while len(samples) < count and attempts < count * 60:
        attempts += 1
        sample = _random_accepting_walk(compiled, rng, max_length)
        if sample is not None:
            samples.add(sample)
    return sorted(samples, key=lambda s: (len(s), s))[:count]


def _mutate(text: str, rng: random.Random, alphabet_chars: Sequence[str]) -> str:
    """Apply one random edit (insert / delete / substitute / duplicate)."""
    operations = ["insert", "substitute", "duplicate"]
    if text:
        operations.append("delete")
    operation = rng.choice(operations)
    position = rng.randrange(len(text) + 1) if text else 0
    char = rng.choice(alphabet_chars)
    if operation == "insert":
        return text[:position] + char + text[position:]
    if operation == "delete":
        position = rng.randrange(len(text))
        return text[:position] + text[position + 1 :]
    if operation == "substitute":
        if not text:
            return char
        position = rng.randrange(len(text))
        return text[:position] + char + text[position + 1 :]
    # duplicate a chunk (models "too many digits" style negatives)
    if not text:
        return char
    start = rng.randrange(len(text))
    end = min(len(text), start + rng.randint(1, 4))
    return text[:start] + text[start:end] * 2 + text[end:]


def sample_negative(
    regex: ast.Regex,
    count: int,
    rng: Optional[random.Random] = None,
    positives: Optional[Iterable[str]] = None,
    max_length: int = 18,
) -> List[str]:
    """Sample up to ``count`` strings rejected by the regex.

    Preference is given to near-miss mutations of positive examples, which is
    how human annotators typically construct negative examples; if mutations
    do not produce enough rejected strings, samples of the complement language
    are added.

    Degenerate languages fail fast with a typed error instead of burning the
    whole mutation budget: :class:`UniversalLanguageError` when no negative
    exists at all (e.g. ``.*``), :class:`EmptyLanguageError` when the language
    is empty (a "near miss" of nothing is meaningless).  Both are detected up
    front — statically via :mod:`repro.analysis` facts when provable, exactly
    via the (complement) DFA otherwise.
    """
    rng = rng or random.Random(1)
    from repro.analysis.analyzer import facts_of_regex

    facts = facts_of_regex(regex)
    if facts.universal:
        raise UniversalLanguageError(
            f"{regex!r} matches every string; it has no negative examples"
        )
    if facts.empty or (positives is None and compile_regex(regex).is_empty()):
        raise EmptyLanguageError(
            f"{regex!r} matches no string; near-miss negatives are undefined"
        )
    positives = list(positives) if positives is not None else sample_positive(regex, 5, rng)
    alphabet_chars = sorted(
        {c for p in positives for c in p} | set("0aA.-_ ")
    )
    complement = compile_regex(ast.Not(regex), extra_chars="".join(alphabet_chars))
    if complement.is_empty():
        raise UniversalLanguageError(
            f"{regex!r} matches every string over the DSL alphabet; "
            "it has no negative examples"
        )
    negatives: set[str] = set()
    attempts = 0
    matcher_cache: dict[str, bool] = {}

    def rejected(candidate: str) -> bool:
        if candidate not in matcher_cache:
            matcher_cache[candidate] = not Matcher(candidate).matches(regex)
        return matcher_cache[candidate]

    while len(negatives) < count and attempts < count * 80 and positives:
        attempts += 1
        base = rng.choice(positives)
        candidate = _mutate(base, rng, alphabet_chars)
        for _ in range(rng.randint(0, 2)):
            candidate = _mutate(candidate, rng, alphabet_chars)
        if len(candidate) <= max_length and candidate and rejected(candidate):
            negatives.add(candidate)

    walks = 0
    while len(negatives) < count and walks < count * 40:
        walks += 1
        sample = _random_accepting_walk(complement, rng, max_length)
        if sample and rejected(sample):
            negatives.add(sample)
    return sorted(negatives, key=lambda s: (len(s), s))[:count]


def distinguishing_examples(
    truth: ast.Regex,
    candidate: ast.Regex,
    count: int = 2,
    rng: Optional[random.Random] = None,
) -> List[tuple[str, bool]]:
    """Strings on which ``candidate`` and ``truth`` disagree.

    Returns up to ``count`` pairs ``(string, should_match)`` where
    ``should_match`` is the ground-truth label.  Used to simulate the user
    adding two clarifying examples per failed iteration (Section 8.1).
    """
    rng = rng or random.Random(2)
    alphabet = alphabet_for(truth, candidate)
    from repro.automata.compiler import _compile_dfa

    truth_dfa = _compile_dfa(truth, alphabet)
    candidate_dfa = _compile_dfa(candidate, alphabet)
    results: List[tuple[str, bool]] = []

    false_negatives = truth_dfa.difference(candidate_dfa)  # should match but doesn't
    false_positives = candidate_dfa.difference(truth_dfa)  # shouldn't match but does
    for dfa, label in ((false_negatives, True), (false_positives, False)):
        symbols = dfa.shortest_accepted()
        if symbols is not None:
            text = "".join(alphabet.representative(symbol) for symbol in symbols)
            results.append((text, label))
    rng.shuffle(results)
    return results[:count]
