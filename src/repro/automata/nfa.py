"""Nondeterministic finite automata with epsilon transitions (Thompson style)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Set


class NFA:
    """An NFA over integer symbols with a single start state.

    States are integers.  Transitions map ``(state, symbol) -> set of states``
    and ``epsilon[state] -> set of states``.  The class offers the structural
    combinators needed by the regex compiler (union, concatenation, star,
    repetition) plus subset construction to a :class:`repro.automata.dfa.DFA`.
    """

    def __init__(self, num_symbols: int):
        self.num_symbols = num_symbols
        self.num_states = 0
        self.start: int = self.new_state()
        self.accepting: Set[int] = set()
        self.transitions: Dict[int, Dict[int, Set[int]]] = {}
        self.epsilon: Dict[int, Set[int]] = {}

    # -- construction -------------------------------------------------------

    def new_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    def add_transition(self, src: int, symbol: int, dst: int) -> None:
        self.transitions.setdefault(src, {}).setdefault(symbol, set()).add(dst)

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon.setdefault(src, set()).add(dst)

    def add_accepting(self, state: int) -> None:
        self.accepting.add(state)

    # -- evaluation ---------------------------------------------------------

    def epsilon_closure(self, states: Set[int]) -> FrozenSet[int]:
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon.get(state, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def step(self, states: FrozenSet[int], symbol: int) -> FrozenSet[int]:
        moved: Set[int] = set()
        for state in states:
            moved |= self.transitions.get(state, {}).get(symbol, set())
        return self.epsilon_closure(moved)

    def accepts_symbols(self, symbols: list[int]) -> bool:
        current = self.epsilon_closure({self.start})
        for symbol in symbols:
            current = self.step(current, symbol)
            if not current:
                return False
        return any(state in self.accepting for state in current)

    # -- determinization ----------------------------------------------------

    def determinize(self) -> "DFA":
        """Subset construction producing a complete DFA (with a sink state)."""
        from repro.automata.dfa import DFA

        start = self.epsilon_closure({self.start})
        index: Dict[FrozenSet[int], int] = {start: 0}
        worklist = [start]
        dfa_transitions: list[list[int]] = []
        accepting: Set[int] = set()
        subsets: list[FrozenSet[int]] = [start]

        while worklist:
            subset = worklist.pop()
            state_id = index[subset]
            while len(dfa_transitions) <= state_id:
                dfa_transitions.append([-1] * self.num_symbols)
            if any(s in self.accepting for s in subset):
                accepting.add(state_id)
            for symbol in range(self.num_symbols):
                target = self.step(subset, symbol)
                target_id = index.get(target)
                if target_id is None:
                    target_id = len(index)
                    index[target] = target_id
                    subsets.append(target)
                    worklist.append(target)
                dfa_transitions[state_id][symbol] = target_id

        while len(dfa_transitions) < len(index):
            dfa_transitions.append([-1] * self.num_symbols)

        return DFA(
            num_symbols=self.num_symbols,
            transitions=dfa_transitions,
            start=0,
            accepting=accepting,
        )
