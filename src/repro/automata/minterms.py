"""Minterm alphabets: partitioning the concrete alphabet into equivalence classes.

Automata over the full printable-ASCII alphabet would carry ~95 outgoing
transitions per state.  Since any fixed set of regexes only distinguishes a
handful of character predicates (the character classes appearing in them), we
partition the alphabet into *minterms*: maximal sets of characters that every
predicate treats identically.  Automata then label transitions with minterm
ids, which keeps determinization and products small — the same trick Brics
uses with character intervals.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dsl import ast
from repro.dsl.charclass import PRINTABLE_ALPHABET, chars_of


class Alphabet:
    """A partition of the concrete alphabet into minterm blocks.

    Symbols are integers ``0 .. num_symbols-1``, each denoting one block of
    concrete characters that are indistinguishable to every predicate the
    alphabet was built from.
    """

    def __init__(self, predicates: Sequence[frozenset[str]], concrete: str = PRINTABLE_ALPHABET):
        signatures: dict[tuple[bool, ...], list[str]] = {}
        for char in concrete:
            signature = tuple(char in predicate for predicate in predicates)
            signatures.setdefault(signature, []).append(char)
        self.blocks: list[frozenset[str]] = [frozenset(chars) for chars in signatures.values()]
        self._symbol_of: dict[str, int] = {}
        for index, block in enumerate(self.blocks):
            for char in block:
                self._symbol_of[char] = index
        # Deterministic, readable representative per block (prefer digits and
        # letters over punctuation so sampled strings look natural).
        self._representative: list[str] = [
            min(block, key=lambda c: (not c.isalnum(), c)) for block in self.blocks
        ]

    @property
    def num_symbols(self) -> int:
        return len(self.blocks)

    def symbols(self) -> range:
        return range(len(self.blocks))

    def symbol_of(self, char: str) -> int | None:
        """Minterm id of a concrete character (None if outside the alphabet)."""
        return self._symbol_of.get(char)

    def encode(self, text: str) -> list[int] | None:
        """Encode a string as a list of minterm ids (None if any char is unknown)."""
        out: list[int] = []
        for char in text:
            symbol = self._symbol_of.get(char)
            if symbol is None:
                return None
            out.append(symbol)
        return out

    def representative(self, symbol: int) -> str:
        """A concrete character belonging to the given minterm block."""
        return self._representative[symbol]

    def symbols_of_predicate(self, predicate: frozenset[str]) -> set[int]:
        """All minterm ids whose block is contained in ``predicate``.

        Blocks are built from the predicates, so each block is either fully
        inside or fully outside any of those predicates.
        """
        return {
            index
            for index, block in enumerate(self.blocks)
            if block <= predicate
        }


def predicates_of(regexes: Iterable[ast.Regex]) -> list[frozenset[str]]:
    """Collect the distinct character predicates used by a set of regexes."""
    seen: list[frozenset[str]] = []
    found: set[frozenset[str]] = set()
    for regex in regexes:
        for node in regex.walk():
            if isinstance(node, ast.CharClass):
                predicate = chars_of(node.kind)
                if predicate not in found:
                    found.add(predicate)
                    seen.append(predicate)
    return seen


def alphabet_for(*regexes: ast.Regex, extra_chars: str = "") -> Alphabet:
    """Build a minterm alphabet refined enough for all the given regexes.

    ``extra_chars`` adds singleton predicates for characters that must remain
    distinguishable even if no regex mentions them (e.g. characters appearing
    in user examples).
    """
    predicates = predicates_of(regexes)
    predicates.extend(frozenset(c) for c in extra_chars if c in PRINTABLE_ALPHABET)
    return Alphabet(predicates)
