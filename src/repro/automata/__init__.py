"""Finite-automaton substrate.

The original Regel implementation relies on the Brics ``dk.brics.automaton``
Java library for language-level reasoning: membership queries, complement and
intersection (needed for ``Not`` and ``And``), and equivalence checks used in
the evaluation.  This package is a from-scratch Python replacement providing:

* :mod:`repro.automata.minterms` — partition of the concrete alphabet into
  equivalence classes so automata stay small,
* :mod:`repro.automata.nfa` / :mod:`repro.automata.dfa` — Thompson NFAs and
  deterministic automata with product, complement and Hopcroft minimisation,
* :mod:`repro.automata.compiler` — compilation of DSL regexes to automata,
* :mod:`repro.automata.operations` — equivalence / inclusion / witness
  extraction on compiled regexes,
* :mod:`repro.automata.sampling` — positive and near-miss negative example
  generation used to build the datasets (Section 7 of the paper).
"""

from repro.automata.minterms import Alphabet, alphabet_for
from repro.automata.nfa import NFA
from repro.automata.dfa import DFA
from repro.automata.compiler import CompiledRegex, compile_regex
from repro.automata.membership import (
    MEMBERSHIP_CACHE_STATS,
    MembershipAutomaton,
    MembershipStats,
    membership_automaton,
)
from repro.automata.operations import (
    regex_equivalent,
    regex_included,
    difference_witness,
    language_nonempty,
)
from repro.automata.sampling import (
    EmptyLanguageError,
    SamplingError,
    UniversalLanguageError,
    enumerate_language,
    language_is_empty,
    language_is_universal,
    sample_positive,
    sample_negative,
    distinguishing_examples,
)

__all__ = [
    "Alphabet",
    "alphabet_for",
    "NFA",
    "DFA",
    "CompiledRegex",
    "compile_regex",
    "MEMBERSHIP_CACHE_STATS",
    "MembershipAutomaton",
    "MembershipStats",
    "membership_automaton",
    "regex_equivalent",
    "regex_included",
    "difference_witness",
    "language_nonempty",
    "EmptyLanguageError",
    "SamplingError",
    "UniversalLanguageError",
    "enumerate_language",
    "language_is_empty",
    "language_is_universal",
    "sample_positive",
    "sample_negative",
    "distinguishing_examples",
]
