"""Deterministic finite automata over minterm symbols.

DFAs here are *complete*: every state has a transition on every symbol (a
dead/sink state absorbs the rest).  This makes complement a matter of flipping
accepting states and keeps product constructions simple.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple


class DFA:
    """A complete DFA over symbols ``0 .. num_symbols-1``."""

    def __init__(
        self,
        num_symbols: int,
        transitions: List[List[int]],
        start: int,
        accepting: Set[int],
    ):
        self.num_symbols = num_symbols
        self.transitions = transitions
        self.start = start
        self.accepting = set(accepting)

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    # -- evaluation ---------------------------------------------------------

    def accepts_symbols(self, symbols: Iterable[int]) -> bool:
        state = self.start
        for symbol in symbols:
            state = self.transitions[state][symbol]
        return state in self.accepting

    # -- boolean operations -------------------------------------------------

    def complement(self) -> "DFA":
        accepting = {s for s in range(self.num_states) if s not in self.accepting}
        return DFA(self.num_symbols, [row[:] for row in self.transitions], self.start, accepting)

    def product(self, other: "DFA", combine: Callable[[bool, bool], bool]) -> "DFA":
        """Product construction; ``combine`` decides acceptance of a pair."""
        if self.num_symbols != other.num_symbols:
            raise ValueError("product requires DFAs over the same alphabet")
        index: Dict[Tuple[int, int], int] = {}
        transitions: List[List[int]] = []
        accepting: Set[int] = set()
        start_pair = (self.start, other.start)
        index[start_pair] = 0
        transitions.append([-1] * self.num_symbols)
        queue = deque([start_pair])
        while queue:
            pair = queue.popleft()
            state_id = index[pair]
            a, b = pair
            if combine(a in self.accepting, b in other.accepting):
                accepting.add(state_id)
            for symbol in range(self.num_symbols):
                target = (self.transitions[a][symbol], other.transitions[b][symbol])
                target_id = index.get(target)
                if target_id is None:
                    target_id = len(index)
                    index[target] = target_id
                    transitions.append([-1] * self.num_symbols)
                    queue.append(target)
                transitions[state_id][symbol] = target_id
        return DFA(self.num_symbols, transitions, 0, accepting)

    def intersect(self, other: "DFA") -> "DFA":
        return self.product(other, lambda a, b: a and b)

    def union(self, other: "DFA") -> "DFA":
        return self.product(other, lambda a, b: a or b)

    def difference(self, other: "DFA") -> "DFA":
        return self.product(other, lambda a, b: a and not b)

    def symmetric_difference(self, other: "DFA") -> "DFA":
        return self.product(other, lambda a, b: a != b)

    # -- language queries ---------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the automaton accepts no string."""
        return self.shortest_accepted() is None

    def shortest_accepted(self) -> Optional[List[int]]:
        """A shortest accepted symbol sequence, or None if the language is empty."""
        if self.start in self.accepting:
            return []
        visited = {self.start}
        queue: deque[Tuple[int, Tuple[int, ...]]] = deque([(self.start, ())])
        while queue:
            state, path = queue.popleft()
            for symbol in range(self.num_symbols):
                target = self.transitions[state][symbol]
                if target in visited:
                    continue
                new_path = path + (symbol,)
                if target in self.accepting:
                    return list(new_path)
                visited.add(target)
                queue.append((target, new_path))
        return None

    def live_states(self) -> Set[int]:
        """States from which an accepting state is reachable."""
        reverse: Dict[int, Set[int]] = {}
        for state, row in enumerate(self.transitions):
            for target in row:
                reverse.setdefault(target, set()).add(state)
        live = set(self.accepting)
        queue = deque(self.accepting)
        while queue:
            state = queue.popleft()
            for prev in reverse.get(state, ()):
                if prev not in live:
                    live.add(prev)
                    queue.append(prev)
        return live

    def count_strings(self, length: int) -> int:
        """Number of accepted symbol sequences of exactly the given length."""
        counts = {self.start: 1}
        for _ in range(length):
            nxt: Dict[int, int] = {}
            for state, count in counts.items():
                for symbol in range(self.num_symbols):
                    target = self.transitions[state][symbol]
                    nxt[target] = nxt.get(target, 0) + count
            counts = nxt
        return sum(count for state, count in counts.items() if state in self.accepting)

    # -- minimisation -------------------------------------------------------

    def minimize(self) -> "DFA":
        """Hopcroft minimisation (on reachable states)."""
        reachable = self._reachable_states()
        states = sorted(reachable)
        remap = {state: i for i, state in enumerate(states)}
        transitions = [
            [remap[self.transitions[state][symbol]] for symbol in range(self.num_symbols)]
            for state in states
        ]
        accepting = {remap[s] for s in self.accepting if s in reachable}
        n = len(states)

        accepting_block = frozenset(accepting)
        rest_block = frozenset(set(range(n)) - accepting)
        partition: Set[frozenset] = {b for b in (accepting_block, rest_block) if b}
        worklist: Set[frozenset] = set(partition)

        # Precompute reverse transitions per symbol.
        reverse: List[Dict[int, Set[int]]] = [dict() for _ in range(self.num_symbols)]
        for state in range(n):
            for symbol in range(self.num_symbols):
                reverse[symbol].setdefault(transitions[state][symbol], set()).add(state)

        while worklist:
            splitter = worklist.pop()
            for symbol in range(self.num_symbols):
                predecessors: Set[int] = set()
                for target in splitter:
                    predecessors |= reverse[symbol].get(target, set())
                if not predecessors:
                    continue
                new_partition: Set[frozenset] = set()
                for block in partition:
                    inside = block & predecessors
                    outside = block - predecessors
                    if inside and outside:
                        new_partition.add(frozenset(inside))
                        new_partition.add(frozenset(outside))
                        if block in worklist:
                            worklist.discard(block)
                            worklist.add(frozenset(inside))
                            worklist.add(frozenset(outside))
                        else:
                            worklist.add(
                                frozenset(inside) if len(inside) <= len(outside) else frozenset(outside)
                            )
                    else:
                        new_partition.add(block)
                partition = new_partition

        block_of: Dict[int, int] = {}
        blocks = sorted(partition, key=lambda b: min(b))
        for block_id, block in enumerate(blocks):
            for state in block:
                block_of[state] = block_id
        new_transitions = []
        for block in blocks:
            representative = min(block)
            new_transitions.append(
                [block_of[transitions[representative][symbol]] for symbol in range(self.num_symbols)]
            )
        new_accepting = {block_of[s] for s in accepting}
        return DFA(self.num_symbols, new_transitions, block_of[remap[self.start]], new_accepting)

    def _reachable_states(self) -> Set[int]:
        seen = {self.start}
        queue = deque([self.start])
        while queue:
            state = queue.popleft()
            for target in self.transitions[state]:
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def equivalent(self, other: "DFA") -> bool:
        """Language equivalence via emptiness of the symmetric difference."""
        return self.symmetric_difference(other).is_empty()
