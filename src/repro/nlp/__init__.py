"""Semantic parsing of English descriptions into hierarchical sketches (Section 5).

The original Regel builds its sketch generator on the SEMPRE framework.  This
package is a self-contained replacement implementing the same formalism:

* a tokenizer with light normalisation (:mod:`repro.nlp.tokenizer`),
* a lexicon of word → DSL-concept rules (:mod:`repro.nlp.lexicon`,
  Appendix B lexical rules),
* compositional grammar rules with semantic functions
  (:mod:`repro.nlp.grammar`, Appendix B compositional rules),
* a chart parser with token skipping and beam search
  (:mod:`repro.nlp.parser`),
* a discriminative log-linear model over rule and span features with
  training from (utterance, gold sketch) pairs (:mod:`repro.nlp.model`),
* the top-level :class:`repro.nlp.sketch_gen.SemanticParser` that produces a
  ranked, de-duplicated list of h-sketches for an utterance (Section 5.3 and
  the "Eliminating redundant sketches" optimisation of Section 6).
"""

from repro.nlp.tokenizer import tokenize, Token
from repro.nlp.lexicon import LexicalEntry, LEXICON
from repro.nlp.grammar import Rule, GRAMMAR_RULES
from repro.nlp.parser import Derivation, ChartParser
from repro.nlp.model import LogLinearModel
from repro.nlp.sketch_gen import SemanticParser

__all__ = [
    "tokenize",
    "Token",
    "LexicalEntry",
    "LEXICON",
    "Rule",
    "GRAMMAR_RULES",
    "Derivation",
    "ChartParser",
    "LogLinearModel",
    "SemanticParser",
]
