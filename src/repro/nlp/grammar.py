"""Compositional grammar rules and their semantic functions (Appendix B.1).

Each rule maps a sequence of constituent categories to a target category and
a semantic function that builds the derivation's value.  Values are:

* DSL regexes for ``$PROGRAM`` (concrete building blocks),
* hierarchical sketches for ``$SKETCH``,
* integers for ``$INT``,
* marker strings for the ``$OP_*`` categories.

A semantic function may return ``None`` to signal that the rule does not
apply to the given values (e.g. a malformed integer range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.dsl import ast as rast
from repro.sketch import ast as sast
from repro.sketch.ast import ConcreteRegexSketch, Hole, OpSketch


@dataclass(frozen=True)
class Rule:
    """One compositional rule ``target ← rhs`` with semantic function ``fn``."""

    name: str
    target: str
    rhs: tuple[str, ...]
    fn: Callable[..., object]


# ---------------------------------------------------------------------------
# Helpers for semantic functions
# ---------------------------------------------------------------------------

def _as_sketch(value: object) -> sast.Sketch:
    """Coerce a rule argument (regex or sketch) into a sketch."""
    if isinstance(value, sast.Sketch):
        return value
    if isinstance(value, rast.Regex):
        return ConcreteRegexSketch(value)
    raise TypeError(f"cannot treat {value!r} as a sketch")


def _hole(*values: object) -> Hole:
    components = []
    for value in values:
        if isinstance(value, Hole):
            components.extend(value.components)
        else:
            components.append(_as_sketch(value))
    # Drop duplicates while preserving order (redundant-sketch elimination).
    unique: list[sast.Sketch] = []
    for component in components:
        if component not in unique:
            unique.append(component)
    return Hole(tuple(unique))


def _binary_sketch(op: str, left: object, right: object) -> sast.Sketch:
    return OpSketch(op, (_as_sketch(left), _as_sketch(right)))


def _unary_sketch(op: str, arg: object) -> sast.Sketch:
    return OpSketch(op, (_as_sketch(arg),))


def _positive(*values: int) -> bool:
    return all(isinstance(v, int) and v >= 1 for v in values)


# ---------------------------------------------------------------------------
# Semantic functions (program level — concrete regexes)
# ---------------------------------------------------------------------------

def identity(value):  # $PROGRAM <- $CC | $CONST
    return value


def repeat_fn(count, program):  # "3 digits"
    if not _positive(count):
        return None
    return rast.Repeat(program, count)


def length_fn(program, _marker, count):  # "digits with length 8"
    if not _positive(count):
        return None
    return rast.Repeat(program, count)


def length_prefix_fn(_marker, count, program):  # "length of 8 characters"
    if not _positive(count):
        return None
    return rast.Repeat(program, count)


def atmax_fn(_marker, count, program):  # "at most 3 numbers"
    if not _positive(count):
        return None
    return rast.RepeatRange(program, 1, count)


def atmax_post_fn(count, program, _marker):  # "3 numbers at most"
    return atmax_fn(_marker, count, program)


def atleast_fn(_marker, count, program):  # "at least 2 letters"
    if not _positive(count):
        return None
    return rast.RepeatAtLeast(program, count)


def ormore_fn(count, _marker, program):  # "2 or more digits"
    if not _positive(count):
        return None
    return rast.RepeatAtLeast(program, count)


def ormore_post_fn(program, count, _marker):  # "digits, 2 or more"
    if not _positive(count):
        return None
    return rast.RepeatAtLeast(program, count)


def int_range_fn(low, _marker, high, program):  # "2 to 5 digits"
    if not _positive(low, high) or low > high:
        return None
    return rast.RepeatRange(program, low, high)


def int_or_fn(low, _marker, high, program):  # "6 or 8 digits"
    if not _positive(low, high):
        return None
    if low > high:
        return None
    return rast.Or(rast.Repeat(program, low), rast.Repeat(program, high))


def oneplus_fn(_marker, program):  # "one or more digits"
    return rast.RepeatAtLeast(program, 1)


def kleene_fn(_marker, program):  # "any number of letters"
    return rast.KleeneStar(program)


def only_fn(_marker, program):  # "only digits"
    return rast.RepeatAtLeast(program, 1)


def optional_fn(_marker, program):  # "an optional sign"
    return rast.Optional(program)


def optional_post_fn(program, _marker):
    return rast.Optional(program)


def decimal_fn(_marker):  # "a decimal number"
    return rast.Concat(
        rast.RepeatAtLeast(rast.NUM, 1),
        rast.Optional(rast.Concat(rast.literal("."), rast.RepeatAtLeast(rast.NUM, 1))),
    )


def concat_programs_fn(left, _marker, right):
    return rast.Concat(left, right)


def follow_programs_fn(left, _marker, right):
    return rast.Concat(right, left)


def or_programs_fn(left, _marker, right):
    return rast.Or(left, right)


# ---------------------------------------------------------------------------
# Semantic functions (sketch level)
# ---------------------------------------------------------------------------

def sketch_fn(*programs):  # a group of building blocks -> constrained hole
    return _hole(*programs)


def concat_sketch_fn(left, _marker, right):
    return _binary_sketch("Concat", left, right)


def follow_sketch_fn(left, _marker, right):
    return _binary_sketch("Concat", right, left)


def or_sketch_fn(left, _marker, right):
    return _binary_sketch("Or", left, right)


def and_sketch_fn(left, _marker, right):
    return _binary_sketch("And", left, right)


def startwith_fn(_marker, arg):
    return _unary_sketch("StartsWith", arg)


def startwith_post_fn(arg, _marker):
    return _unary_sketch("StartsWith", arg)


def endwith_fn(_marker, arg):
    return _unary_sketch("EndsWith", arg)


def endwith_post_fn(arg, _marker):
    return _unary_sketch("EndsWith", arg)


def contain_fn(_marker, arg):
    return _unary_sketch("Contains", arg)


def notcontain_fn(_marker, arg):
    return OpSketch("Not", (_unary_sketch("Contains", arg),))


def not_fn(_marker, arg):
    return _unary_sketch("Not", arg)


def separated_by_fn(item, _marker, separator):  # "numbers separated by commas"
    item_sketch = _as_sketch(item)
    return OpSketch(
        "Concat",
        (item_sketch, _binary_sketch("Concat", separator, item_sketch)),
    )


def between_fn(separator, _marker, item):  # "a comma between the numbers"
    return separated_by_fn(item, _marker, separator)


# ---------------------------------------------------------------------------
# The grammar
# ---------------------------------------------------------------------------

GRAMMAR_RULES: list[Rule] = [
    # Program-level building blocks.
    Rule("prog_cc", "$PROGRAM", ("$CC",), identity),
    Rule("prog_const", "$PROGRAM", ("$CONST",), identity),
    Rule("prog_decimal", "$PROGRAM", ("$OP_DECIMAL",), decimal_fn),
    Rule("prog_repeat", "$PROGRAM", ("$INT", "$PROGRAM"), repeat_fn),
    Rule("prog_length", "$PROGRAM", ("$PROGRAM", "$OP_LENGTH", "$INT"), length_fn),
    Rule("prog_length_pre", "$PROGRAM", ("$OP_LENGTH", "$INT", "$PROGRAM"), length_prefix_fn),
    Rule("prog_atmax", "$PROGRAM", ("$OP_ATMAX", "$INT", "$PROGRAM"), atmax_fn),
    Rule("prog_atmax_post", "$PROGRAM", ("$INT", "$PROGRAM", "$OP_ATMAX"), atmax_post_fn),
    Rule("prog_atleast", "$PROGRAM", ("$OP_ATLEAST", "$INT", "$PROGRAM"), atleast_fn),
    Rule("prog_ormore", "$PROGRAM", ("$INT", "$OP_ORMORE", "$PROGRAM"), ormore_fn),
    Rule("prog_int_range", "$PROGRAM", ("$INT", "$OP_RANGE", "$INT", "$PROGRAM"), int_range_fn),
    Rule("prog_int_or", "$PROGRAM", ("$INT", "$OP_OR", "$INT", "$PROGRAM"), int_or_fn),
    Rule("prog_oneplus", "$PROGRAM", ("$OP_ONEPLUS", "$PROGRAM"), oneplus_fn),
    Rule("prog_kleene", "$PROGRAM", ("$OP_KLEENE", "$PROGRAM"), kleene_fn),
    Rule("prog_only", "$PROGRAM", ("$OP_ONLY", "$PROGRAM"), only_fn),
    Rule("prog_optional", "$PROGRAM", ("$OP_OPTIONAL", "$PROGRAM"), optional_fn),
    Rule("prog_optional_post", "$PROGRAM", ("$PROGRAM", "$OP_OPTIONAL"), optional_post_fn),
    Rule("prog_concat", "$PROGRAM", ("$PROGRAM", "$OP_CONCAT", "$PROGRAM"), concat_programs_fn),
    Rule("prog_follow", "$PROGRAM", ("$PROGRAM", "$OP_FOLLOW", "$PROGRAM"), follow_programs_fn),
    Rule("prog_or", "$PROGRAM", ("$PROGRAM", "$OP_OR", "$PROGRAM"), or_programs_fn),
    # Sketch construction: groups of programs become constrained holes.
    Rule("sketch_one", "$SKETCH", ("$PROGRAM",), sketch_fn),
    Rule("sketch_pair", "$SKETCH", ("$PROGRAM", "$PROGRAM"), sketch_fn),
    Rule("sketch_merge", "$SKETCH", ("$SKETCH", "$PROGRAM"), lambda s, p: _hole(s, p)
         if isinstance(s, Hole) else None),
    # Sketch-level composition.
    Rule("sk_concat", "$SKETCH", ("$SKETCH", "$OP_CONCAT", "$SKETCH"), concat_sketch_fn),
    Rule("sk_follow", "$SKETCH", ("$SKETCH", "$OP_FOLLOW", "$SKETCH"), follow_sketch_fn),
    Rule("sk_or", "$SKETCH", ("$SKETCH", "$OP_OR", "$SKETCH"), or_sketch_fn),
    Rule("sk_and", "$SKETCH", ("$SKETCH", "$OP_AND", "$SKETCH"), and_sketch_fn),
    Rule("sk_startwith", "$SKETCH", ("$OP_STARTWITH", "$SKETCH"), startwith_fn),
    Rule("sk_startwith_post", "$SKETCH", ("$SKETCH", "$OP_STARTWITH"), startwith_post_fn),
    Rule("sk_endwith", "$SKETCH", ("$OP_ENDWITH", "$SKETCH"), endwith_fn),
    Rule("sk_endwith_post", "$SKETCH", ("$SKETCH", "$OP_ENDWITH"), endwith_post_fn),
    Rule("sk_contain", "$SKETCH", ("$OP_CONTAIN", "$SKETCH"), contain_fn),
    Rule("sk_notcontain", "$SKETCH", ("$OP_NOTCONTAIN", "$SKETCH"), notcontain_fn),
    Rule("sk_not", "$SKETCH", ("$OP_NOT", "$SKETCH"), not_fn),
    Rule("sk_sep", "$SKETCH", ("$SKETCH", "$OP_SEP", "$SKETCH"), separated_by_fn),
    Rule("sk_between", "$SKETCH", ("$SKETCH", "$OP_BETWEEN", "$SKETCH"), between_fn),
    # Program-level containment (used by the DeepRegex-style concrete baseline).
    Rule("prog_startwith", "$PROGRAM", ("$OP_STARTWITH", "$PROGRAM"),
         lambda _m, p: rast.StartsWith(p)),
    Rule("prog_endwith", "$PROGRAM", ("$OP_ENDWITH", "$PROGRAM"),
         lambda _m, p: rast.EndsWith(p)),
    Rule("prog_contain", "$PROGRAM", ("$OP_CONTAIN", "$PROGRAM"),
         lambda _m, p: rast.Contains(p)),
    Rule("prog_notcontain", "$PROGRAM", ("$OP_NOTCONTAIN", "$PROGRAM"),
         lambda _m, p: rast.Not(rast.Contains(p))),
    Rule("prog_not", "$PROGRAM", ("$OP_NOT", "$PROGRAM"), lambda _m, p: rast.Not(p)),
    # Roots.
    Rule("root_sketch", "$ROOT", ("$SKETCH",), lambda s: _as_sketch(s)),
    Rule("root_program", "$ROOT", ("$PROGRAM",), lambda p: ConcreteRegexSketch(p)),
]


def rules_by_first_category() -> dict[str, list[Rule]]:
    """Index of compositional rules keyed by their first RHS category."""
    index: dict[str, list[Rule]] = {}
    for rule in GRAMMAR_RULES:
        index.setdefault(rule.rhs[0], []).append(rule)
    return index
