"""Chart parser with token skipping and beam search (Section 5.2).

Derivations are built bottom-up: lexical rules fire over matching token
spans, then compositional rules combine derivations over *ordered,
non-overlapping* spans (any tokens in between are skipped, mirroring
SEMPRE's floating/skipping behaviour).  A beam per (category, span) keeps the
search tractable; the beam is ordered by the current model score.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsl import ast as rast
from repro.dsl.ast import string_literal
from repro.nlp.grammar import GRAMMAR_RULES, Rule
from repro.nlp.lexicon import LEXICON, LexicalEntry, max_phrase_length
from repro.nlp.tokenizer import Token, tokenize


@dataclass
class Derivation:
    """One derivation: a category with a semantic value over a token span."""

    category: str
    start: int
    end: int
    value: object
    rule: str
    children: tuple["Derivation", ...] = ()
    features: Dict[str, float] = field(default_factory=dict)
    score: float = 0.0

    @property
    def covered(self) -> int:
        """Number of tokens actually consumed by lexical leaves."""
        if not self.children:
            return self.end - self.start
        return sum(child.covered for child in self.children)

    def signature(self) -> tuple:
        """Key used to de-duplicate semantically identical derivations."""
        return (self.category, self.start, self.end, repr(self.value))


class ChartParser:
    """Beam chart parser producing ranked derivations for an utterance."""

    def __init__(
        self,
        model=None,
        beam_size: int = 40,
        max_gap: int = 4,
        max_passes: int = 6,
        rules: Sequence[Rule] = GRAMMAR_RULES,
        lexicon: Sequence[LexicalEntry] = LEXICON,
    ):
        self.model = model
        self.beam_size = beam_size
        self.max_gap = max_gap
        self.max_passes = max_passes
        self.rules = list(rules)
        self.lexicon = list(lexicon)
        self._lexicon_index: Dict[str, List[LexicalEntry]] = {}
        for entry in self.lexicon:
            self._lexicon_index.setdefault(entry.phrase[0], []).append(entry)

    # -- public API ----------------------------------------------------------

    def parse(self, text: str, root_category: str = "$ROOT") -> List[Derivation]:
        """Parse an utterance; returns root derivations sorted by score."""
        tokens = tokenize(text)
        derivations = self._lexical_derivations(tokens)
        chart = _Beam(self.beam_size)
        for derivation in derivations:
            self._score(derivation)
            chart.add(derivation)

        for _ in range(self.max_passes):
            new_items: List[Derivation] = []
            snapshot = chart.by_category()
            for rule in self.rules:
                new_items.extend(self._apply_rule(rule, snapshot))
            added = False
            for item in new_items:
                self._score(item)
                if chart.add(item):
                    added = True
            if not added:
                break

        roots = [d for d in chart.all() if d.category == root_category]
        roots.sort(key=lambda d: (-d.score, -d.covered))
        return roots

    # -- internals -------------------------------------------------------------

    def _lexical_derivations(self, tokens: List[Token]) -> List[Derivation]:
        derivations: List[Derivation] = []
        lemmas = [token.lemma for token in tokens]
        limit = max_phrase_length()
        for start, token in enumerate(tokens):
            if token.quoted is not None:
                value = string_literal(token.quoted) if token.quoted else rast.Epsilon()
                derivations.append(
                    Derivation("$PROGRAM", start, start + 1, value, "lex:quoted",
                               features={"rule:lex:quoted": 1.0})
                )
                continue
            if token.number is not None:
                derivations.append(
                    Derivation("$INT", start, start + 1, token.number, "lex:int",
                               features={"rule:lex:int": 1.0})
                )
            for entry in self._lexicon_index.get(token.lemma, ()):
                length = len(entry.phrase)
                if length > limit or start + length > len(tokens):
                    continue
                if tuple(lemmas[start:start + length]) == entry.phrase:
                    rule_name = f"lex:{' '.join(entry.phrase)}"
                    derivations.append(
                        Derivation(entry.category, start, start + length, entry.value,
                                   rule_name, features={f"rule:{rule_name}": 1.0})
                    )
        return derivations

    def _apply_rule(self, rule: Rule, by_category: Dict[str, List[Derivation]]) -> List[Derivation]:
        pools = [by_category.get(category, []) for category in rule.rhs]
        if any(not pool for pool in pools):
            return []
        results: List[Derivation] = []
        for combo in self._ordered_combinations(pools):
            value = rule.fn(*[d.value for d in combo])
            if value is None:
                continue
            features: Dict[str, float] = {}
            for child in combo:
                for key, weight in child.features.items():
                    features[key] = features.get(key, 0.0) + weight
            features[f"rule:{rule.name}"] = features.get(f"rule:{rule.name}", 0.0) + 1.0
            start, end = combo[0].start, combo[-1].end
            covered = sum(d.covered for d in combo)
            features["span:skipped"] = float((end - start) - covered)
            features["span:covered"] = float(covered)
            results.append(
                Derivation(rule.target, start, end, value, rule.name, tuple(combo), features)
            )
        return results

    def _ordered_combinations(
        self, pools: List[List[Derivation]]
    ) -> List[Tuple[Derivation, ...]]:
        """All tuples of derivations with ordered, non-overlapping spans."""
        combos: List[Tuple[Derivation, ...]] = [()]
        for pool in pools:
            extended: List[Tuple[Derivation, ...]] = []
            for prefix in combos:
                for derivation in pool:
                    if prefix:
                        gap = derivation.start - prefix[-1].end
                        if gap < 0 or gap > self.max_gap:
                            continue
                    extended.append(prefix + (derivation,))
            combos = extended
            if len(combos) > 4000:
                combos = combos[:4000]
        return [combo for combo in combos if combo]

    def _score(self, derivation: Derivation) -> None:
        if self.model is None:
            # Default heuristic: prefer derivations that explain more tokens
            # with fewer skips.
            derivation.score = derivation.covered - 0.1 * len(derivation.features)
        else:
            derivation.score = self.model.score(derivation.features)


class _Beam:
    """Chart cells with per-(category, span) beams and global de-duplication."""

    def __init__(self, beam_size: int):
        self.beam_size = beam_size
        self._cells: Dict[Tuple[str, int, int], List[Derivation]] = {}
        self._seen: set = set()

    def add(self, derivation: Derivation) -> bool:
        signature = derivation.signature()
        if signature in self._seen:
            return False
        key = (derivation.category, derivation.start, derivation.end)
        cell = self._cells.setdefault(key, [])
        if len(cell) >= self.beam_size:
            worst = min(cell, key=lambda d: d.score)
            if worst.score >= derivation.score:
                return False
            cell.remove(worst)
        self._seen.add(signature)
        cell.append(derivation)
        return True

    def all(self) -> List[Derivation]:
        return [d for cell in self._cells.values() for d in cell]

    def by_category(self) -> Dict[str, List[Derivation]]:
        index: Dict[str, List[Derivation]] = {}
        for derivation in self.all():
            index.setdefault(derivation.category, []).append(derivation)
        for pool in index.values():
            pool.sort(key=lambda d: -d.score)
        return index
