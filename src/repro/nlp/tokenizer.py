"""Tokenisation and light linguistic normalisation of utterances.

SEMPRE ships a linguistic pre-processor (lemmatisation, number recognition);
we implement the small subset that the regex-description domain needs:
lower-casing, plural stripping, number-word recognition, and treatment of
quoted strings as single literal tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional


_NUMBER_WORDS = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10, "eleven": 11,
    "twelve": 12, "thirteen": 13, "fourteen": 14, "fifteen": 15, "sixteen": 16,
    "seventeen": 17, "eighteen": 18, "nineteen": 19, "twenty": 20,
    "single": 1, "twice": 2,
}

#: Words whose trailing "s" must not be stripped (not plurals).
_KEEP_S = {"is", "was", "this", "as", "has", "less", "plus", "address", "class"}

_QUOTED = re.compile(r"""("[^"]*"|'[^']*')""")
_WORD = re.compile(r"[A-Za-z]+|\d+|[^\sA-Za-z\d]")


@dataclass(frozen=True)
class Token:
    """One token of the utterance."""

    #: Normalised form used for lexicon lookup.
    lemma: str
    #: Original surface form.
    surface: str
    #: Integer value if the token denotes a number, else None.
    number: Optional[int] = None
    #: Literal string value if the token is a quoted constant, else None.
    quoted: Optional[str] = None


def _lemmatise(word: str) -> str:
    lowered = word.lower()
    if lowered in _NUMBER_WORDS:
        return lowered
    if lowered.endswith("ies") and len(lowered) > 4:
        return lowered[:-3] + "y"
    if lowered.endswith("es") and len(lowered) > 4 and lowered[-3] in "shx":
        return lowered[:-2]
    if lowered.endswith("s") and len(lowered) > 3 and lowered not in _KEEP_S:
        return lowered[:-1]
    if lowered.endswith("ed") and len(lowered) > 4:
        # followed -> follow, separated -> separate (close enough for lookup)
        stripped = lowered[:-2]
        return stripped + "e" if stripped.endswith(("at", "rat", "par")) else stripped
    if lowered.endswith("ing") and len(lowered) > 5:
        return lowered[:-3]
    return lowered


def tokenize(text: str) -> List[Token]:
    """Tokenise an English description into normalised tokens."""
    tokens: List[Token] = []
    pieces = _QUOTED.split(text)
    for index, piece in enumerate(pieces):
        if index % 2 == 1:
            literal = piece[1:-1]
            tokens.append(Token(lemma="<quoted>", surface=piece, quoted=literal))
            continue
        for match in _WORD.finditer(piece):
            word = match.group(0)
            if word.isdigit():
                tokens.append(Token(lemma=word, surface=word, number=int(word)))
                continue
            lemma = _lemmatise(word)
            number = _NUMBER_WORDS.get(lemma)
            tokens.append(Token(lemma=lemma, surface=word, number=number))
    return tokens
