"""Discriminative log-linear scoring model for derivations (Section 5.3).

The model scores a derivation ``d`` for utterance ``L`` as ``θ·φ(L, d)`` where
``φ`` collects rule-indicator and span features (inherited from the parser).
Training maximises the log-likelihood of producing the *gold sketch*
regardless of which derivation produced it, normalising over the beam — the
same objective the paper uses with SEMPRE.
"""

from __future__ import annotations

import json
import math
import random
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple


class LogLinearModel:
    """Sparse log-linear model over string-keyed features."""

    def __init__(self, weights: Dict[str, float] | None = None):
        self.weights: Dict[str, float] = dict(weights or {})

    def score(self, features: Dict[str, float]) -> float:
        return sum(self.weights.get(name, 0.0) * value for name, value in features.items())

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.weights, indent=0, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "LogLinearModel":
        return cls(json.loads(Path(path).read_text()))

    # -- training ---------------------------------------------------------------

    def train(
        self,
        examples: Sequence[Tuple[str, str]],
        parser_factory,
        epochs: int = 5,
        learning_rate: float = 0.1,
        l2: float = 1e-4,
        beam_roots: int = 50,
        seed: int = 0,
        is_correct=None,
    ) -> Dict[str, float]:
        """Train on (utterance, gold sketch string) pairs.

        ``parser_factory`` is a zero-argument callable returning a parser bound
        to this model (so re-parsing reflects updated weights each epoch).
        ``is_correct(derivation, gold)`` decides whether a root derivation
        realises the gold sketch; the default compares the serialised sketch.
        Returns simple training statistics.
        """
        from repro.sketch.printer import sketch_to_string

        if is_correct is None:
            def is_correct(derivation, gold: str) -> bool:
                try:
                    return sketch_to_string(derivation.value) == gold
                except TypeError:
                    return False

        rng = random.Random(seed)
        stats = {"epochs": float(epochs), "examples": float(len(examples)), "reachable": 0.0}
        order = list(examples)
        for epoch in range(epochs):
            rng.shuffle(order)
            reachable = 0
            for utterance, gold in order:
                parser = parser_factory()
                roots = parser.parse(utterance)[:beam_roots]
                if not roots:
                    continue
                correct = [d for d in roots if is_correct(d, gold)]
                if not correct:
                    continue
                reachable += 1
                self._update(roots, correct, learning_rate, l2)
            stats["reachable"] = float(reachable)
        return stats

    def _update(self, roots, correct, learning_rate: float, l2: float) -> None:
        """One gradient step of the beam-normalised log-likelihood."""
        scores = [self.score(d.features) for d in roots]
        log_z = _log_sum_exp(scores)
        probabilities = [math.exp(score - log_z) for score in scores]

        correct_indices = [index for index, d in enumerate(roots) if d in correct]
        correct_scores = [scores[index] for index in correct_indices]
        log_z_correct = _log_sum_exp(correct_scores)
        correct_probabilities = {
            index: math.exp(scores[index] - log_z_correct) for index in correct_indices
        }

        gradient: Dict[str, float] = {}
        for index, derivation in enumerate(roots):
            weight = correct_probabilities.get(index, 0.0) - probabilities[index]
            if weight == 0.0:
                continue
            for name, value in derivation.features.items():
                gradient[name] = gradient.get(name, 0.0) + weight * value

        for name, value in gradient.items():
            current = self.weights.get(name, 0.0)
            self.weights[name] = current + learning_rate * (value - l2 * current)


def _log_sum_exp(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return float("-inf")
    peak = max(values)
    return peak + math.log(sum(math.exp(v - peak) for v in values))
