"""Top-level semantic parser: English description → ranked h-sketches.

This is the component labelled "Semantic Parser" in Figure 1.  It wraps the
chart parser and the log-linear model, de-duplicates semantically identical
sketches (Section 6, "Eliminating redundant sketches"), and exposes the
ranked sketch list consumed by the PBE engine, as well as a direct
NL→regex mode used by the DeepRegex-style baseline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dsl import ast as rast
from repro.nlp.model import LogLinearModel
from repro.nlp.parser import ChartParser, Derivation
from repro.sketch import ast as sast
from repro.sketch.printer import sketch_to_string


class SemanticParser:
    """Generates a ranked list of hierarchical sketches for an utterance."""

    def __init__(
        self,
        model: Optional[LogLinearModel] = None,
        beam_size: int = 40,
        max_derivations: int = 500,
    ):
        self.model = model or LogLinearModel()
        self.beam_size = beam_size
        self.max_derivations = max_derivations

    def _parser(self) -> ChartParser:
        return ChartParser(model=self.model, beam_size=self.beam_size)

    # -- sketch generation -----------------------------------------------------

    def derivations(self, text: str) -> List[Derivation]:
        """Ranked root derivations (up to ``max_derivations``)."""
        return self._parser().parse(text)[: self.max_derivations]

    def sketches(self, text: str, k: int = 25) -> List[sast.Sketch]:
        """The top-``k`` distinct h-sketches for an English description.

        The paper's implementation generates up to 500 derivations, maps each
        to a sketch, removes duplicates, and hands the top 25 to the PBE
        engine.
        """
        ranked: List[sast.Sketch] = []
        seen: set[str] = set()

        def push(sketch: sast.Sketch) -> None:
            key = sketch_to_string(sketch)
            if key not in seen:
                seen.add(key)
                ranked.append(sketch)

        for derivation in self.derivations(text):
            sketch = derivation.value
            if not isinstance(sketch, sast.Sketch):
                continue
            push(sketch)
            # A fully concrete parse also yields a more tolerant variant that
            # treats the parsed regex as a hint inside a hole.
            if isinstance(sketch, sast.ConcreteRegexSketch):
                push(sast.Hole((sketch,)))
            if len(ranked) >= 3 * k:
                break
        if not ranked:
            # Fall back to a completely unconstrained sketch so the PBE engine
            # can still run (this is what Regel-PBE always does).
            ranked.append(sast.Hole(()))
        return ranked[:k]

    # -- direct translation (DeepRegex-style baseline) ---------------------------

    def translate(self, text: str) -> Optional[rast.Regex]:
        """Best-effort direct NL→regex translation without examples.

        Returns the highest-scoring derivation's value, concretising sketches
        by the obvious reading (holes become the concatenation of their hints).
        This mirrors what an NL-only system must do: commit to one reading.
        """
        for derivation in self.derivations(text):
            sketch = derivation.value
            if not isinstance(sketch, sast.Sketch):
                continue
            regex = concretize_sketch(sketch)
            if regex is not None:
                return regex
        return None

    # -- training ----------------------------------------------------------------

    def train(
        self,
        examples: Sequence[Tuple[str, str]],
        epochs: int = 5,
        learning_rate: float = 0.1,
    ) -> dict:
        """Train the log-linear model from (utterance, gold sketch string) pairs."""
        def is_correct(derivation: Derivation, gold: str) -> bool:
            value = derivation.value
            if not isinstance(value, sast.Sketch):
                return False
            return sketch_to_string(value) == gold

        return self.model.train(
            examples,
            parser_factory=self._parser,
            epochs=epochs,
            learning_rate=learning_rate,
            is_correct=is_correct,
        )


def concretize_sketch(sketch: sast.Sketch) -> Optional[rast.Regex]:
    """Commit a sketch to one concrete regex (holes → concatenation of hints)."""
    if isinstance(sketch, sast.ConcreteRegexSketch):
        return sketch.regex
    if isinstance(sketch, sast.Hole):
        parts = [concretize_sketch(component) for component in sketch.components]
        parts = [part for part in parts if part is not None]
        if not parts:
            return None
        result = parts[0]
        for part in parts[1:]:
            result = rast.Concat(result, part)
        return result
    if isinstance(sketch, sast.OpSketch):
        args = [concretize_sketch(arg) for arg in sketch.args]
        if any(arg is None for arg in args):
            return None
        ctor = sast.UNARY_SKETCH_OPS.get(sketch.op) or sast.BINARY_SKETCH_OPS[sketch.op]
        return ctor(*args)
    if isinstance(sketch, sast.IntOpSketch):
        arg = concretize_sketch(sketch.arg)
        if arg is None:
            return None
        ctor, _ = sast.INT_SKETCH_OPS[sketch.op]
        ints = [value if value is not None else 1 for value in sketch.ints]
        try:
            return ctor(arg, *ints)
        except ValueError:
            return None
    raise TypeError(f"unknown sketch node: {sketch!r}")
