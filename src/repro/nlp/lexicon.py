"""Lexical rules: phrases denoting base DSL concepts (Appendix B.2).

A lexical entry maps a (lemmatised) phrase of one or more tokens to a grammar
category and a semantic value: a character class / literal for ``$CC`` and
``$CONST``, or an operator marker for the ``$OP_*`` categories.  The lexicon
below covers the vocabulary of both datasets (the DeepRegex-style synthetic
descriptions and the StackOverflow-style posts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dsl import ast as rast


@dataclass(frozen=True)
class LexicalEntry:
    """One lexical rule: ``phrase`` → category with semantic ``value``."""

    phrase: tuple[str, ...]
    category: str
    value: object = None


def _cc(*phrases: str, value: rast.Regex) -> list[LexicalEntry]:
    return [LexicalEntry(tuple(p.split()), "$CC", value) for p in phrases]


def _const(*phrases: str, char: str) -> list[LexicalEntry]:
    return [LexicalEntry(tuple(p.split()), "$CONST", rast.literal(char)) for p in phrases]


def _op(category: str, *phrases: str) -> list[LexicalEntry]:
    return [LexicalEntry(tuple(p.split()), category, category) for p in phrases]


LEXICON: list[LexicalEntry] = [
    # ----- character classes ------------------------------------------------
    *_cc("number", "numeric", "numeral", "digit", "decimal digit", value=rast.NUM),
    *_cc("letter", "character", "alphabet", "alphabetic character", "alpha",
         "alphabetical character", value=rast.LET),
    *_cc("lower case letter", "lowercase letter", "small letter", "lower case",
         "lowercase", value=rast.LOW),
    *_cc("upper case letter", "uppercase letter", "capital letter", "capital",
         "upper case", "uppercase", value=rast.CAP),
    *_cc("alphanumeric", "alphanumeric character", "alpha numeric", "letter or digit",
         value=rast.ALPHANUM),
    *_cc("hexadecimal", "hex digit", "hexadecimal character", value=rast.HEX),
    *_cc("vowel", value=rast.VOW),
    *_cc("special character", "special char", "symbol", "punctuation", value=rast.SPEC),
    *_cc("string", "anything", "any character", "any string", "word", value=rast.ANY),
    # ----- constants ---------------------------------------------------------
    *_const("comma", char=","),
    *_const("period", "dot", "full stop", "decimal point", "point", char="."),
    *_const("colon", char=":"),
    *_const("semicolon", char=";"),
    *_const("space", "blank", "whitespace", char=" "),
    *_const("underscore", char="_"),
    *_const("dash", "hyphen", "minus", "minus sign", char="-"),
    *_const("plus", "plus sign", char="+"),
    *_const("slash", "forward slash", char="/"),
    *_const("backslash", char="\\"),
    *_const("at sign", "at symbol", char="@"),
    *_const("percentage sign", "percent sign", "percent", char="%"),
    *_const("dollar sign", "dollar", char="$"),
    *_const("hash", "pound sign", "number sign", char="#"),
    *_const("asterisk", "star character", char="*"),
    *_const("ampersand", char="&"),
    *_const("question mark", char="?"),
    *_const("exclamation mark", "exclamation point", char="!"),
    *_const("equal sign", "equals sign", char="="),
    *_const("apostrophe", "single quote", char="'"),
    *_const("quotation mark", "double quote", char='"'),
    *_const("open parenthesis", "left parenthesis", char="("),
    *_const("close parenthesis", "right parenthesis", char=")"),
    *_const("open bracket", "left bracket", char="["),
    *_const("close bracket", "right bracket", char="]"),
    # ----- operator markers ---------------------------------------------------
    *_op("$OP_CONCAT", "before", "then", "follow by", "followe by", "follow with",
         "next", "prior to", "precede", "and then", "in front of"),
    *_op("$OP_FOLLOW", "after", "preceded by", "behind"),
    *_op("$OP_STARTWITH", "start with", "start in", "begin with", "beginning with",
         "at the beginning", "at the begin", "starting with", "lead with",
         "first character be", "must start with"),
    *_op("$OP_ENDWITH", "end with", "end in", "finish with", "terminate with",
         "terminate in", "at the end", "ending with", "last character be"),
    *_op("$OP_CONTAIN", "contain", "include", "have", "with", "containing"),
    *_op("$OP_NOTCONTAIN", "not contain", "not allow", "not include", "without",
         "do not contain", "do not allow", "cannot contain", "no", "never contain",
         "exclude", "not have", "doe not contain"),
    *_op("$OP_NOT", "not", "anything but", "other than", "except"),
    *_op("$OP_OPTIONAL", "optional", "optionally", "may", "might", "possibly",
         "if present", "can be omit", "or nothing", "if any"),
    *_op("$OP_OR", "or", "either", "one of"),
    *_op("$OP_AND", "and also", "as well as", "both"),
    *_op("$OP_ATMAX", "at max", "at most", "up to", "maximum", "maximum of", "max",
         "no more than", "not more than", "at the most", "fewer than", "less than"),
    *_op("$OP_ATLEAST", "at least", "minimum", "minimum of", "no less than",
         "not less than", "more than"),
    *_op("$OP_ORMORE", "or more", "or more time", "and more", "or greater"),
    *_op("$OP_ONLY", "only", "exactly", "just", "solely", "nothing but"),
    *_op("$OP_KLEENE", "any number of", "zero or more", "some number of",
         "arbitrary number of", "any amount of"),
    *_op("$OP_ONEPLUS", "one or more", "at least one", "several", "a sequence of",
         "a series of", "consist of", "made of", "made up of", "composed of"),
    *_op("$OP_SEP", "separate by", "separated by", "delimit by", "delimited by",
         "divide by", "divided by", "split by", "join by", "joined by"),
    *_op("$OP_BETWEEN", "between", "in between"),
    *_op("$OP_DECIMAL", "decimal number", "floating point", "float", "real number",
         "decimal value"),
    *_op("$OP_LENGTH", "length", "long", "character long", "digit long", "in length"),
    *_op("$OP_RANGE", "to", "through", "-"),
]


def max_phrase_length() -> int:
    """Longest phrase in the lexicon (bounds the span search of the parser)."""
    return max(len(entry.phrase) for entry in LEXICON)


def entries_by_first_lemma() -> dict[str, list[LexicalEntry]]:
    """Index of lexical entries keyed by their first lemma (parser lookup)."""
    index: dict[str, list[LexicalEntry]] = {}
    for entry in LEXICON:
        index.setdefault(entry.phrase[0], []).append(entry)
    return index
