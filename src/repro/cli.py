"""Command-line interface: ``regel "description" --pos a --pos b --neg c``."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.dsl.printer import to_dsl_string, to_python_regex, UnsupportedConstructError
from repro.multimodal.regel import Regel
from repro.synthesis import SynthesisConfig


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="regel",
        description="Synthesize a regex from an English description and string examples.",
    )
    parser.add_argument("description", help="natural-language description of the regex")
    parser.add_argument("--pos", action="append", default=[], help="positive example (repeatable)")
    parser.add_argument("--neg", action="append", default=[], help="negative example (repeatable)")
    parser.add_argument("-k", type=int, default=1, help="number of regexes to return")
    parser.add_argument("-t", "--timeout", type=float, default=20.0, help="time budget in seconds")
    parser.add_argument("--sketches", type=int, default=25, help="number of sketches to try")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    config = SynthesisConfig(timeout=args.timeout)
    tool = Regel(config=config, num_sketches=args.sketches)
    result = tool.synthesize(
        args.description, args.pos, args.neg, k=args.k, time_budget=args.timeout
    )
    if not result.solved:
        print("no consistent regex found within the time budget", file=sys.stderr)
        return 1
    for regex in result.regexes:
        line = to_dsl_string(regex)
        try:
            line += f"    (python: {to_python_regex(regex)})"
        except UnsupportedConstructError:
            pass
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
