"""Command-line interface over the pipeline API and the HTTP service.

Six subcommands:

* ``regel solve "description" --pos a --pos b --neg c`` — solve one problem
  in-process; ``--json`` emits the full machine-readable
  :class:`~repro.api.RunReport`,
* ``regel batch problems.ndjson`` — solve a JSON-lines stream (or JSON
  array) of problem specs, emitting one report per line; ``--resume`` skips
  a line prefix and ``--record`` persists per-item statuses in the same
  :class:`~repro.service.batch.BatchRecord` format the service uses, so an
  interrupted run picks up where it stopped without re-solving,
* ``regel corpus generate|ingest|status`` — the bulk pipeline over
  real-world regex corpora: ``generate`` turns a Davis-format NDJSON corpus
  into Problem NDJSON (see ``docs/corpus.md``), ``ingest`` streams problems
  into a running service through ``POST /v1/batch`` with resumable chunked
  upload, ``status`` pages through a batch's per-item statuses,
* ``regel lint --pos a --neg b --sketch S`` — static analysis only: report
  contradictory example sets, statically-unsatisfiable sketches, vacuous
  subtrees, and dead ``Or`` alternatives without running the engine
  (see ``docs/analysis.md``),
* ``regel serve`` — run the HTTP/JSON service (worker pool + persistent
  result cache; see ``docs/api.md`` and ``docs/deployment.md``),
* ``regel client "description" --pos a --server URL`` — solve against a
  running service; ``--poll`` streams partial solutions through the async
  jobs API, ``--stats`` / ``--health`` query the service instead.

For backwards compatibility, ``regel "description" --pos a`` (no subcommand)
is treated as ``regel solve ...``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter
from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple

from repro.api import (
    NlSketchProvider,
    PbeOnlyProvider,
    Problem,
    SCHEDULERS,
    Session,
    StaticSketchProvider,
    make_scheduler,
)
from repro.sketch.parser import SketchParseError
from repro.synthesis import SynthesisConfig
from repro.synthesis.config import EngineVariant


def _add_solve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("description", help="natural-language description of the regex")
    parser.add_argument("--pos", action="append", default=[], help="positive example (repeatable)")
    parser.add_argument("--neg", action="append", default=[], help="negative example (repeatable)")
    parser.add_argument("-k", type=int, default=1, help="number of regexes to return")
    parser.add_argument("-t", "--timeout", type=float, default=20.0, help="time budget in seconds")
    parser.add_argument("--sketches", type=int, default=25, help="number of sketches to try")
    parser.add_argument(
        "--sketch",
        action="append",
        default=[],
        metavar="SKETCH",
        help="static sketch in textual notation (repeatable; bypasses the NL parser)",
    )
    parser.add_argument(
        "--pbe-only",
        action="store_true",
        help="ignore the description and synthesize from examples only (Regel-PBE)",
    )
    parser.add_argument(
        "--variant",
        choices=[variant.value for variant in EngineVariant],
        default=EngineVariant.FULL.value,
        help="engine variant (full Regel or a Figure-18 ablation)",
    )
    _add_scheduler_arguments(parser)
    parser.add_argument("--json", action="store_true", help="emit the RunReport as JSON")


def _add_scheduler_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULERS),
        default="sequential",
        help="how engine instances share the time budget",
    )
    parser.add_argument(
        "--greedy-budget",
        action="store_true",
        help="sequential scheduler only: restore the historical policy in which "
        "one pathological sketch may consume nearly the whole budget",
    )
    _add_evaluator_argument(parser)


def _add_evaluator_argument(parser: argparse.ArgumentParser) -> None:
    from repro.synthesis.examples import DEFAULT_EVALUATOR, EVALUATORS

    parser.add_argument(
        "--evaluator",
        choices=sorted(EVALUATORS),
        default=DEFAULT_EVALUATOR,
        help="membership evaluator: 'dfa' compiles concrete subtrees onto the "
        "automata backend (default); 'matchset'/'recursive' are the "
        "differential baselines",
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="regel",
        description="Synthesize regexes from English descriptions and string examples.",
    )
    subparsers = parser.add_subparsers(dest="command")

    solve = subparsers.add_parser("solve", help="solve a single problem")
    _add_solve_arguments(solve)

    batch = subparsers.add_parser(
        "batch", help="solve a JSON-lines / JSON-array file of problem specs"
    )
    batch.add_argument("input", help="path to the problems file, or '-' for stdin")
    _add_scheduler_arguments(batch)
    batch.add_argument(
        "--pbe-only", action="store_true", help="examples-only synthesis for every problem"
    )
    batch.add_argument("--sketches", type=int, default=25, help="number of sketches to try")
    batch.add_argument(
        "--resume", type=int, default=0, metavar="N",
        help="skip the first N input lines (continue an interrupted run)",
    )
    batch.add_argument(
        "--record", default=None, metavar="FILE",
        help="persist per-item statuses to FILE (service batch-record format); "
        "an existing record skips every item it already settled",
    )

    corpus = subparsers.add_parser(
        "corpus", help="bulk pipeline over real-world regex corpora (docs/corpus.md)"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command")

    gen = corpus_sub.add_parser(
        "generate",
        help="corpus NDJSON in, Problem NDJSON out (sampled examples + punched sketches)",
    )
    gen.add_argument("input", help="Davis-format corpus NDJSON, or '-' for stdin")
    gen.add_argument(
        "-o", "--output", default="-", help="output problems NDJSON (default stdout)"
    )
    gen.add_argument("--limit", type=int, default=0, help="max corpus entries to load (0 = all)")
    gen.add_argument(
        "--min-uses", type=int, default=0,
        help="drop corpus regexes with fewer total recorded uses",
    )
    gen.add_argument("--seed", type=int, default=0, help="deterministic generation seed")
    gen.add_argument("--positives", type=int, default=4, help="positive examples per problem")
    gen.add_argument("--negatives", type=int, default=4, help="negative examples per problem")
    gen.add_argument("--sketches", type=int, default=2, help="pinned sketches per problem")
    gen.add_argument("--holes", type=int, default=1, help="holes punched per sketch")
    gen.add_argument(
        "--hole-depth", type=int, default=2,
        help="max height of a subtree a hole may replace",
    )
    gen.add_argument("--budget", type=float, default=10.0, help="budget stamped onto each problem")
    gen.add_argument("-k", type=int, default=1, help="solutions requested per problem")

    ingest = corpus_sub.add_parser(
        "ingest", help="stream Problem NDJSON into a running service via POST /v1/batch"
    )
    ingest.add_argument("input", help="problems NDJSON (from `regel corpus generate`)")
    ingest.add_argument(
        "--server", default="http://127.0.0.1:8765", help="base URL of the service"
    )
    ingest.add_argument(
        "--chunk-size", type=int, default=25, help="problems uploaded per POST"
    )
    ingest.add_argument(
        "--state", default=None, metavar="FILE",
        help="ingestion state file enabling resume (default: <input>.ingest.json)",
    )
    ingest.add_argument(
        "--no-wait", action="store_true",
        help="exit after uploading instead of polling the batch to completion",
    )
    ingest.add_argument(
        "--wait-timeout", type=float, default=600.0,
        help="max seconds to poll for batch completion",
    )
    ingest.add_argument("--json", action="store_true", help="emit the final summary as JSON")

    status = corpus_sub.add_parser(
        "status", help="page through a batch's per-item statuses"
    )
    status.add_argument("batch_id", help="batch id returned by ingest")
    status.add_argument(
        "--server", default="http://127.0.0.1:8765", help="base URL of the service"
    )
    status.add_argument("--offset", type=int, default=0, help="first item index to show")
    status.add_argument("--limit", type=int, default=100, help="items per page")
    status.add_argument("--json", action="store_true", help="emit the raw response JSON")

    lint = subparsers.add_parser(
        "lint", help="statically analyze a problem and sketches without solving"
    )
    lint.add_argument(
        "description", nargs="?", default="",
        help="natural-language description (optional; not analyzed)",
    )
    lint.add_argument("--pos", action="append", default=[], help="positive example (repeatable)")
    lint.add_argument("--neg", action="append", default=[], help="negative example (repeatable)")
    lint.add_argument(
        "--sketch",
        action="append",
        default=[],
        metavar="SKETCH",
        help="sketch in textual notation to analyze against the examples (repeatable)",
    )
    lint.add_argument("--json", action="store_true", help="emit diagnostics as JSON")

    serve = subparsers.add_parser(
        "serve", help="run the HTTP/JSON synthesis service (see docs/api.md)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2, help="worker threads")
    serve.add_argument(
        "--queue-size", type=int, default=16,
        help="bounded job queue; a full queue answers HTTP 429",
    )
    serve.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULERS),
        default="interleaved",
        help="scheduler run by each worker session",
    )
    serve.add_argument("--sketches", type=int, default=25, help="sketches per problem")
    _add_evaluator_argument(serve)
    serve.add_argument(
        "--cache-backend",
        choices=["json", "sqlite", "null"],
        default="json",
        help="persistent result cache backend ('null' disables caching)",
    )
    serve.add_argument(
        "--cache-path", default=None,
        help="cache directory (json) or database file (sqlite)",
    )
    serve.add_argument(
        "--cache-max-entries", type=int, default=1024,
        help="LRU bound on cached reports",
    )
    serve.add_argument(
        "--max-budget", type=float, default=120.0,
        help="reject problems whose budget exceeds this many seconds",
    )
    serve.add_argument(
        "--watchdog-grace", type=float, default=10.0,
        help="seconds past a job's budget before the watchdog fails it as wedged",
    )
    serve.add_argument(
        "--faults", default=None,
        help="fault-injection spec (REPRO_FAULTS grammar) for chaos runs",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="do not log one line per request"
    )

    client = subparsers.add_parser(
        "client", help="solve a problem against a running `regel serve` instance"
    )
    client.add_argument(
        "description", nargs="?", default=None,
        help="natural-language description of the regex",
    )
    client.add_argument("--pos", action="append", default=[], help="positive example (repeatable)")
    client.add_argument("--neg", action="append", default=[], help="negative example (repeatable)")
    client.add_argument("-k", type=int, default=1, help="number of regexes to return")
    client.add_argument("-t", "--timeout", type=float, default=20.0, help="time budget in seconds")
    client.add_argument(
        "--variant",
        choices=[variant.value for variant in EngineVariant],
        default=EngineVariant.FULL.value,
        help="engine variant",
    )
    client.add_argument(
        "--server", default="http://127.0.0.1:8765", help="base URL of the service"
    )
    client.add_argument(
        "--poll", action="store_true",
        help="submit an async job and stream partial solutions as they arrive",
    )
    client.add_argument("--json", action="store_true", help="emit the RunReport as JSON")
    client.add_argument(
        "--stats", action="store_true", help="print GET /v1/stats and exit"
    )
    client.add_argument(
        "--health", action="store_true", help="print GET /v1/healthz and exit"
    )
    client.add_argument(
        "--retries", type=int, default=3,
        help="retry budget for transient failures (0 disables retrying)",
    )
    return parser


def _make_session(
    args: argparse.Namespace,
    static_sketches: Sequence[str] = (),
    config: Optional[SynthesisConfig] = None,
) -> Session:
    if args.scheduler == "sequential":
        scheduler = make_scheduler("sequential", fair=not args.greedy_budget)
    else:
        scheduler = make_scheduler(args.scheduler)
    if getattr(args, "pbe_only", False):
        provider = PbeOnlyProvider()
    elif static_sketches:
        provider = StaticSketchProvider(list(static_sketches))
    else:
        provider = NlSketchProvider(num_sketches=args.sketches)
    if config is None:
        config = SynthesisConfig()
    config.evaluator = getattr(args, "evaluator", config.evaluator)
    return Session(provider=provider, scheduler=scheduler, config=config)


def _run_solve(args: argparse.Namespace) -> int:
    problem = Problem(
        description=args.description,
        positive=args.pos,
        negative=args.neg,
        k=args.k,
        budget=args.timeout,
        variant=args.variant,
    )
    session = _make_session(
        args, static_sketches=args.sketch, config=SynthesisConfig(timeout=args.timeout)
    )
    if args.json:
        report = session.solve(problem)
        print(report.to_json(indent=2))
        return 0 if report.solved else 1
    # Stream solutions as the portfolio discovers them.
    for solution in session.iter_solutions(problem):
        line = solution.regex
        python_pattern = solution.python_regex()
        if python_pattern is not None:
            line += f"    (python: {python_pattern})"
        print(line, flush=True)
    report = session.last_report
    if report is None or not report.solved:
        print("no consistent regex found within the time budget", file=sys.stderr)
        return 1
    return 0


def _iter_problem_lines(path: str) -> Iterator[str]:
    """Stream raw problem-spec lines without loading the whole file.

    NDJSON is streamed line by line; a top-level JSON array (the legacy batch
    format, detected from the first non-blank character) is necessarily read
    whole and re-emitted one element per line.  stdin is always read whole —
    it cannot be peeked and reopened.
    """
    if path == "-":
        text = sys.stdin.read()
        stripped = text.strip()
        if stripped.startswith("["):
            for entry in json.loads(stripped):
                yield json.dumps(entry)
        else:
            yield from (line for line in text.splitlines() if line.strip())
        return
    with open(path, "r", encoding="utf-8") as handle:
        head = handle.read(1)
        while head.isspace():
            head = handle.read(1)
        handle.seek(0)
        if head == "[":
            for entry in json.load(handle):
                yield json.dumps(entry)
        else:
            for line in handle:
                if line.strip():
                    yield line


def _run_batch(args: argparse.Namespace) -> int:
    from repro.service.batch import (
        ITEM_FAILED,
        ITEM_SOLVED,
        ITEM_UNSOLVED,
        BatchRecord,
    )

    record: Optional[BatchRecord] = None
    if args.record:
        if os.path.exists(args.record):
            record = BatchRecord.load(args.record)
        else:
            record = BatchRecord(path=Path(args.record))
    session = _make_session(args)
    counts: Counter = Counter()
    for index, raw in enumerate(_iter_problem_lines(args.input)):
        if index < args.resume:
            counts["skipped"] += 1
            continue
        if record is not None and index < len(record) and not record.needs_reingest(index):
            counts["skipped"] += 1
            continue

        def settle(status: str, **extra) -> None:
            counts[status] += 1
            if record is not None:
                if index < len(record):
                    record.update_item(index, status, **extra)
                else:
                    # Pad for lines jumped over by --resume, so record item
                    # indexes always equal input line indexes.
                    while len(record) < index:
                        record.append_item(ITEM_FAILED, error="skipped by --resume")
                    record.append_item(status, **extra)
                record.save()

        try:
            problem = Problem.from_dict(json.loads(raw))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            print(
                json.dumps({"index": index, "error": f"invalid problem: {exc}"}),
                flush=True,
            )
            settle(ITEM_FAILED, error=str(exc)[:500])
            continue
        try:
            report = session.solve(problem)
        except Exception as exc:  # keep the stream going past one bad item
            print(
                json.dumps({"index": index, "error": f"engine error: {exc}"}),
                flush=True,
            )
            settle(ITEM_FAILED, cache_key=problem.cache_key(), error=str(exc)[:500])
            continue
        print(report.to_json(), flush=True)
        regex = report.solutions[0].regex if report.solutions else None
        settle(
            ITEM_SOLVED if report.solved else ITEM_UNSOLVED,
            cache_key=problem.cache_key(),
            regex=regex,
        )
    total = sum(counts.values())
    summary = ", ".join(
        f"{counts[key]} {key}"
        for key in ("solved", "unsolved", "failed", "skipped")
        if counts[key]
    )
    print(f"batch: {total} item(s): {summary or 'nothing to do'}", file=sys.stderr)
    return 1 if counts["failed"] else 0


def _run_corpus_generate(args: argparse.Namespace) -> int:
    from repro.corpus import GeneratorConfig, generate_problems, load_corpus

    result = load_corpus(
        sys.stdin if args.input == "-" else args.input,
        min_uses=args.min_uses,
        limit=args.limit,
    )
    config = GeneratorConfig(
        positives=args.positives,
        negatives=args.negatives,
        sketches=args.sketches,
        holes=args.holes,
        hole_depth=args.hole_depth,
        seed=args.seed,
        budget=args.budget,
        k=args.k,
    )
    generated = generate_problems(result.entries, config)
    out = sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
    try:
        for problem in generated.problems:
            out.write(problem.canonical_json() + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    skip_counts = Counter(result.skipped) + Counter(generated.skipped)
    skips = ", ".join(f"{count} {reason}" for reason, count in sorted(skip_counts.items()))
    print(
        f"corpus: {result.total_lines} line(s) -> {len(generated.problems)} problem(s)"
        + (f" (skipped: {skips})" if skips else ""),
        file=sys.stderr,
    )
    return 0


def _ingest_state_path(args: argparse.Namespace) -> str:
    return args.state if args.state else args.input + ".ingest.json"


def _run_corpus_ingest(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    lines = list(_iter_problem_lines(args.input))
    state_path = _ingest_state_path(args)
    state = {}
    if os.path.exists(state_path):
        with open(state_path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    batch_id = state.get("batch_id")
    offset = int(state.get("offset", 0)) if batch_id else 0
    client = ServiceClient(args.server)
    chunk_size = max(1, args.chunk_size)

    def save_state(next_offset: int) -> None:
        payload = {"batch_id": batch_id, "offset": next_offset, "server": args.server}
        with open(state_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    position = min(offset, len(lines))
    if batch_id:
        # A server restart strands items in `queued` with no job behind
        # them; only a re-POST of their lines revives them (the record
        # persists cache keys, not problem bodies).  Re-sending from 0 is
        # always safe — the server skips every terminal or live item — so
        # when the batch reports anything still queued, restart the upload
        # rather than trusting the client-side offset.
        try:
            queued = client.batch_status(batch_id, limit=1)["counts"]["queued"]
        except OSError:
            queued = 0  # unknown batch or unreachable: the loop will say so
        if queued:
            position = 0
        print(
            f"resuming batch {batch_id} at item {position}/{len(lines)}"
            + (f" ({queued} stranded item(s) to re-ingest)" if queued else ""),
            file=sys.stderr,
        )
    while position < len(lines) or batch_id is None:
        chunk = lines[position : position + chunk_size]
        response = client.submit_batch(chunk, batch_id=batch_id, offset=position)
        batch_id = response["batch_id"]
        position += len(chunk)
        save_state(position)
        print(
            f"uploaded {position}/{len(lines)} "
            f"(+{response['ingested']} ingested, {response['skipped']} already known)",
            file=sys.stderr,
        )
        if not chunk:
            break
    if args.no_wait:
        print(f"batch {batch_id} uploaded; poll with: regel corpus status {batch_id}")
        return 0
    summary = client.wait_batch(batch_id, timeout=args.wait_timeout)
    counts = summary["counts"]
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        rendered = ", ".join(f"{count} {key}" for key, count in counts.items() if count)
        print(f"batch {batch_id}: {summary['total']} item(s): {rendered}")
    return 1 if counts.get("failed") else 0


def _run_corpus_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.server)
    page = client.batch_status(args.batch_id, offset=args.offset, limit=args.limit)
    if args.json:
        print(json.dumps(page, indent=2))
        return 0
    counts = page["counts"]
    rendered = ", ".join(f"{count} {key}" for key, count in counts.items() if count)
    print(f"batch {page['batch_id']}: {page['total']} item(s), done={page['done']}: {rendered}")
    for item in page["items"]:
        line = f"  [{item['index']:>5}] {item['status']}"
        if item.get("regex"):
            line += f"  {item['regex']}"
        if item.get("error"):
            line += f"  ({item['error'].splitlines()[0][:80]})"
        print(line)
    return 0


def _run_corpus(args: argparse.Namespace) -> int:
    if args.corpus_command == "generate":
        return _run_corpus_generate(args)
    if args.corpus_command == "ingest":
        return _run_corpus_ingest(args)
    if args.corpus_command == "status":
        return _run_corpus_status(args)
    print(
        "regel corpus: choose a subcommand: generate, ingest, or status",
        file=sys.stderr,
    )
    return 2


def _run_lint(args: argparse.Namespace) -> int:
    from repro.analysis import SEVERITY_ERROR, has_errors, lint_problem, problem_unsatisfiable
    from repro.sketch.parser import parse_sketch

    problem = Problem(
        description=args.description, positive=args.pos, negative=args.neg
    )
    sketches = [(text, parse_sketch(text)) for text in args.sketch]
    diagnostics = lint_problem(problem, sketches=sketches)
    satisfiable = problem_unsatisfiable(problem) is None
    if args.json:
        print(
            json.dumps(
                {
                    "satisfiable": satisfiable,
                    "diagnostics": [diag.to_dict() for diag in diagnostics],
                },
                indent=2,
            )
        )
        return 1 if has_errors(diagnostics) else 0
    if not diagnostics:
        print("no diagnostics")
        return 0
    for diag in diagnostics:
        print(f"{diag.severity}: {diag.code} at {diag.path}: {diag.message}")
    errors = sum(diag.severity == SEVERITY_ERROR for diag in diagnostics)
    summary = f"{len(diagnostics)} diagnostic(s), {errors} error(s)"
    if not satisfiable:
        summary += " — the problem is statically unsatisfiable"
    print(summary, file=sys.stderr)
    return 1 if errors else 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        scheduler=args.scheduler,
        evaluator=args.evaluator,
        sketches=args.sketches,
        cache_backend=args.cache_backend,
        cache_path=args.cache_path,
        cache_max_entries=args.cache_max_entries,
        max_budget=args.max_budget,
        log_requests=not args.quiet,
        watchdog_grace=args.watchdog_grace,
        faults=args.faults,
    )
    return serve(config)


def _run_client(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.server, retries=args.retries)
    if args.health:
        print(json.dumps(client.healthz(), indent=2))
        return 0
    if args.stats:
        print(json.dumps(client.stats(), indent=2))
        return 0
    if args.description is None:
        print("regel: error: client needs a description (or --stats/--health)", file=sys.stderr)
        return 2
    problem = Problem(
        description=args.description,
        positive=args.pos,
        negative=args.neg,
        k=args.k,
        budget=args.timeout,
        variant=args.variant,
    )
    if args.poll:
        # Async job + polled partial solutions (the wire mirror of
        # Session.iter_solutions).
        for solution in client.iter_solutions(problem):
            print(solution.regex, flush=True)
        record = client.last_job or {}
        report = record.get("report")
        if args.json and report is not None:
            print(json.dumps(report, indent=2))
        return 0 if record.get("solutions") else 1
    report = client.solve(problem)
    if args.json:
        print(report.to_json(indent=2))
    else:
        for solution in report.solutions:
            print(solution.regex, flush=True)
        if report.provenance == "cache":
            print("(served from the persistent result cache)", file=sys.stderr)
    if not report.solved:
        print("no consistent regex found within the time budget", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    # Backwards compatibility: `regel "description" --pos ...` means `solve`.
    known = {"solve", "batch", "corpus", "lint", "serve", "client", "-h", "--help"}
    if argv and argv[0] not in known:
        argv = ["solve", *argv]
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return 2
    try:
        if args.command == "batch":
            return _run_batch(args)
        if args.command == "corpus":
            return _run_corpus(args)
        if args.command == "lint":
            return _run_lint(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "client":
            return _run_client(args)
        return _run_solve(args)
    except (SketchParseError, json.JSONDecodeError, ValueError, OSError) as exc:
        # User-input errors (bad sketch notation, malformed problem files,
        # invalid budgets, unreachable servers) get one clean line instead of
        # a traceback.
        print(f"regel: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
