"""Command-line interface over the pipeline API and the HTTP service.

Five subcommands:

* ``regel solve "description" --pos a --pos b --neg c`` — solve one problem
  in-process; ``--json`` emits the full machine-readable
  :class:`~repro.api.RunReport`,
* ``regel batch problems.json`` — solve a JSON array (or JSON-lines stream)
  of problem specs, emitting one report per line (JSON lines),
* ``regel lint --pos a --neg b --sketch S`` — static analysis only: report
  contradictory example sets, statically-unsatisfiable sketches, vacuous
  subtrees, and dead ``Or`` alternatives without running the engine
  (see ``docs/analysis.md``),
* ``regel serve`` — run the HTTP/JSON service (worker pool + persistent
  result cache; see ``docs/api.md`` and ``docs/deployment.md``),
* ``regel client "description" --pos a --server URL`` — solve against a
  running service; ``--poll`` streams partial solutions through the async
  jobs API, ``--stats`` / ``--health`` query the service instead.

For backwards compatibility, ``regel "description" --pos a`` (no subcommand)
is treated as ``regel solve ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.api import (
    NlSketchProvider,
    PbeOnlyProvider,
    Problem,
    SCHEDULERS,
    Session,
    StaticSketchProvider,
    make_scheduler,
)
from repro.sketch.parser import SketchParseError
from repro.synthesis import SynthesisConfig
from repro.synthesis.config import EngineVariant


def _add_solve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("description", help="natural-language description of the regex")
    parser.add_argument("--pos", action="append", default=[], help="positive example (repeatable)")
    parser.add_argument("--neg", action="append", default=[], help="negative example (repeatable)")
    parser.add_argument("-k", type=int, default=1, help="number of regexes to return")
    parser.add_argument("-t", "--timeout", type=float, default=20.0, help="time budget in seconds")
    parser.add_argument("--sketches", type=int, default=25, help="number of sketches to try")
    parser.add_argument(
        "--sketch",
        action="append",
        default=[],
        metavar="SKETCH",
        help="static sketch in textual notation (repeatable; bypasses the NL parser)",
    )
    parser.add_argument(
        "--pbe-only",
        action="store_true",
        help="ignore the description and synthesize from examples only (Regel-PBE)",
    )
    parser.add_argument(
        "--variant",
        choices=[variant.value for variant in EngineVariant],
        default=EngineVariant.FULL.value,
        help="engine variant (full Regel or a Figure-18 ablation)",
    )
    _add_scheduler_arguments(parser)
    parser.add_argument("--json", action="store_true", help="emit the RunReport as JSON")


def _add_scheduler_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULERS),
        default="sequential",
        help="how engine instances share the time budget",
    )
    parser.add_argument(
        "--greedy-budget",
        action="store_true",
        help="sequential scheduler only: restore the historical policy in which "
        "one pathological sketch may consume nearly the whole budget",
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="regel",
        description="Synthesize regexes from English descriptions and string examples.",
    )
    subparsers = parser.add_subparsers(dest="command")

    solve = subparsers.add_parser("solve", help="solve a single problem")
    _add_solve_arguments(solve)

    batch = subparsers.add_parser(
        "batch", help="solve a JSON array / JSON-lines file of problem specs"
    )
    batch.add_argument("input", help="path to the problems file, or '-' for stdin")
    _add_scheduler_arguments(batch)
    batch.add_argument(
        "--pbe-only", action="store_true", help="examples-only synthesis for every problem"
    )
    batch.add_argument("--sketches", type=int, default=25, help="number of sketches to try")

    lint = subparsers.add_parser(
        "lint", help="statically analyze a problem and sketches without solving"
    )
    lint.add_argument(
        "description", nargs="?", default="",
        help="natural-language description (optional; not analyzed)",
    )
    lint.add_argument("--pos", action="append", default=[], help="positive example (repeatable)")
    lint.add_argument("--neg", action="append", default=[], help="negative example (repeatable)")
    lint.add_argument(
        "--sketch",
        action="append",
        default=[],
        metavar="SKETCH",
        help="sketch in textual notation to analyze against the examples (repeatable)",
    )
    lint.add_argument("--json", action="store_true", help="emit diagnostics as JSON")

    serve = subparsers.add_parser(
        "serve", help="run the HTTP/JSON synthesis service (see docs/api.md)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2, help="worker threads")
    serve.add_argument(
        "--queue-size", type=int, default=16,
        help="bounded job queue; a full queue answers HTTP 429",
    )
    serve.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULERS),
        default="interleaved",
        help="scheduler run by each worker session",
    )
    serve.add_argument("--sketches", type=int, default=25, help="sketches per problem")
    serve.add_argument(
        "--cache-backend",
        choices=["json", "sqlite", "null"],
        default="json",
        help="persistent result cache backend ('null' disables caching)",
    )
    serve.add_argument(
        "--cache-path", default=None,
        help="cache directory (json) or database file (sqlite)",
    )
    serve.add_argument(
        "--cache-max-entries", type=int, default=1024,
        help="LRU bound on cached reports",
    )
    serve.add_argument(
        "--max-budget", type=float, default=120.0,
        help="reject problems whose budget exceeds this many seconds",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="do not log one line per request"
    )

    client = subparsers.add_parser(
        "client", help="solve a problem against a running `regel serve` instance"
    )
    client.add_argument(
        "description", nargs="?", default=None,
        help="natural-language description of the regex",
    )
    client.add_argument("--pos", action="append", default=[], help="positive example (repeatable)")
    client.add_argument("--neg", action="append", default=[], help="negative example (repeatable)")
    client.add_argument("-k", type=int, default=1, help="number of regexes to return")
    client.add_argument("-t", "--timeout", type=float, default=20.0, help="time budget in seconds")
    client.add_argument(
        "--variant",
        choices=[variant.value for variant in EngineVariant],
        default=EngineVariant.FULL.value,
        help="engine variant",
    )
    client.add_argument(
        "--server", default="http://127.0.0.1:8765", help="base URL of the service"
    )
    client.add_argument(
        "--poll", action="store_true",
        help="submit an async job and stream partial solutions as they arrive",
    )
    client.add_argument("--json", action="store_true", help="emit the RunReport as JSON")
    client.add_argument(
        "--stats", action="store_true", help="print GET /v1/stats and exit"
    )
    client.add_argument(
        "--health", action="store_true", help="print GET /v1/healthz and exit"
    )
    return parser


def _make_session(
    args: argparse.Namespace,
    static_sketches: Sequence[str] = (),
    config: Optional[SynthesisConfig] = None,
) -> Session:
    if args.scheduler == "sequential":
        scheduler = make_scheduler("sequential", fair=not args.greedy_budget)
    else:
        scheduler = make_scheduler(args.scheduler)
    if getattr(args, "pbe_only", False):
        provider = PbeOnlyProvider()
    elif static_sketches:
        provider = StaticSketchProvider(list(static_sketches))
    else:
        provider = NlSketchProvider(num_sketches=args.sketches)
    return Session(provider=provider, scheduler=scheduler, config=config)


def _run_solve(args: argparse.Namespace) -> int:
    problem = Problem(
        description=args.description,
        positive=args.pos,
        negative=args.neg,
        k=args.k,
        budget=args.timeout,
        variant=args.variant,
    )
    session = _make_session(
        args, static_sketches=args.sketch, config=SynthesisConfig(timeout=args.timeout)
    )
    if args.json:
        report = session.solve(problem)
        print(report.to_json(indent=2))
        return 0 if report.solved else 1
    # Stream solutions as the portfolio discovers them.
    for solution in session.iter_solutions(problem):
        line = solution.regex
        python_pattern = solution.python_regex()
        if python_pattern is not None:
            line += f"    (python: {python_pattern})"
        print(line, flush=True)
    report = session.last_report
    if report is None or not report.solved:
        print("no consistent regex found within the time budget", file=sys.stderr)
        return 1
    return 0


def _read_problems(path: str) -> List[Problem]:
    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    stripped = text.strip()
    if not stripped:
        return []
    if stripped.startswith("["):
        entries = json.loads(stripped)
    else:  # JSON lines
        entries = [json.loads(line) for line in stripped.splitlines() if line.strip()]
    return [Problem.from_dict(entry) for entry in entries]


def _run_batch(args: argparse.Namespace) -> int:
    problems = _read_problems(args.input)
    session = _make_session(args)
    solved = 0
    for problem in problems:
        report = session.solve(problem)
        solved += report.solved
        print(report.to_json(), flush=True)
    print(f"solved {solved}/{len(problems)} problems", file=sys.stderr)
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    from repro.analysis import SEVERITY_ERROR, has_errors, lint_problem, problem_unsatisfiable
    from repro.sketch.parser import parse_sketch

    problem = Problem(
        description=args.description, positive=args.pos, negative=args.neg
    )
    sketches = [(text, parse_sketch(text)) for text in args.sketch]
    diagnostics = lint_problem(problem, sketches=sketches)
    satisfiable = problem_unsatisfiable(problem) is None
    if args.json:
        print(
            json.dumps(
                {
                    "satisfiable": satisfiable,
                    "diagnostics": [diag.to_dict() for diag in diagnostics],
                },
                indent=2,
            )
        )
        return 1 if has_errors(diagnostics) else 0
    if not diagnostics:
        print("no diagnostics")
        return 0
    for diag in diagnostics:
        print(f"{diag.severity}: {diag.code} at {diag.path}: {diag.message}")
    errors = sum(diag.severity == SEVERITY_ERROR for diag in diagnostics)
    summary = f"{len(diagnostics)} diagnostic(s), {errors} error(s)"
    if not satisfiable:
        summary += " — the problem is statically unsatisfiable"
    print(summary, file=sys.stderr)
    return 1 if errors else 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        scheduler=args.scheduler,
        sketches=args.sketches,
        cache_backend=args.cache_backend,
        cache_path=args.cache_path,
        cache_max_entries=args.cache_max_entries,
        max_budget=args.max_budget,
        log_requests=not args.quiet,
    )
    return serve(config)


def _run_client(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.server)
    if args.health:
        print(json.dumps(client.healthz(), indent=2))
        return 0
    if args.stats:
        print(json.dumps(client.stats(), indent=2))
        return 0
    if args.description is None:
        print("regel: error: client needs a description (or --stats/--health)", file=sys.stderr)
        return 2
    problem = Problem(
        description=args.description,
        positive=args.pos,
        negative=args.neg,
        k=args.k,
        budget=args.timeout,
        variant=args.variant,
    )
    if args.poll:
        # Async job + polled partial solutions (the wire mirror of
        # Session.iter_solutions).
        for solution in client.iter_solutions(problem):
            print(solution.regex, flush=True)
        record = client.last_job or {}
        report = record.get("report")
        if args.json and report is not None:
            print(json.dumps(report, indent=2))
        return 0 if record.get("solutions") else 1
    report = client.solve(problem)
    if args.json:
        print(report.to_json(indent=2))
    else:
        for solution in report.solutions:
            print(solution.regex, flush=True)
        if report.provenance == "cache":
            print("(served from the persistent result cache)", file=sys.stderr)
    if not report.solved:
        print("no consistent regex found within the time budget", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    # Backwards compatibility: `regel "description" --pos ...` means `solve`.
    if argv and argv[0] not in {"solve", "batch", "lint", "serve", "client", "-h", "--help"}:
        argv = ["solve", *argv]
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return 2
    try:
        if args.command == "batch":
            return _run_batch(args)
        if args.command == "lint":
            return _run_lint(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "client":
            return _run_client(args)
        return _run_solve(args)
    except (SketchParseError, json.JSONDecodeError, ValueError, OSError) as exc:
        # User-input errors (bad sketch notation, malformed problem files,
        # invalid budgets, unreachable servers) get one clean line instead of
        # a traceback.
        print(f"regel: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
