"""Loader for real-world regex corpora in the Davis-2019 NDJSON format.

The corpus released with *"Why Aren't Regular Expressions a Lingua Franca?"*
(Davis et al., FSE 2019) — the standard source of regexes developers actually
ship — is newline-delimited JSON, one object per regex, with the pattern
string and per-language use counts.  Field names vary slightly across corpus
releases, so the loader is liberal in what it accepts:

* the pattern is read from ``pattern`` (falling back to ``regex``/``re``),
* static/dynamic use counts are summed from any numeric field (or numeric
  dict of per-language counts) whose name mentions ``static``/``dynamic``,
  with a plain ``uses``/``count`` field as a last resort.

Entries that cannot be used are **counted, never silently dropped**: both
:func:`load_corpus` and the downstream generator report per-reason skip
counters so a corpus run always accounts for every input line.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator, List, Tuple, Union

#: Loader-level skip reasons (the translator adds its own, see
#: :mod:`repro.corpus.translate`).
SKIP_MALFORMED_JSON = "malformed-json"
SKIP_MISSING_PATTERN = "missing-pattern"
SKIP_MIN_USES = "below-min-uses"

_PATTERN_FIELDS = ("pattern", "regex", "re")


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus regex: the pattern plus aggregated usage evidence."""

    pattern: str
    #: 1-based line number in the source NDJSON file (for error reporting).
    line: int
    static_uses: int = 0
    dynamic_uses: int = 0

    @property
    def total_uses(self) -> int:
        return self.static_uses + self.dynamic_uses


@dataclass
class LoadResult:
    """Entries that loaded plus per-reason counts for everything that didn't."""

    entries: List[CorpusEntry] = field(default_factory=list)
    skipped: Counter = field(default_factory=Counter)

    @property
    def total_lines(self) -> int:
        return len(self.entries) + sum(self.skipped.values())


def _sum_numeric(value: object) -> Tuple[int, bool]:
    """Sum a numeric field or a dict of per-language numeric counts."""
    if isinstance(value, bool):
        return 0, False
    if isinstance(value, (int, float)):
        return int(value), True
    if isinstance(value, dict):
        total = 0
        found = False
        for inner in value.values():
            amount, ok = _sum_numeric(inner)
            total += amount
            found = found or ok
        return total, found
    return 0, False


def _use_counts(record: dict) -> Tuple[int, int]:
    static = dynamic = 0
    matched = False
    for key, value in record.items():
        name = key.lower()
        amount, ok = _sum_numeric(value)
        if not ok:
            continue
        if "static" in name:
            static += amount
            matched = True
        elif "dynamic" in name:
            dynamic += amount
            matched = True
    if not matched:
        for key in ("uses", "count", "useCount", "use_count"):
            amount, ok = _sum_numeric(record.get(key))
            if ok:
                static = amount
                break
    return static, dynamic


def iter_corpus_lines(source: Union[str, Path, IO[str]]) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, raw_line)`` for non-blank lines of an NDJSON source."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from iter_corpus_lines(handle)
        return
    for number, raw in enumerate(source, start=1):
        if raw.strip():
            yield number, raw


def load_corpus(
    source: Union[str, Path, IO[str]],
    min_uses: int = 0,
    limit: int = 0,
) -> LoadResult:
    """Load an NDJSON corpus, skipping (and counting) unusable lines.

    ``min_uses`` filters out rarely-used regexes (total static + dynamic
    uses below the threshold); ``limit`` caps the number of *loaded* entries
    (0 = unlimited) — skipped lines do not consume the limit.
    """
    result = LoadResult()
    for number, raw in iter_corpus_lines(source):
        if limit and len(result.entries) >= limit:
            break
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            result.skipped[SKIP_MALFORMED_JSON] += 1
            continue
        if not isinstance(record, dict):
            result.skipped[SKIP_MALFORMED_JSON] += 1
            continue
        pattern = next(
            (record[key] for key in _PATTERN_FIELDS if isinstance(record.get(key), str)),
            None,
        )
        if not pattern:
            result.skipped[SKIP_MISSING_PATTERN] += 1
            continue
        static, dynamic = _use_counts(record)
        if static + dynamic < min_uses:
            result.skipped[SKIP_MIN_USES] += 1
            continue
        result.entries.append(
            CorpusEntry(
                pattern=pattern, line=number, static_uses=static, dynamic_uses=dynamic
            )
        )
    return result
