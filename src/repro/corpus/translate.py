"""Translation of real-world (PCRE-style) regex patterns into the repro DSL.

Corpus regexes are written in the syntax developers actually ship —
``^[a-z0-9_]{3,16}$``, ``\\d+(\\.\\d+)?`` — while the synthesis engine works
over the paper's DSL (Figure 5).  :func:`translate_pattern` parses a practical
subset of that syntax and produces a semantically equivalent DSL regex *over
the printable-ASCII alphabet* the DSL is interpreted on.

Anchoring follows ``re.search`` semantics, which is how the overwhelming
majority of corpus regexes are used: an unanchored pattern becomes
``Contains(body)``, ``^pat`` becomes ``StartsWith(body)``, ``pat$`` becomes
``EndsWith(body)`` and ``^pat$`` matches exactly the body's language.

Patterns using constructs the DSL cannot express — lookaround,
backreferences, word boundaries, mid-pattern anchors — and patterns escaping
the DSL alphabet are **skipped, never mistranslated**: the translator raises
:class:`SkipPattern` carrying a stable machine-readable ``reason`` code that
the corpus loader and generator aggregate into per-reason counters.
"""

from __future__ import annotations

import string
from typing import List, Optional, Tuple

from repro.dsl import ast
from repro.dsl.charclass import PRINTABLE_ALPHABET, CharClassKind, chars_of

# ---------------------------------------------------------------------------
# Skip reasons
# ---------------------------------------------------------------------------

#: Stable reason codes, aggregated by the loader/generator into counters.
SKIP_PARSE_ERROR = "parse-error"
SKIP_LOOKAROUND = "lookaround"
SKIP_BACKREFERENCE = "backreference"
SKIP_INNER_ANCHOR = "inner-anchor"
SKIP_WORD_BOUNDARY = "word-boundary"
SKIP_INLINE_FLAGS = "inline-flags"
SKIP_UNSUPPORTED_ESCAPE = "unsupported-escape"
SKIP_ALPHABET_ESCAPE = "alphabet-escape"
SKIP_CLASS_TOO_LARGE = "class-too-large"
SKIP_POSSESSIVE = "possessive-quantifier"
SKIP_TOO_LARGE = "too-large"
SKIP_EMPTY_PATTERN = "empty-pattern"


class SkipPattern(ValueError):
    """A pattern the translator deliberately refuses, with a typed reason."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason
        self.detail = detail


_ALPHABET = frozenset(PRINTABLE_ALPHABET)

#: Maximum ``Or`` alternatives a character class may expand into (predefined
#: classes count as one alternative each).
MAX_CLASS_PARTS = 12

#: Maximum repetition count accepted in ``{n,m}`` quantifiers — the automata
#: layer unrolls repeats, so huge counts would explode the DFA.
MAX_REPEAT = 64

#: Maximum DSL nodes in the translated regex.
MAX_NODES = 400

#: Predefined classes tried (largest first) when covering a character set.
#: ``ANY`` is checked separately; ``VOW``/``SPEC`` are never guessed — a class
#: that happens to equal them is almost never *meant* as "vowels".
_COVER_ORDER = (
    CharClassKind.ALPHANUM,
    CharClassKind.LET,
    CharClassKind.HEX,
    CharClassKind.NUM,
    CharClassKind.CAP,
    CharClassKind.LOW,
)

_DIGITS = frozenset(string.digits)
_WORD = frozenset(string.digits + string.ascii_letters + "_")
#: ``\s`` intersected with the DSL alphabet (strings over printable ASCII
#: cannot contain ``\n``/``\r``/``\f``/``\v`` anyway).
_SPACE = frozenset(" \t")

_POSIX_CLASSES = {
    "alpha": frozenset(string.ascii_letters),
    "digit": _DIGITS,
    "alnum": frozenset(string.digits + string.ascii_letters),
    "upper": frozenset(string.ascii_uppercase),
    "lower": frozenset(string.ascii_lowercase),
    "xdigit": frozenset(string.hexdigits),
    "space": _SPACE,
    "word": _WORD,
    "punct": frozenset(c for c in PRINTABLE_ALPHABET if not c.isalnum() and c not in " \t"),
}


def charset_to_regex(chars: frozenset[str]) -> ast.Regex:
    """A DSL regex matching exactly one character from ``chars``.

    Covers the set greedily with predefined classes, then literals; raises
    :class:`SkipPattern` when the expansion would exceed :data:`MAX_CLASS_PARTS`.
    """
    if not chars:
        raise SkipPattern(SKIP_ALPHABET_ESCAPE, "character class is empty over the DSL alphabet")
    if chars == _ALPHABET:
        return ast.ANY
    parts: List[ast.Regex] = []
    remaining = set(chars)
    for kind in _COVER_ORDER:
        kind_chars = chars_of(kind)
        if kind_chars <= remaining:
            parts.append(ast.CharClass(kind))
            remaining -= kind_chars
    parts.extend(ast.literal(c) for c in sorted(remaining))
    if len(parts) > MAX_CLASS_PARTS:
        raise SkipPattern(
            SKIP_CLASS_TOO_LARGE,
            f"{len(parts)} alternatives (cap {MAX_CLASS_PARTS})",
        )
    return ast.or_all(parts)


class _PatternParser:
    """Recursive-descent parser for the supported PCRE subset."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- primitives ----------------------------------------------------------

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return "" if self.eof() else self.text[self.pos]

    def take(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        return char

    def error(self, detail: str) -> SkipPattern:
        return SkipPattern(SKIP_PARSE_ERROR, f"{detail} at position {self.pos}")

    # -- grammar -------------------------------------------------------------

    def parse(self) -> ast.Regex:
        regex = self.parse_alternation()
        if not self.eof():
            raise self.error(f"unexpected {self.peek()!r}")
        return regex

    def parse_alternation(self) -> ast.Regex:
        branches = [self.parse_sequence()]
        while self.peek() == "|":
            self.take()
            branches.append(self.parse_sequence())
        return ast.or_all(branches)

    def parse_sequence(self) -> ast.Regex:
        parts: List[ast.Regex] = []
        while not self.eof() and self.peek() not in "|)":
            parts.append(self.parse_term())
        return ast.concat_all(parts) if parts else ast.Epsilon()

    def parse_term(self) -> ast.Regex:
        atom = self.parse_atom()
        return self.parse_quantifier(atom)

    def parse_quantifier(self, atom: ast.Regex) -> ast.Regex:
        char = self.peek()
        if char == "*":
            self.take()
            result: ast.Regex = ast.KleeneStar(atom)
        elif char == "+":
            self.take()
            result = ast.RepeatAtLeast(atom, 1)
        elif char == "?":
            self.take()
            result = ast.Optional(atom)
        elif char == "{":
            result = self.parse_counted(atom)
            if result is None:  # `{` was a literal brace, already consumed
                return self.parse_quantifier_literal_brace(atom)
        else:
            return atom
        # Lazy quantifiers match the same *language*; possessive ones do not.
        if self.peek() == "?":
            self.take()
        elif self.peek() == "+":
            raise SkipPattern(SKIP_POSSESSIVE, self.text)
        return result

    def parse_counted(self, atom: ast.Regex) -> Optional[ast.Regex]:
        """``{n}``/``{n,}``/``{n,m}``; returns None for a literal ``{``."""
        start = self.pos
        self.take()  # '{'
        digits_low = self._digits()
        if self.peek() == "}" and digits_low:
            self.take()
            return self._repeat(atom, int(digits_low), int(digits_low))
        if self.peek() == "," and digits_low is not None and digits_low != "":
            self.take()
            digits_high = self._digits()
            if self.peek() == "}":
                self.take()
                if digits_high:
                    return self._repeat(atom, int(digits_low), int(digits_high))
                return self._repeat(atom, int(digits_low), None)
        # Not a quantifier after all (e.g. ``a{`` or ``x{,3}``): PCRE treats
        # the brace as a literal.  Rewind and let the caller handle it.
        self.pos = start
        return None

    def parse_quantifier_literal_brace(self, atom: ast.Regex) -> ast.Regex:
        # The '{' at self.pos is literal; atom stays as parsed and the brace
        # will be consumed as an ordinary character by the next parse_term.
        return atom

    def _digits(self) -> str:
        start = self.pos
        while not self.eof() and self.text[self.pos].isdigit():
            self.pos += 1
        return self.text[start : self.pos]

    def _repeat(self, atom: ast.Regex, low: int, high: Optional[int]) -> ast.Regex:
        bound = high if high is not None else low
        if bound > MAX_REPEAT or low > MAX_REPEAT:
            raise SkipPattern(SKIP_TOO_LARGE, f"repeat count {low},{high} (cap {MAX_REPEAT})")
        if high is not None and low > high:
            raise self.error(f"bad repeat range {{{low},{high}}}")
        if high is None:  # {n,}
            return ast.KleeneStar(atom) if low == 0 else ast.RepeatAtLeast(atom, low)
        if high == 0:  # {0} / {0,0}
            return ast.Epsilon()
        if low == 0:  # {0,m}
            return ast.Optional(self._range(atom, 1, high))
        return self._range(atom, low, high)

    @staticmethod
    def _range(atom: ast.Regex, low: int, high: int) -> ast.Regex:
        return ast.Repeat(atom, low) if low == high else ast.RepeatRange(atom, low, high)

    # -- atoms ---------------------------------------------------------------

    def parse_atom(self) -> ast.Regex:
        char = self.peek()
        if char == "(":
            return self.parse_group()
        if char == "[":
            return charset_to_regex(self.parse_class())
        if char == ".":
            self.take()
            return ast.ANY
        if char == "\\":
            return self.parse_escape()
        if char in "^$":
            raise SkipPattern(SKIP_INNER_ANCHOR, self.text)
        if char in "*+?":
            raise self.error(f"dangling quantifier {char!r}")
        self.take()
        return self._literal(char)

    def _literal(self, char: str) -> ast.Regex:
        if char not in _ALPHABET:
            raise SkipPattern(SKIP_ALPHABET_ESCAPE, repr(char))
        return ast.literal(char)

    def parse_group(self) -> ast.Regex:
        self.take()  # '('
        if self.peek() == "?":
            self.take()
            char = self.peek()
            if char in "=!":
                raise SkipPattern(SKIP_LOOKAROUND, self.text)
            if char == "<":
                follow = self.text[self.pos + 1 : self.pos + 2]
                if follow in ("=", "!"):
                    raise SkipPattern(SKIP_LOOKAROUND, self.text)
                self._skip_group_name(">")  # (?<name>...) — named group
            elif char == "P":
                self.take()
                if self.peek() == "=":
                    raise SkipPattern(SKIP_BACKREFERENCE, self.text)
                self._skip_group_name(">")  # (?P<name>...)
            elif char == ":":
                self.take()  # (?:...) — non-capturing
            elif char == ">":
                raise SkipPattern(SKIP_POSSESSIVE, "atomic group")
            else:
                raise SkipPattern(SKIP_INLINE_FLAGS, self.text)
        body = self.parse_alternation()
        if self.peek() != ")":
            raise self.error("unbalanced parenthesis")
        self.take()
        return body

    def _skip_group_name(self, closing: str) -> None:
        if self.peek() == "<":
            self.take()
        while not self.eof() and self.peek() != closing:
            self.take()
        if self.eof():
            raise self.error("unterminated group name")
        self.take()

    # -- escapes -------------------------------------------------------------

    def parse_escape(self) -> ast.Regex:
        chars = self.escape_charset(in_class=False)
        return charset_to_regex(chars)

    def escape_charset(self, in_class: bool) -> frozenset[str]:
        """The character set denoted by one ``\\x`` escape sequence."""
        self.take()  # '\'
        if self.eof():
            raise self.error("trailing backslash")
        char = self.take()
        if char == "d":
            return _DIGITS
        if char == "D":
            return _ALPHABET - _DIGITS
        if char == "w":
            return _WORD
        if char == "W":
            return _ALPHABET - _WORD
        if char == "s":
            return _SPACE
        if char == "S":
            return _ALPHABET - _SPACE
        if char == "t":
            return frozenset("\t")
        if char in "nrfv0":
            raise SkipPattern(SKIP_ALPHABET_ESCAPE, f"\\{char}")
        if char in "bB":
            if in_class and char == "b":  # [\b] is backspace
                raise SkipPattern(SKIP_ALPHABET_ESCAPE, "[\\b]")
            raise SkipPattern(SKIP_WORD_BOUNDARY, f"\\{char}")
        if char in "AZzG":
            raise SkipPattern(SKIP_INNER_ANCHOR, f"\\{char}")
        if char.isdigit():
            raise SkipPattern(SKIP_BACKREFERENCE, f"\\{char}")
        if char == "k":
            raise SkipPattern(SKIP_BACKREFERENCE, "\\k")
        if char == "x":
            return frozenset(self._hex_escape())
        if char in "upPQEC":
            raise SkipPattern(SKIP_UNSUPPORTED_ESCAPE, f"\\{char}")
        if char.isalnum():
            raise SkipPattern(SKIP_UNSUPPORTED_ESCAPE, f"\\{char}")
        # Escaped punctuation: a literal.
        if char not in _ALPHABET:
            raise SkipPattern(SKIP_ALPHABET_ESCAPE, repr(char))
        return frozenset(char)

    def _hex_escape(self) -> str:
        if self.peek() == "{":
            raise SkipPattern(SKIP_UNSUPPORTED_ESCAPE, "\\x{...}")
        digits = self.text[self.pos : self.pos + 2]
        if len(digits) != 2 or any(c not in string.hexdigits for c in digits):
            raise self.error("bad \\xNN escape")
        self.pos += 2
        char = chr(int(digits, 16))
        if char not in _ALPHABET:
            raise SkipPattern(SKIP_ALPHABET_ESCAPE, f"\\x{digits}")
        return char

    # -- character classes ---------------------------------------------------

    def parse_class(self) -> frozenset[str]:
        self.take()  # '['
        negated = False
        if self.peek() == "^":
            negated = True
            self.take()
        chars: set[str] = set()
        dropped_outside = False
        first = True
        while True:
            if self.eof():
                raise self.error("unterminated character class")
            char = self.peek()
            if char == "]" and not first:
                self.take()
                break
            first = False
            if char == "[" and self.text[self.pos : self.pos + 2] == "[:":
                chars |= self._posix_class()
                continue
            low, is_set = self._class_atom()
            if is_set is not None:
                chars |= is_set
                continue
            if low is None:
                dropped_outside = True
                low = "\0"  # placeholder for range bookkeeping
            if self.peek() == "-" and self.text[self.pos + 1 : self.pos + 2] not in ("", "]"):
                self.take()
                high, high_set = self._class_atom()
                if high_set is not None:
                    raise self.error("character range with a class endpoint")
                if high is None:
                    dropped_outside = True
                    continue
                if low == "\0":
                    dropped_outside = True
                    continue
                if ord(low) > ord(high):
                    raise self.error(f"reversed range {low}-{high}")
                span = {chr(code) for code in range(ord(low), ord(high) + 1)}
                dropped_outside |= bool(span - _ALPHABET)
                chars |= span & _ALPHABET
            elif low != "\0":
                chars.add(low)
        if negated:
            # Complement over the DSL alphabet.  Dropped out-of-alphabet
            # members only *shrink* the removed set, which is exactly right:
            # those characters cannot occur in DSL strings anyway.
            result = _ALPHABET - chars
        else:
            result = frozenset(chars)
            if not result and dropped_outside:
                raise SkipPattern(
                    SKIP_ALPHABET_ESCAPE, "class is empty over the DSL alphabet"
                )
        if not result:
            raise self.error("empty character class")
        return frozenset(result)

    def _class_atom(self) -> Tuple[Optional[str], Optional[frozenset[str]]]:
        """One class member: ``(char, None)``, ``(None, None)`` if dropped
        (outside the alphabet), or ``(None, set)`` for an escape class."""
        if self.peek() == "\\":
            saved = self.pos
            charset = self.escape_charset(in_class=True)
            if len(charset) == 1:
                (char,) = charset
                # An escaped literal can serve as a range endpoint.
                if self.text[saved + 1] not in "dDwWsS":
                    return char, None
            return None, charset
        char = self.take()
        if char not in _ALPHABET:
            return None, None
        return char, None

    def _posix_class(self) -> frozenset[str]:
        end = self.text.find(":]", self.pos)
        if end == -1:
            raise self.error("unterminated POSIX class")
        name = self.text[self.pos + 2 : end]
        self.pos = end + 2
        if name not in _POSIX_CLASSES:
            raise SkipPattern(SKIP_UNSUPPORTED_ESCAPE, f"[:{name}:]")
        return _POSIX_CLASSES[name]


def _has_top_level_alternation(pattern: str) -> bool:
    """True when the pattern has an unparenthesised ``|`` at nesting depth 0."""
    depth = 0
    in_class = False
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if char == "\\":
            index += 2
            continue
        if in_class:
            if char == "]":
                in_class = False
        elif char == "[":
            in_class = True
        elif char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        elif char == "|" and depth == 0:
            return True
        index += 1
    return False


def _strip_anchors(pattern: str) -> Tuple[str, bool, bool]:
    """Strip whole-pattern anchors; returns (body, anchored_start, anchored_end).

    With a top-level alternation an edge anchor binds only to its own branch
    (``^a|b$`` is *not* ``^(a|b)$``), so such patterns are skipped rather than
    mistranslated.
    """
    anchored_start = anchored_end = False
    edge_anchored = (
        pattern.startswith(("^", "\\A"))
        or pattern.endswith(("$", "\\z", "\\Z"))
    )
    if edge_anchored and _has_top_level_alternation(pattern):
        raise SkipPattern(SKIP_INNER_ANCHOR, "anchored branch of a top-level alternation")
    if pattern.startswith("^"):
        anchored_start = True
        pattern = pattern[1:]
    elif pattern.startswith("\\A"):
        anchored_start = True
        pattern = pattern[2:]
    for suffix in ("$", "\\z", "\\Z"):
        if pattern.endswith(suffix):
            backslashes = 0
            index = len(pattern) - len(suffix) - 1
            while index >= 0 and pattern[index] == "\\":
                backslashes += 1
                index -= 1
            if suffix == "$" and backslashes % 2 == 1:
                continue  # escaped \$: a literal dollar
            if suffix != "$" and backslashes % 2 == 1:
                continue  # the backslash belongs to an earlier escape
            anchored_end = True
            pattern = pattern[: len(pattern) - len(suffix)]
            break
    return pattern, anchored_start, anchored_end


def node_count(regex: ast.Regex) -> int:
    return sum(1 for _ in regex.walk())


def translate_pattern(pattern: str) -> ast.Regex:
    """Translate one real-world pattern into the DSL (``re.search`` semantics).

    Raises :class:`SkipPattern` with a stable ``reason`` code for every
    construct the DSL cannot express; never silently mistranslates.
    """
    if not pattern:
        raise SkipPattern(SKIP_EMPTY_PATTERN, "empty pattern")
    body_text, anchored_start, anchored_end = _strip_anchors(pattern)
    body = _PatternParser(body_text).parse()
    if anchored_start and anchored_end:
        result = body
    elif anchored_start:
        result = ast.StartsWith(body)
    elif anchored_end:
        result = ast.EndsWith(body)
    else:
        result = ast.Contains(body)
    if node_count(result) > MAX_NODES:
        raise SkipPattern(SKIP_TOO_LARGE, f"{node_count(result)} DSL nodes (cap {MAX_NODES})")
    return result
