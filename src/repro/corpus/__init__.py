"""Real-world regex corpus subsystem.

Bridges corpora of regexes developers actually ship (Davis-2019 NDJSON
format) and the synthesis engine:

* :mod:`repro.corpus.loader` — NDJSON corpus parsing with per-reason skip
  counters,
* :mod:`repro.corpus.translate` — PCRE-subset → DSL translation (skips,
  never mistranslates),
* :mod:`repro.corpus.generate` — vetted :class:`~repro.api.problem.Problem`
  generation: sampled positives, near-miss negatives, hole-punched
  h-sketches, static satisfiability checks.

The output of :func:`generate_problems` is plain Problem NDJSON — the same
format consumed by ``regel batch``, ``regel corpus ingest`` and the
service's ``POST /v1/batch``.
"""

from repro.corpus.loader import (
    CorpusEntry,
    LoadResult,
    load_corpus,
)
from repro.corpus.translate import (
    SkipPattern,
    charset_to_regex,
    translate_pattern,
)
from repro.corpus.generate import (
    GenerationResult,
    GenerationSkip,
    GeneratorConfig,
    generate_problems,
    problem_from_pattern,
    punch_holes,
)

__all__ = [
    "CorpusEntry",
    "LoadResult",
    "load_corpus",
    "SkipPattern",
    "charset_to_regex",
    "translate_pattern",
    "GenerationResult",
    "GenerationSkip",
    "GeneratorConfig",
    "generate_problems",
    "problem_from_pattern",
    "punch_holes",
]
