"""Synthesis-problem generation from real-world corpus regexes.

Each corpus pattern that survives translation becomes a frozen
:class:`~repro.api.problem.Problem`:

* **positive examples** are sampled from the regex's language
  (:func:`repro.automata.sampling.sample_positive`),
* **negative examples** are near misses — mutations of the positives plus
  strings distinguishing the regex from a deliberately weakened variant
  (:func:`repro.automata.sampling.distinguishing_examples`),
* **h-sketches** are derived from the ground truth by *hole punching*:
  random subtrees (height- and count-bounded) are replaced by constrained
  holes whose components are the character classes the subtree mentions —
  exactly the shape a semantic parser would recover from a description,
* the **description** is the original pattern text, so the NL→sketch path
  can later be evaluated against the same problems.

Everything is deterministic under a fixed seed: each pattern gets its own
``random.Random`` seeded from ``(seed, pattern)``, so inserting or removing
corpus entries never perturbs the problems generated for the others.

Generated problems are *statically vetted* before they are emitted: a
problem whose example sets conflict, or whose every pinned sketch provably
rejects a positive example (:func:`repro.analysis.analyzer.facts_of_sketch`),
is dropped with a counted skip reason rather than shipped to the solver.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Tuple

from repro.api.problem import Problem
from repro.corpus.loader import CorpusEntry
from repro.corpus.translate import SkipPattern, translate_pattern
from repro.dsl import ast as rast
from repro.sketch import ast as sast
from repro.sketch.printer import sketch_to_string

#: Generation-level skip reasons (translator and sampler add their own).
SKIP_NO_POSITIVES = "no-positives"
SKIP_NO_NEGATIVES = "no-negatives"
SKIP_SKETCH_REJECTS = "sketch-rejects-positive"
SKIP_UNSATISFIABLE = "unsatisfiable"

#: Maximum components kept in a punched hole.
MAX_HOLE_COMPONENTS = 3


class GenerationSkip(Exception):
    """A per-entry reason problem generation was abandoned (counted, not fatal)."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the corpus → problems pipeline (all deterministic per seed)."""

    positives: int = 4
    negatives: int = 4
    #: Sketches pinned per problem (0 disables hole punching entirely).
    sketches: int = 2
    #: Holes punched per sketch.
    holes: int = 1
    #: Maximum *height* of a subtree that may be replaced by a hole.  Should
    #: not exceed the engine's completion depth or the sketch may not be able
    #: to regenerate the ground truth.
    hole_depth: int = 2
    seed: int = 0
    #: Problem parameters stamped onto every generated problem.
    budget: float = 10.0
    k: int = 1
    max_length: int = 18


@dataclass
class GenerationResult:
    """Problems generated plus per-reason counts for every skipped entry."""

    problems: List[Problem] = field(default_factory=list)
    skipped: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return len(self.problems) + sum(self.skipped.values())


# ---------------------------------------------------------------------------
# Hole punching
# ---------------------------------------------------------------------------


def _height(regex: rast.Regex) -> int:
    children = regex.children() if hasattr(regex, "children") else ()
    return 1 + max((_height(child) for child in children), default=0)


def _subtree_sizes(regex: rast.Regex) -> List[Tuple[int, rast.Regex, int, int]]:
    """Pre-order ``(index, node, size, height)`` for every subtree.

    Indices (not node identity) address subtrees: DSL nodes are hash-consed,
    so two occurrences of ``<num>`` are the *same object* and only a
    positional addressing scheme can punch one without punching the other.
    """
    out: List[Tuple[int, rast.Regex, int, int]] = []

    def visit(node: rast.Regex) -> Tuple[int, int]:
        index = len(out)
        out.append((index, node, 0, 0))  # placeholder
        size = 1
        height = 0
        children = node.children() if hasattr(node, "children") else ()
        for child in children:
            child_size, child_height = visit(child)
            size += child_size
            height = max(height, child_height)
        out[index] = (index, node, size, height + 1)
        return size, height + 1

    visit(regex)
    return out


def _hole_for(subtree: rast.Regex) -> sast.Hole:
    """A constrained hole whose components are the subtree's character classes."""
    components: List[sast.Sketch] = []
    seen: set[rast.Regex] = set()
    for node in subtree.walk():
        if isinstance(node, rast.CharClass) and node not in seen:
            seen.add(node)
            components.append(sast.ConcreteRegexSketch(node))
            if len(components) >= MAX_HOLE_COMPONENTS:
                break
    return sast.Hole(components)


def punch_holes(
    regex: rast.Regex,
    rng: random.Random,
    holes: int = 1,
    hole_depth: int = 2,
) -> sast.Sketch:
    """Replace up to ``holes`` random subtrees of height ≤ ``hole_depth`` with
    constrained holes, producing an h-sketch the engine can complete back to
    (at least) the original regex."""
    nodes = _subtree_sizes(regex)
    candidates = [
        (index, node, size)
        for index, node, size, height in nodes
        if height <= hole_depth and index != 0
    ]
    targets: dict[int, rast.Regex] = {}
    covered: List[Tuple[int, int]] = []
    rng.shuffle(candidates)
    for index, node, size in candidates:
        if len(targets) >= holes:
            break
        if any(index < end and index + size > start for start, end in covered):
            continue
        targets[index] = node
        covered.append((index, index + size))
    if not targets:
        # Single-node regex (or nothing punchable): the whole thing is a hole.
        return _hole_for(regex)

    counter = [0]

    def rebuild(node: rast.Regex) -> sast.Sketch:
        index = counter[0]
        counter[0] += 1
        if index in targets:
            # Skip over the punched subtree's nodes in pre-order numbering.
            size = next(s for i, _, s, _ in nodes if i == index)
            counter[0] = index + size
            return _hole_for(node)
        if isinstance(node, (rast.StartsWith, rast.EndsWith, rast.Contains,
                             rast.Not, rast.Optional, rast.KleeneStar)):
            return sast.OpSketch(type(node).__name__, [rebuild(node.arg)])
        if isinstance(node, (rast.Concat, rast.Or, rast.And)):
            left = rebuild(node.left)
            right = rebuild(node.right)
            return sast.OpSketch(type(node).__name__, [left, right])
        if isinstance(node, rast.Repeat):
            return sast.IntOpSketch("Repeat", rebuild(node.arg), (node.count,))
        if isinstance(node, rast.RepeatAtLeast):
            return sast.IntOpSketch("RepeatAtLeast", rebuild(node.arg), (node.count,))
        if isinstance(node, rast.RepeatRange):
            return sast.IntOpSketch(
                "RepeatRange", rebuild(node.arg), (node.low, node.high)
            )
        return sast.ConcreteRegexSketch(node)

    return rebuild(regex)


# ---------------------------------------------------------------------------
# Example generation
# ---------------------------------------------------------------------------


def _weakened(regex: rast.Regex, rng: random.Random, hole_depth: int) -> Optional[rast.Regex]:
    """The regex with one random small subtree replaced by ``<any>*``.

    Over-approximates the language, so strings distinguishing it from the
    truth are guaranteed near-miss *negatives* for the original problem.
    """
    nodes = _subtree_sizes(regex)
    candidates = [
        (index, node, size)
        for index, node, size, height in nodes
        if height <= hole_depth and index != 0
    ]
    if not candidates:
        return None
    index, _, size = rng.choice(candidates)
    hole_filler = rast.KleeneStar(rast.ANY)
    counter = [0]

    def rebuild(node: rast.Regex) -> rast.Regex:
        position = counter[0]
        counter[0] += 1
        if position == index:
            counter[0] = position + size
            return hole_filler
        if isinstance(node, (rast.StartsWith, rast.EndsWith, rast.Contains,
                             rast.Not, rast.Optional, rast.KleeneStar)):
            return type(node)(rebuild(node.arg))
        if isinstance(node, (rast.Concat, rast.Or, rast.And)):
            left = rebuild(node.left)
            right = rebuild(node.right)
            return type(node)(left, right)
        if isinstance(node, rast.Repeat):
            return rast.Repeat(rebuild(node.arg), node.count)
        if isinstance(node, rast.RepeatAtLeast):
            return rast.RepeatAtLeast(rebuild(node.arg), node.count)
        if isinstance(node, rast.RepeatRange):
            return rast.RepeatRange(rebuild(node.arg), node.low, node.high)
        return node

    return rebuild(regex)


def problem_from_pattern(pattern: str, config: Optional[GeneratorConfig] = None) -> Problem:
    """Generate one vetted Problem from a raw corpus pattern.

    Raises :class:`~repro.corpus.translate.SkipPattern` or
    :class:`GenerationSkip` (both carrying a stable ``reason`` code) when the
    pattern cannot become a usable problem.
    """
    from repro.analysis.analyzer import facts_of_sketch
    from repro.analysis.diagnostics import problem_unsatisfiable
    from repro.automata.sampling import (
        EmptyLanguageError,
        UniversalLanguageError,
        distinguishing_examples,
        sample_negative,
        sample_positive,
    )
    from repro.sketch.parser import parse_sketch

    config = config or GeneratorConfig()
    regex = translate_pattern(pattern)
    rng = random.Random(f"{config.seed}|{pattern}")

    positives = sample_positive(regex, config.positives, rng, config.max_length)
    if not positives:
        raise GenerationSkip(SKIP_NO_POSITIVES, pattern)
    try:
        negatives = sample_negative(
            regex, config.negatives, rng, positives, config.max_length
        )
    except UniversalLanguageError as exc:
        raise GenerationSkip(exc.reason, pattern) from None
    except EmptyLanguageError as exc:
        raise GenerationSkip(exc.reason, pattern) from None
    if len(negatives) < config.negatives:
        # Top up with strings separating the truth from a weakened variant —
        # the sharpest near misses available (they sit just outside the
        # boundary a sloppy solution would blur).
        weak = _weakened(regex, rng, config.hole_depth)
        if weak is not None and weak != regex:
            try:
                for text, should_match in distinguishing_examples(
                    regex, weak, count=config.negatives, rng=rng
                ):
                    if not should_match and text not in negatives:
                        negatives.append(text)
            except (ValueError, RecursionError):
                pass
    if not negatives:
        raise GenerationSkip(SKIP_NO_NEGATIVES, pattern)
    negatives = sorted(negatives, key=lambda s: (len(s), s))[: config.negatives]

    sketch_texts: List[str] = []
    if config.sketches > 0:
        rejected = 0
        for _ in range(config.sketches * 2):
            if len(sketch_texts) >= config.sketches:
                break
            sketch = punch_holes(regex, rng, config.holes, config.hole_depth)
            text = sketch_to_string(sketch)
            if text in sketch_texts:
                continue
            # Round-trip through the textual notation (the Problem stores
            # text) and statically vet: a sketch whose facts reject a known
            # positive could never complete to the ground truth.
            facts = facts_of_sketch(parse_sketch(text), hole_depth=max(3, config.hole_depth))
            if any(facts.reject_reason(example) for example in positives):
                rejected += 1
                continue
            sketch_texts.append(text)
        if not sketch_texts:
            raise GenerationSkip(SKIP_SKETCH_REJECTS, pattern)

    problem = Problem(
        description=pattern,
        positive=positives,
        negative=negatives,
        k=config.k,
        budget=config.budget,
        sketches=sketch_texts,
    )
    if problem_unsatisfiable(problem) is not None:
        raise GenerationSkip(SKIP_UNSATISFIABLE, pattern)
    return problem


def generate_problems(
    entries: Iterable["CorpusEntry | str"],
    config: Optional[GeneratorConfig] = None,
) -> GenerationResult:
    """Run the full pipeline over corpus entries, counting every skip reason."""
    config = config or GeneratorConfig()
    result = GenerationResult()
    for entry in entries:
        pattern = entry.pattern if isinstance(entry, CorpusEntry) else entry
        try:
            result.problems.append(problem_from_pattern(pattern, config))
        except (SkipPattern, GenerationSkip) as exc:
            result.skipped[exc.reason] += 1
    return result


def with_seed(config: GeneratorConfig, seed: int) -> GeneratorConfig:
    """A copy of ``config`` with a different seed (convenience for tooling)."""
    return replace(config, seed=seed)
