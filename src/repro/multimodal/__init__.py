"""The multi-modal Regel tool: natural language + examples → top-k regexes.

This package wires together the semantic parser (:mod:`repro.nlp`) and the
sketch-guided PBE engine (:mod:`repro.synthesis`) into the end-to-end system
of Figure 1, plus the interactive example-feedback protocol used by the
evaluation (Section 8.1).
"""

from repro.multimodal.regel import Regel, RegelResult
from repro.multimodal.interaction import InteractiveSession, IterationOutcome, run_interactive

__all__ = [
    "Regel",
    "RegelResult",
    "InteractiveSession",
    "IterationOutcome",
    "run_interactive",
]
