"""Iterative example-feedback protocol (Section 8.1 methodology).

PBE tools are meant to be used interactively: the evaluation first runs each
tool on the benchmark's initial examples; if the intended regex is not among
the returned results, two additional examples are provided and the tool is
re-run, up to a maximum of four iterations.  The additional examples are
*distinguishing* strings on which the tool's best candidate and the ground
truth disagree (or fresh samples of the ground-truth language when the tool
returned nothing) — exactly the clarifying examples a user would add.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.automata.operations import regex_equivalent
from repro.automata.sampling import distinguishing_examples, sample_negative, sample_positive
from repro.datasets.benchmark import Benchmark
from repro.dsl import ast as rast


@dataclass
class IterationOutcome:
    """Result of one iteration of the interactive protocol."""

    iteration: int
    solved: bool
    elapsed: float
    num_positive: int
    num_negative: int
    returned: int


@dataclass
class InteractiveSession:
    """Full record of an interactive run on one benchmark."""

    benchmark_id: str
    outcomes: List[IterationOutcome] = field(default_factory=list)

    @property
    def solved_at(self) -> Optional[int]:
        """First iteration (0-based) at which the benchmark was solved, or None."""
        for outcome in self.outcomes:
            if outcome.solved:
                return outcome.iteration
        return None

    def solved_by(self, iteration: int) -> bool:
        solved = self.solved_at
        return solved is not None and solved <= iteration

    def time_at(self, iteration: int) -> Optional[float]:
        for outcome in self.outcomes:
            if outcome.iteration == iteration:
                return outcome.elapsed
        return None


def run_interactive(
    benchmark: Benchmark,
    solve: Callable[[Sequence[str], Sequence[str]], tuple[List[rast.Regex], float]],
    max_iterations: int = 4,
    examples_per_iteration: int = 2,
    rng: Optional[random.Random] = None,
) -> InteractiveSession:
    """Run the iterative protocol for one benchmark.

    ``solve(positive, negative)`` runs the tool and returns the candidate
    regexes plus the elapsed time; correctness is judged by language
    equivalence with the benchmark's gold regex (the "intended regex").
    """
    rng = rng or random.Random(hash(benchmark.benchmark_id) & 0xFFFF)
    gold = benchmark.regex
    positive = list(benchmark.positive)
    negative = list(benchmark.negative)
    session = InteractiveSession(benchmark.benchmark_id)

    for iteration in range(max_iterations + 1):
        candidates, elapsed = solve(positive, negative)
        solved = any(_safe_equivalent(candidate, gold) for candidate in candidates)
        session.outcomes.append(
            IterationOutcome(
                iteration=iteration,
                solved=solved,
                elapsed=elapsed,
                num_positive=len(positive),
                num_negative=len(negative),
                returned=len(candidates),
            )
        )
        if solved or iteration == max_iterations:
            break
        new_positive, new_negative = _additional_examples(
            gold, candidates, positive, negative, examples_per_iteration, rng
        )
        positive.extend(new_positive)
        negative.extend(new_negative)
    return session


def _safe_equivalent(candidate: rast.Regex, gold: rast.Regex) -> bool:
    try:
        return regex_equivalent(candidate, gold)
    except Exception:
        return False


def _additional_examples(
    gold: rast.Regex,
    candidates: List[rast.Regex],
    positive: List[str],
    negative: List[str],
    count: int,
    rng: random.Random,
) -> tuple[List[str], List[str]]:
    """Two clarifying examples for the next iteration."""
    new_positive: List[str] = []
    new_negative: List[str] = []
    known = set(positive) | set(negative)

    if candidates:
        try:
            pairs = distinguishing_examples(gold, candidates[0], count=count, rng=rng)
        except Exception:
            pairs = []
        for text, should_match in pairs:
            if text in known:
                continue
            known.add(text)
            (new_positive if should_match else new_negative).append(text)

    # Top up with fresh samples of the gold language / complement.
    while len(new_positive) + len(new_negative) < count:
        needed = count - len(new_positive) - len(new_negative)
        extra_pos = [
            s for s in sample_positive(gold, needed + len(known), rng) if s not in known
        ]
        extra_neg = [
            s
            for s in sample_negative(gold, needed + len(known), rng, positives=positive or None)
            if s not in known
        ]
        progress = False
        if extra_pos:
            new_positive.append(extra_pos[0])
            known.add(extra_pos[0])
            progress = True
        if len(new_positive) + len(new_negative) < count and extra_neg:
            new_negative.append(extra_neg[0])
            known.add(extra_neg[0])
            progress = True
        if not progress:
            break
    return new_positive, new_negative
