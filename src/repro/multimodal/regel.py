"""Top-level Regel tool (Section 6, "Implementation").

.. deprecated::
    :class:`Regel` is now a thin compatibility shim over the pipeline API in
    :mod:`repro.api` (``Problem`` → ``SketchProvider`` → ``Scheduler`` →
    ``Session``).  New code should build a :class:`repro.api.Session` and
    call :meth:`~repro.api.session.Session.solve` or stream results with
    :meth:`~repro.api.session.Session.iter_solutions`.

Workflow (unchanged semantics): the semantic parser generates up to 500
derivations, which are de-duplicated and ranked into at most 25 sketches; one
PBE engine instance is run per sketch against a shared wall-clock budget —
the paper runs the instances in parallel, which the pipeline API reproduces
with its interleaved and process-pool schedulers; results are de-duplicated
and the smallest ``k`` consistent regexes are returned.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.api.problem import Problem
from repro.api.providers import NlSketchProvider, StaticSketchProvider
from repro.api.results import RunReport
from repro.api.schedulers import InterleavedScheduler, Scheduler
from repro.api.session import Session
from repro.dsl import ast as rast
from repro.nlp.sketch_gen import SemanticParser
from repro.sketch.ast import Hole, Sketch
from repro.synthesis import SynthesisConfig
from repro.synthesis.config import EngineVariant


@dataclass
class RegelResult:
    """Outcome of one Regel invocation."""

    #: Up to ``k`` regexes consistent with the examples, smallest first.
    regexes: List[rast.Regex] = field(default_factory=list)
    #: Number of sketches the PBE engine attempted within the budget.
    sketches_tried: int = 0
    #: Total wall-clock time in seconds.
    elapsed: float = 0.0
    #: Per-sketch synthesis times (seconds) for **every attempted** sketch,
    #: in attempt order (historically only solved sketches were recorded,
    #: which overstated the tool's speed).
    per_sketch_times: List[float] = field(default_factory=list)
    #: Parallel to :attr:`per_sketch_times`: whether that sketch solved.
    per_sketch_solved: List[bool] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        return bool(self.regexes)

    @property
    def best(self) -> Optional[rast.Regex]:
        return self.regexes[0] if self.regexes else None

    @property
    def solved_sketch_times(self) -> List[float]:
        """Times of the sketches that produced a solution (the old metric)."""
        return [
            elapsed
            for elapsed, solved in zip(self.per_sketch_times, self.per_sketch_solved)
            if solved
        ]

    @classmethod
    def from_report(cls, report: RunReport) -> "RegelResult":
        """Convert a pipeline :class:`~repro.api.results.RunReport`."""
        ordered = sorted(report.sketches, key=lambda sketch: sketch.index)
        return cls(
            regexes=[solution.ast() for solution in report.solutions],
            sketches_tried=report.sketches_tried,
            elapsed=report.elapsed,
            per_sketch_times=[sketch.elapsed for sketch in ordered],
            per_sketch_solved=[sketch.solved for sketch in ordered],
        )


class Regel:
    """Multi-modal regex synthesizer: English description + examples.

    .. deprecated:: use :class:`repro.api.Session` instead.
    """

    def __init__(
        self,
        parser: Optional[SemanticParser] = None,
        config: Optional[SynthesisConfig] = None,
        num_sketches: int = 25,
        variant: EngineVariant = EngineVariant.FULL,
        scheduler: Optional[Scheduler] = None,
    ):
        self.parser = parser or SemanticParser()
        self.config = config or SynthesisConfig()
        self.num_sketches = num_sketches
        self.variant = variant
        #: Portfolio policy.  The default interleaved scheduler reproduces the
        #: paper's run-one-engine-per-sketch-in-parallel semantics in-process;
        #: pass ``SequentialScheduler(fair=False)`` for the historical
        #: sequential behaviour in which one pathological sketch could consume
        #: nearly the entire shared budget.
        self.scheduler = scheduler if scheduler is not None else InterleavedScheduler()

    def synthesize(
        self,
        description: str,
        positive: Sequence[str],
        negative: Sequence[str],
        k: int = 1,
        time_budget: Optional[float] = None,
        sketches: Optional[Sequence[Sketch]] = None,
    ) -> RegelResult:
        """Synthesize up to ``k`` regexes within ``time_budget`` seconds.

        ``sketches`` overrides the semantic parser's output (used by the
        ablations and by Regel-PBE, which always passes a single
        unconstrained hole).  Deprecated: build a
        :class:`repro.api.Problem` and a :class:`repro.api.Session` —
        sketch overrides become a
        :class:`repro.api.StaticSketchProvider`.
        """
        warnings.warn(
            "Regel.synthesize is deprecated; use repro.api.Session.solve "
            "with a repro.api.Problem instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if sketches is not None and not list(sketches):
            # Historical behaviour: an explicitly empty sketch list means
            # nothing to try — return an immediate unsolved result rather
            # than falling back to examples-only synthesis.
            return RegelResult()
        report = self._session(sketches).solve(
            Problem(
                description=description,
                positive=positive,
                negative=negative,
                k=k,
                budget=time_budget if time_budget is not None else self.config.timeout,
                variant=self.variant,
            )
        )
        return RegelResult.from_report(report)

    def _session(self, sketches: Optional[Sequence[Sketch]] = None) -> Session:
        """The equivalent pipeline session for this (deprecated) facade."""
        if sketches is not None:
            provider = StaticSketchProvider(list(sketches))
        else:
            provider = NlSketchProvider(self.parser, num_sketches=self.num_sketches)
        return Session(provider=provider, scheduler=self.scheduler, config=self.config)


def pbe_only_sketches() -> List[Sketch]:
    """The sketch list used by the Regel-PBE baseline: one unconstrained hole."""
    return [Hole(())]
