"""Top-level Regel tool (Section 6, "Implementation").

Workflow: the semantic parser generates up to 500 derivations, which are
de-duplicated and ranked into at most 25 sketches; one PBE engine instance is
run per sketch (the paper runs them in parallel, we run them sequentially
against a shared wall-clock budget, which preserves the tool's semantics —
up to ``k`` results within budget ``t``); results are de-duplicated and the
smallest ``k`` consistent regexes are returned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dsl import ast as rast
from repro.dsl.printer import to_dsl_string
from repro.nlp.sketch_gen import SemanticParser
from repro.sketch.ast import Hole, Sketch
from repro.synthesis import Examples, SynthesisConfig, Synthesizer
from repro.synthesis.config import EngineVariant


@dataclass
class RegelResult:
    """Outcome of one Regel invocation."""

    #: Up to ``k`` regexes consistent with the examples, smallest first.
    regexes: List[rast.Regex] = field(default_factory=list)
    #: Number of sketches the PBE engine attempted within the budget.
    sketches_tried: int = 0
    #: Total wall-clock time in seconds.
    elapsed: float = 0.0
    #: Per-sketch synthesis times (seconds) for solved sketches.
    per_sketch_times: List[float] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        return bool(self.regexes)

    @property
    def best(self) -> Optional[rast.Regex]:
        return self.regexes[0] if self.regexes else None


class Regel:
    """Multi-modal regex synthesizer: English description + examples."""

    def __init__(
        self,
        parser: Optional[SemanticParser] = None,
        config: Optional[SynthesisConfig] = None,
        num_sketches: int = 25,
        variant: EngineVariant = EngineVariant.FULL,
    ):
        self.parser = parser or SemanticParser()
        self.config = config or SynthesisConfig()
        self.num_sketches = num_sketches
        self.variant = variant

    def synthesize(
        self,
        description: str,
        positive: Sequence[str],
        negative: Sequence[str],
        k: int = 1,
        time_budget: Optional[float] = None,
        sketches: Optional[Sequence[Sketch]] = None,
    ) -> RegelResult:
        """Synthesize up to ``k`` regexes within ``time_budget`` seconds.

        ``sketches`` overrides the semantic parser's output (used by the
        ablations and by Regel-PBE, which always passes a single
        unconstrained hole).
        """
        start = time.monotonic()
        budget = time_budget if time_budget is not None else self.config.timeout
        deadline = start + budget
        examples = Examples(positive, negative)
        if sketches is None:
            sketches = self.parser.sketches(description, k=self.num_sketches)

        result = RegelResult()
        seen: set[str] = set()
        for sketch in sketches:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or len(result.regexes) >= k:
                break
            config = self.config.for_variant(self.variant)
            config.timeout = min(config.timeout, remaining)
            engine = Synthesizer(config)
            outcome = engine.synthesize(sketch, examples)
            result.sketches_tried += 1
            if outcome.solved:
                result.per_sketch_times.append(outcome.elapsed)
            for regex in outcome.regexes:
                key = to_dsl_string(regex)
                if key not in seen:
                    seen.add(key)
                    result.regexes.append(regex)
        result.regexes.sort(key=lambda regex: _rank(regex))
        result.regexes = result.regexes[:k]
        result.elapsed = time.monotonic() - start
        return result


def _rank(regex: rast.Regex) -> tuple[int, str]:
    from repro.dsl.simplify import size

    return size(regex), to_dsl_string(regex)


def pbe_only_sketches() -> List[Sketch]:
    """The sketch list used by the Regel-PBE baseline: one unconstrained hole."""
    return [Hole(())]
