"""HTTP/JSON service over the pipeline API (``regel serve``).

The service turns the library's wire-ready types into an actual wire: a
:class:`~repro.api.Problem` posted to ``/v1/solve`` comes back as a
:class:`~repro.api.RunReport`, async jobs stream partial solutions through
``/v1/jobs``, and every completed solve is written through a persistent
Problem-keyed result cache so identical requests across users are served in
microseconds.  Stdlib only — no new runtime dependencies.

Layers (see ``docs/architecture.md``):

* :mod:`repro.service.wire` — schemas, validation, error envelopes,
* :mod:`repro.service.cache` — persistent content-addressed result store
  (JSON-directory or SQLite backends, LRU-bounded, counted),
* :mod:`repro.service.pool` — bounded worker pool, one warm
  :class:`~repro.api.Session` per worker, 429 back-pressure,
* :mod:`repro.service.handlers` — transport-free endpoint logic,
* :mod:`repro.service.server` — the ``http.server`` routing shim,
* :mod:`repro.service.client` — a urllib client (``regel client``).
"""

from repro.service.batch import (
    ITEM_STATUSES,
    BatchRecord,
    BatchStore,
)
from repro.service.cache import (
    CACHE_BACKENDS,
    CacheCorruption,
    JsonDirCache,
    NullCache,
    ResultCache,
    SqliteCache,
    make_cache,
)
from repro.service.client import JobLostError, ServiceClient, ServiceError
from repro.service.handlers import ServiceConfig, ServiceState
from repro.service.pool import Job, PoolSaturated, WorkerPool
from repro.service.server import RegelHTTPServer, serve, start_server
from repro.service.wire import WIRE_SCHEMA, WireError

__all__ = [
    "ITEM_STATUSES",
    "BatchRecord",
    "BatchStore",
    "CACHE_BACKENDS",
    "CacheCorruption",
    "JsonDirCache",
    "NullCache",
    "ResultCache",
    "SqliteCache",
    "make_cache",
    "JobLostError",
    "ServiceClient",
    "ServiceError",
    "ServiceConfig",
    "ServiceState",
    "Job",
    "PoolSaturated",
    "WorkerPool",
    "RegelHTTPServer",
    "serve",
    "start_server",
    "WIRE_SCHEMA",
    "WireError",
]
