"""The stdlib HTTP server: routing shim over :class:`ServiceState`.

Endpoints (all JSON; see ``docs/api.md`` for the full reference):

========  ===================  ===========================================
method    path                 behaviour
========  ===================  ===========================================
POST      ``/v1/solve``        Problem in, RunReport out (synchronous)
POST      ``/v1/jobs``         Problem in, job record out (async submit)
POST      ``/v1/lint``         Problem (+ sketches) in, diagnostics out
POST      ``/v1/batch``        NDJSON of Problems in, batch record out
                               (``?batch=<id>&offset=<n>`` resumes)
GET       ``/v1/batch/{id}``   paginated per-item statuses
GET       ``/v1/jobs/{id}``    poll status + partial solutions
DELETE    ``/v1/jobs/{id}``    cooperative cancellation
GET       ``/v1/healthz``      liveness probe
GET       ``/v1/stats``        cache / pool / request counters
========  ===================  ===========================================

Built on :class:`http.server.ThreadingHTTPServer` (no third-party runtime
dependencies, like the rest of the package): each connection gets a request
thread, but synthesis itself always runs on the bounded worker pool — the
request thread only validates, enqueues, and (for ``/v1/solve``) waits, so
slow solves cannot exhaust unbounded threads doing engine work.
"""

from __future__ import annotations

import json
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.faults import InjectedFault, configure, fault_point
from repro.service.handlers import ServiceConfig, ServiceState
from repro.service.wire import MAX_BODY_BYTES, error_body

_JOB_PATH = re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]{32})$")
_BATCH_PATH = re.compile(r"^/v1/batch/(?P<batch_id>[0-9a-f]{32})$")


def _int_param(params: Dict[str, list], name: str, default: int) -> int:
    """First occurrence of an integer query parameter (raises ValueError)."""
    values = params.get(name)
    if not values:
        return default
    return int(values[0])


class RegelHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`ServiceState`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], state: ServiceState):
        super().__init__(address, RegelRequestHandler)
        self.state = state

    def close(self) -> None:
        """Stop accepting, then shut the pool and cache down gracefully."""
        self.shutdown()
        self.server_close()
        self.state.close()


class RegelRequestHandler(BaseHTTPRequestHandler):
    server_version = "regel-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def state(self) -> ServiceState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if self.state.config.log_requests:
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------------

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        # Chaos hook: an injected ``server.response`` fault drops the
        # connection before any byte of the response is written — the shape
        # of a server dying mid-reply.  Clients see a reset and retry.
        fault_point("server.response")
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status == 429:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[bytes]:
        """The request body, or None after answering 413 for oversize ones."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # The unread body would desync HTTP/1.1 keep-alive (the next
            # request parse would start mid-body), so drop the connection.
            self.close_connection = True
            self._send(
                413,
                error_body(
                    "body_too_large",
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                ),
            )
            return None
        return self.rfile.read(length)

    def _dispatch(self, method: str) -> None:
        state = self.state
        path, _, raw_query = self.path.partition("?")
        try:
            params = parse_qs(raw_query)
        except ValueError:
            params = {}
        try:
            if method == "GET" and path == "/v1/healthz":
                self._send(*state.handle_healthz())
            elif method == "GET" and path == "/v1/stats":
                self._send(*state.handle_stats())
            elif method == "POST" and path == "/v1/solve":
                body = self._read_body()
                if body is not None:
                    self._send(*state.handle_solve(body))
            elif method == "POST" and path == "/v1/jobs":
                body = self._read_body()
                if body is not None:
                    self._send(*state.handle_submit(body))
            elif method == "POST" and path == "/v1/lint":
                body = self._read_body()
                if body is not None:
                    self._send(*state.handle_lint(body))
            elif method == "POST" and path == "/v1/batch":
                body = self._read_body()
                if body is not None:
                    batch_id = (params.get("batch") or [None])[0]
                    try:
                        offset = _int_param(params, "offset", 0)
                    except ValueError:
                        self._send(
                            400, error_body("bad_offset", "offset must be an integer")
                        )
                        return
                    self._send(*state.handle_batch_submit(body, batch_id, offset))
            elif (batch_match := _BATCH_PATH.match(path)) and method == "GET":
                try:
                    offset = _int_param(params, "offset", 0)
                    limit = _int_param(params, "limit", 100)
                except ValueError:
                    self._send(
                        400,
                        error_body("bad_offset", "offset and limit must be integers"),
                    )
                    return
                self._send(
                    *state.handle_batch_get(batch_match.group("batch_id"), offset, limit)
                )
            elif (job_match := _JOB_PATH.match(path)) and method == "GET":
                self._send(*state.handle_job_get(job_match.group("job_id")))
            elif job_match and method == "DELETE":
                self._send(*state.handle_job_cancel(job_match.group("job_id")))
            else:
                self._send(
                    404, error_body("not_found", f"{method} {path} is not a route")
                )
        except BrokenPipeError:  # client went away mid-response
            pass
        except InjectedFault:
            # A ``server.response`` fault: simulate the crash by hanging up
            # without answering (a 500 here would defeat the simulation).
            self.close_connection = True
        except Exception as exc:  # never leak a traceback page
            try:
                self._send(500, error_body("internal", f"{type(exc).__name__}: {exc}"))
            except Exception:
                pass

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


def start_server(
    config: ServiceConfig, state: Optional[ServiceState] = None
) -> RegelHTTPServer:
    """Bind and start serving on a daemon thread; returns the live server.

    ``config.port = 0`` binds an ephemeral port — read the real one from
    ``server.server_address`` (what the tests and benchmark do).  Call
    ``server.close()`` for a graceful shutdown.
    """
    state = state if state is not None else ServiceState(config)
    server = RegelHTTPServer((config.host, config.port), state)
    thread = threading.Thread(
        target=server.serve_forever, name="regel-http", daemon=True
    )
    thread.start()
    return server


def serve(config: ServiceConfig) -> int:
    """Blocking entry point behind ``regel serve``.

    Both SIGINT (Ctrl-C) and SIGTERM (what a process supervisor sends on
    stop) shut down gracefully: queued and in-flight jobs are cancelled,
    workers joined, and the cache closed.
    """
    if config.faults is not None:
        # --faults beats REPRO_FAULTS: an explicit flag is the operator
        # saying "this run, this schedule".
        configure(config.faults)
    state = ServiceState(config)
    server = RegelHTTPServer((config.host, config.port), state)
    host, port = server.server_address[:2]

    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not on the main thread: SIGINT handling only
        previous_sigterm = None
    print(
        f"regel service listening on http://{host}:{port} "
        f"({config.workers} workers, scheduler={config.scheduler}, "
        f"cache={state.cache.stats()['backend']})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down...", flush=True)
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        server.server_close()
        state.close()
    return 0
