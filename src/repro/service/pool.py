"""Bounded worker pool executing service jobs over the pipeline API.

One :class:`Job` wraps one :class:`~repro.api.Problem` with a lifecycle
(``queued → running → done | failed | cancelled``), a per-job
:class:`~repro.api.CancelToken`, and the list of solutions streamed so far —
the server-side mirror of :meth:`~repro.api.Session.iter_solutions`.

The pool itself is a fixed set of worker threads over a *bounded* queue:
when every worker is busy and the queue is full, :meth:`WorkerPool.submit`
raises :class:`PoolSaturated` and the HTTP layer answers 429 — back-pressure
instead of unbounded memory growth.  Each worker owns one long-lived
:class:`~repro.api.Session` (the session holds the trained semantic parser,
which is exactly the expensive state worth keeping warm); the session's
scheduler — :class:`~repro.api.InterleavedScheduler` by default,
:class:`~repro.api.ProcessPoolScheduler` for multi-core deployments — is
what enforces each job's wall-clock budget, so deadline enforcement needs no
thread killing.  Shutdown is graceful: queued jobs are cancelled, running
jobs get their cancel tokens fired, and workers are joined.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
import uuid
from typing import Any, Callable, Dict, List, Optional

from repro.api.problem import Problem
from repro.api.schedulers import CancelToken
from repro.api.session import Session
from repro.faults import fault_point
from repro.service.wire import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
)


class PoolSaturated(Exception):
    """Every worker is busy and the queue is full (HTTP 429)."""


class Job:
    """One queued/running/finished synthesis request."""

    def __init__(self, problem: Problem, cache_key: str = ""):
        self.id = uuid.uuid4().hex
        self.problem = problem
        self.cache_key = cache_key or problem.cache_key()
        self.status = JOB_QUEUED
        #: Solution dicts in discovery order, appended while running (what
        #: ``GET /v1/jobs/{id}`` pollers read as partial results).
        self.solutions: List[Dict[str, Any]] = []
        #: The final RunReport dict, present once the job is terminal.
        self.report: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.cancel = CancelToken()
        #: Distinguishes a client cancellation from the session cancelling
        #: its own token after collecting ``k`` solutions.
        self.cancel_requested = False
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._terminal_callbacks: List[Callable[["Job"], None]] = []

    @property
    def terminal(self) -> bool:
        return self.status in (JOB_DONE, JOB_FAILED, JOB_CANCELLED)

    def add_terminal_callback(self, callback: Callable[["Job"], None]) -> None:
        """Invoke ``callback(job)`` once the job reaches a terminal state.

        Registered under the job lock, so a callback is either queued for
        :meth:`finish` or — if the job is already terminal — run immediately;
        never lost in between.  Batch ingestion uses this to persist per-item
        outcomes, including when several batch items coalesce onto one job.
        """
        with self._lock:
            if not self.terminal:
                self._terminal_callbacks.append(callback)
                return
        callback(self)

    def add_solution(self, solution: Dict[str, Any]) -> None:
        with self._lock:
            self.solutions.append(solution)

    def request_cancel(self) -> None:
        self.cancel_requested = True
        self.cancel.cancel()

    def finish(
        self,
        status: str,
        report: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> bool:
        """Move to a terminal state; first caller wins, later calls are no-ops.

        Returns True iff this call performed the transition.  First-wins is
        what lets the pool watchdog settle a wedged job as ``failed`` without
        racing the worker: whichever side finishes first decides the outcome,
        and the loser's stats update is skipped.
        """
        with self._lock:
            if self.terminal:
                return False
            self.status = status
            self.report = report
            self.error = error
            self.finished = time.time()
            callbacks = self._terminal_callbacks
            self._terminal_callbacks = []
        self._done.set()
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                pass  # a failing observer must not fail the job
        return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; False on timeout."""
        return self._done.wait(timeout)


class WorkerPool:
    """Fixed worker threads + bounded queue; one warm Session per worker."""

    def __init__(
        self,
        session_factory: Callable[[], Session],
        workers: int = 2,
        queue_size: int = 16,
        on_complete: Optional[Callable[[str, Dict[str, Any]], None]] = None,
        watchdog_grace: float = 10.0,
        watchdog_interval: float = 0.25,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if watchdog_grace < 0:
            raise ValueError("watchdog_grace must be >= 0")
        self.session_factory = session_factory
        self.on_complete = on_complete
        self.watchdog_grace = watchdog_grace
        self.watchdog_interval = watchdog_interval
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(maxsize=queue_size)
        self._stopping = False
        self._stats_lock = threading.Lock()
        self._running: "set[Job]" = set()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0
        self.watchdog_failed = 0
        self._busy = 0
        self._stop_event = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"regel-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        self._watchdog = threading.Thread(
            target=self._watch, name="regel-watchdog", daemon=True
        )
        self._watchdog.start()

    # -- submission ----------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Enqueue ``job``; raises :class:`PoolSaturated` when the queue is full."""
        if self._stopping:
            raise PoolSaturated("pool is shutting down")
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._stats_lock:
                self.rejected += 1
            raise PoolSaturated(
                f"all workers busy and queue full ({self._queue.maxsize} pending)"
            ) from None
        with self._stats_lock:
            self.submitted += 1

    # -- worker loop ---------------------------------------------------------

    def _worker(self) -> None:
        session: Optional[Session] = None
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                return
            if job.cancel_requested:
                if job.finish(JOB_CANCELLED):
                    with self._stats_lock:
                        self.cancelled += 1
                continue
            if session is None:
                # Built lazily (and retried per job) so a failing factory
                # fails the job loudly instead of silently killing the
                # worker thread and stranding every future submission.
                try:
                    session = self.session_factory()
                except Exception:
                    if job.finish(JOB_FAILED, error=traceback.format_exc(limit=8)):
                        with self._stats_lock:
                            self.failed += 1
                    continue
            self._run(session, job)

    def _run(self, session: Session, job: Job) -> None:
        job.status = JOB_RUNNING
        job.started = time.time()
        with self._stats_lock:
            self._busy += 1
            self._running.add(job)
        try:
            # Chaos hook: a ``pool.job`` fault here is a worker failing (or,
            # with kind=hang, wedging) after pickup — the path the watchdog
            # and the client's retry/poll loops must survive.
            fault_point("pool.job", cancel=job.cancel)
            for solution in session.iter_solutions(job.problem, cancel=job.cancel):
                job.add_solution(solution.to_dict())
            report = session.last_report
            report.provenance = "engine"
            report.cache_key = job.cache_key
            if job.cancel_requested:
                report.cancelled = True
                if job.finish(JOB_CANCELLED, report=report.to_dict()):
                    with self._stats_lock:
                        self.cancelled += 1
            else:
                report_dict = report.to_dict()
                if self.on_complete is not None:
                    # Write-through happens BEFORE finish() wakes any waiting
                    # client: an immediate identical re-request must hit the
                    # cache.  A failing hook must not fail the solved job.
                    try:
                        self.on_complete(job.cache_key, report_dict)
                    except Exception:
                        pass
                if job.finish(JOB_DONE, report=report_dict):
                    with self._stats_lock:
                        self.completed += 1
        except Exception:
            if job.finish(JOB_FAILED, error=traceback.format_exc(limit=8)):
                with self._stats_lock:
                    self.failed += 1
        finally:
            with self._stats_lock:
                self._busy -= 1
                self._running.discard(job)

    # -- watchdog ------------------------------------------------------------

    def _watch(self) -> None:
        """Settle jobs stuck past ``budget + grace`` as ``failed``.

        The schedulers enforce budgets cooperatively, so a worker wedged in
        non-cooperative code (or an injected ``pool.job`` hang) would leave
        its job ``running`` forever and clients polling forever.  The
        watchdog fires the job's cancel token and — thanks to first-wins
        :meth:`Job.finish` — settles it as ``failed`` so pollers get a
        terminal answer even while the worker thread is still stuck.
        """
        while not self._stop_event.wait(self.watchdog_interval):
            now = time.time()
            with self._stats_lock:
                running = list(self._running)
            for job in running:
                started = job.started
                if started is None or job.terminal:
                    continue
                deadline = started + job.problem.budget + self.watchdog_grace
                if now < deadline:
                    continue
                job.request_cancel()
                stuck = now - started
                if job.finish(
                    JOB_FAILED,
                    error=(
                        f"watchdog: job exceeded budget {job.problem.budget:.1f}s"
                        f" + grace {self.watchdog_grace:.1f}s"
                        f" (running {stuck:.1f}s); worker presumed wedged"
                    ),
                ):
                    with self._stats_lock:
                        self.watchdog_failed += 1
                        self.failed += 1

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._stats_lock:
            # A terminal job still in _running means the watchdog settled it
            # but the worker thread hasn't come back: a wedged worker.
            wedged = sum(1 for job in self._running if job.terminal)
            return {
                "workers": len(self._threads),
                "busy_workers": self._busy,
                "wedged_workers": wedged,
                "queue_depth": self._queue.qsize(),
                "queue_capacity": self._queue.maxsize,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "watchdog_failed": self.watchdog_failed,
            }

    def healthy(self) -> bool:
        """False while any worker is wedged (``/v1/healthz: degraded``)."""
        with self._stats_lock:
            return not any(job.terminal for job in self._running)

    # -- shutdown ------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: cancel queued + running jobs, join workers."""
        self._stopping = True
        self._stop_event.set()
        # Drain jobs still waiting in the queue: they never ran.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not None:
                if job.finish(JOB_CANCELLED):
                    with self._stats_lock:
                        self.cancelled += 1
        # Fire the cancel token of every in-flight job; the schedulers honour
        # it cooperatively, so workers come back within one scheduling slice.
        with self._stats_lock:
            running = list(self._running)
        for job in running:
            job.request_cancel()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._watchdog.join(timeout=timeout)
