"""Persistent, Problem-keyed result cache.

Identical regex-synthesis requests are extremely common (the same "phone
number"/"date"/"decimal" problems arrive from many users), and a REGEL-style
multi-modal solve is expensive — so deduplicating solved problems is the
cheapest scaling lever the service has.  The cache is content-addressed:
the key is :meth:`repro.api.Problem.cache_key` (SHA-256 of the canonical
problem JSON) and the value is a completed :class:`~repro.api.RunReport`
dict.

Two persistent backends, both stdlib-only and safe under the service's
thread pool:

* :class:`JsonDirCache` — one ``<key>.json`` file per entry in a directory;
  recency is tracked through file mtimes.  Trivially inspectable
  (``cat``-able) and rsync-friendly.
* :class:`SqliteCache` — a single SQLite file with an ``entries`` table;
  recency and hit counts are columns.  Better for large caches (one file
  handle, indexed eviction).

Both enforce an LRU bound of ``max_entries`` and count hits/misses/stores/
evictions, which flow into ``GET /v1/stats``.  Only *solved* reports are
stored: cancelled runs answer a different question, and an
unsolved-within-budget outcome depends on machine load at the time — caching
it would permanently poison the entry for a problem that a calmer retry
would solve.

The cache is an optimisation, so it is never allowed to become a liability:
a **corrupt entry** (torn write, bit rot, hand-edited file) is quarantined —
removed from the store, counted in ``quarantined`` — and answered as a miss;
a **failing backend** (disk gone, database locked up) degrades instead of
erroring: after ``breaker_threshold`` consecutive backend failures a circuit
breaker opens and every operation short-circuits to the miss/skip path (the
semantics of :class:`NullCache`) until a ``breaker_cooldown``-spaced probe
succeeds again.  ``/v1/healthz`` reports the open breaker as ``degraded``.
The deterministic chaos suite drives both paths through the
``cache.read`` / ``cache.write`` fault points (:mod:`repro.faults`).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.faults import fault_point


class CacheCorruption(Exception):
    """A stored entry failed to decode; the backend has quarantined it."""


class ResultCache:
    """Base class: counters, circuit breaker, and degradation shared by backends."""

    def __init__(
        self,
        max_entries: int = 1024,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.max_entries = max_entries
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: Corrupt entries detected, removed, and answered as misses.
        self.quarantined = 0
        #: Backend failures absorbed on the read / write path.
        self.read_errors = 0
        self.write_errors = 0
        #: Circuit-breaker state (all mutated under ``self._lock``).  Error
        #: streaks are tracked per path: a cache whose reads always fail is
        #: degraded even while its write-throughs keep succeeding, so a
        #: write success must not reset the read streak (or vice versa).
        self.trips = 0
        self._consecutive_errors = {"read": 0, "write": 0}
        self._opened_at: Optional[float] = None

    # Backend hooks ----------------------------------------------------------

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def _save(self, key: str, report: Dict[str, Any]) -> None:
        raise NotImplementedError

    def _evict_lru(self) -> int:
        """Drop least-recently-used entries down to the bound; return count."""
        raise NotImplementedError

    def _recover_save(self) -> None:
        """Undo a half-done save after a write failure (backend-specific)."""

    def _low_water(self) -> int:
        """Eviction target once over the bound: 90% of ``max_entries``.

        Evicting in batches instead of one-at-a-time keeps the steady-state
        write path cheap — without this, every store at capacity would scan
        the whole store to evict exactly one entry.
        """
        return max(1, (self.max_entries * 9) // 10)

    def __len__(self) -> int:
        raise NotImplementedError

    # Circuit breaker (callers hold self._lock) ------------------------------

    def _breaker_open(self) -> bool:
        """True while the backend is benched; cooldown expiry allows a probe."""
        if self._opened_at is None:
            return False
        return time.monotonic() - self._opened_at < self.breaker_cooldown

    def _note_error(self, path: str) -> None:
        self._consecutive_errors[path] += 1
        if self._opened_at is not None:
            # A half-open probe failed: re-arm the cooldown.
            self._opened_at = time.monotonic()
        elif self._consecutive_errors[path] >= self.breaker_threshold:
            self.trips += 1
            self._opened_at = time.monotonic()

    def _note_ok(self, path: str) -> None:
        self._consecutive_errors[path] = 0
        if self._opened_at is not None and not any(
            streak >= self.breaker_threshold
            for streak in self._consecutive_errors.values()
        ):
            # A half-open probe succeeded and no other path is still past
            # the threshold: close the breaker.
            self._opened_at = None

    # Public API -------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached report for ``key``, or None — never an exception.

        Corrupt entries count as ``quarantined`` misses; backend failures as
        ``read_errors`` misses (feeding the breaker).  A malformed *key* is a
        caller bug and still raises :class:`ValueError`.
        """
        with self._lock:
            if self._breaker_open():
                self.misses += 1
                return None
            try:
                fault_point("cache.read")
                report = self._load(key)
            except ValueError:
                raise
            except CacheCorruption:
                # The backend worked — it detected and removed the bad entry
                # itself — so corruption never counts against the breaker.
                self.quarantined += 1
                self.misses += 1
                self._note_ok("read")
                return None
            except Exception:
                self.read_errors += 1
                self.misses += 1
                self._note_error("read")
                return None
            self._note_ok("read")
            if report is None:
                self.misses += 1
            else:
                self.hits += 1
            return report

    def put(self, key: str, report: Dict[str, Any]) -> None:
        """Store a completed report; a failing backend degrades to a no-op.

        The cache is write-through from the pool's completion hook — a lost
        store costs a future re-solve, never correctness — so write failures
        are absorbed (counted, breaker-fed), not raised.
        """
        with self._lock:
            if self._breaker_open():
                return
            try:
                self._save(key, report)
                self.stores += 1
                self.evictions += self._evict_lru()
            except ValueError:
                raise
            except Exception:
                self.write_errors += 1
                self._note_error("write")
                try:
                    self._recover_save()
                except Exception:
                    pass
                return
            self._note_ok("write")

    def healthy(self) -> bool:
        """False while the circuit breaker is open (``/v1/healthz: degraded``)."""
        with self._lock:
            return not self._breaker_open()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            try:
                entries = len(self)
            except Exception:
                entries = -1  # backend down; the breaker section says why
            return {
                "backend": type(self).BACKEND,
                "entries": entries,
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "quarantined": self.quarantined,
                "read_errors": self.read_errors,
                "write_errors": self.write_errors,
                "breaker": {
                    "state": "open" if self._breaker_open() else "closed",
                    "trips": self.trips,
                    "consecutive_errors": max(self._consecutive_errors.values()),
                    "threshold": self.breaker_threshold,
                    "cooldown_seconds": self.breaker_cooldown,
                },
            }

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    BACKEND = "abstract"


class NullCache(ResultCache):
    """A disabled cache (``--cache-backend null``): misses always, stores nothing."""

    BACKEND = "null"

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        return None

    def _save(self, key: str, report: Dict[str, Any]) -> None:
        pass

    def _evict_lru(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0


class JsonDirCache(ResultCache):
    """One JSON file per cached report, LRU via file mtimes."""

    BACKEND = "json"

    def __init__(self, path: "str | Path", max_entries: int = 1024, **kwargs: Any):
        super().__init__(max_entries, **kwargs)
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _entry(self, key: str) -> Path:
        if not key.isalnum():
            # Keys are hex digests; anything else must not touch the fs.
            raise ValueError(f"malformed cache key: {key!r}")
        return self.path / f"{key}.json"

    def _quarantine(self, entry: Path) -> None:
        """Move a corrupt entry aside (``.quarantined`` never matches the
        ``*.json`` globs, so it is out of the store but kept for inspection)."""
        try:
            os.replace(entry, entry.with_suffix(".quarantined"))
        except OSError:
            try:
                entry.unlink()
            except OSError:
                pass

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._entry(key)
        try:
            text = entry.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None  # a plain miss, not a backend failure
        try:
            report = json.loads(text)
        except ValueError:
            report = None
        if not isinstance(report, dict):
            # Torn write or external corruption: quarantine and miss.
            self._quarantine(entry)
            raise CacheCorruption(key)
        try:
            os.utime(entry)  # refresh recency; entry may vanish externally
        except OSError:
            pass
        return report

    def _save(self, key: str, report: Dict[str, Any]) -> None:
        entry = self._entry(key)
        tmp = entry.with_suffix(".tmp")
        tmp.write_text(json.dumps(report), encoding="utf-8")
        # The commit point: a crash (or injected fault) before the rename
        # leaves only the ``.tmp`` debris — readers never see a torn entry.
        fault_point("cache.write")
        os.replace(tmp, entry)

    def _evict_lru(self) -> int:
        entries = list(self.path.glob("*.json"))
        if len(entries) <= self.max_entries:
            return 0  # steady state: no stat-sort on the write path
        entries.sort(key=lambda path: path.stat().st_mtime)
        evicted = 0
        target = self._low_water()
        while len(entries) - evicted > target:
            try:
                entries[evicted].unlink()
            except OSError:
                pass
            evicted += 1
        return evicted

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.json"))


class SqliteCache(ResultCache):
    """All reports in one SQLite file; recency and hit counts are columns."""

    BACKEND = "sqlite"

    def __init__(self, path: "str | Path", max_entries: int = 1024, **kwargs: Any):
        super().__init__(max_entries, **kwargs)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # The service's handler threads share this connection; every access
        # happens under self._lock, so check_same_thread can be off.
        self._db = sqlite3.connect(str(self.path), check_same_thread=False)
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " key TEXT PRIMARY KEY,"
            " report TEXT NOT NULL,"
            " created REAL NOT NULL,"
            " last_used REAL NOT NULL,"
            " hit_count INTEGER NOT NULL DEFAULT 0)"
        )
        self._db.execute(
            "CREATE INDEX IF NOT EXISTS entries_last_used ON entries(last_used)"
        )
        self._db.commit()

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        row = self._db.execute(
            "SELECT report FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            report = json.loads(row[0])
        except ValueError:
            report = None
        if not isinstance(report, dict):
            # Quarantine = delete the one bad row; the table itself is fine.
            self._db.execute("DELETE FROM entries WHERE key = ?", (key,))
            self._db.commit()
            raise CacheCorruption(key)
        self._db.execute(
            "UPDATE entries SET last_used = ?, hit_count = hit_count + 1"
            " WHERE key = ?",
            (time.time(), key),
        )
        self._db.commit()
        return report

    def _save(self, key: str, report: Dict[str, Any]) -> None:
        now = time.time()
        self._db.execute(
            "INSERT INTO entries(key, report, created, last_used, hit_count)"
            " VALUES (?, ?, ?, ?, 0)"
            " ON CONFLICT(key) DO UPDATE SET report = excluded.report,"
            " last_used = excluded.last_used",
            (key, json.dumps(report), now, now),
        )
        # The commit point: a crash (or injected fault) here must roll the
        # pending insert back, or the *next* commit would smuggle it in.
        fault_point("cache.write")
        self._db.commit()

    def _recover_save(self) -> None:
        self._db.rollback()

    def _evict_lru(self) -> int:
        (count,) = self._db.execute("SELECT COUNT(*) FROM entries").fetchone()
        if count <= self.max_entries:
            return 0
        excess = count - self._low_water()
        self._db.execute(
            "DELETE FROM entries WHERE key IN"
            " (SELECT key FROM entries ORDER BY last_used ASC LIMIT ?)",
            (excess,),
        )
        self._db.commit()
        return excess

    def __len__(self) -> int:
        (count,) = self._db.execute("SELECT COUNT(*) FROM entries").fetchone()
        return count

    def close(self) -> None:
        self._db.close()


#: Registry used by ``regel serve --cache-backend``.
CACHE_BACKENDS = {
    "json": JsonDirCache,
    "sqlite": SqliteCache,
}


def make_cache(
    backend: str, path: "str | Path", max_entries: int = 1024
) -> ResultCache:
    """Instantiate a cache backend by registry name (or ``"null"``)."""
    if backend == "null":
        return NullCache(max_entries)
    try:
        factory = CACHE_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {backend!r}; choose from "
            f"{sorted(CACHE_BACKENDS) + ['null']}"
        ) from None
    return factory(path, max_entries)
