"""Persistent, Problem-keyed result cache.

Identical regex-synthesis requests are extremely common (the same "phone
number"/"date"/"decimal" problems arrive from many users), and a REGEL-style
multi-modal solve is expensive — so deduplicating solved problems is the
cheapest scaling lever the service has.  The cache is content-addressed:
the key is :meth:`repro.api.Problem.cache_key` (SHA-256 of the canonical
problem JSON) and the value is a completed :class:`~repro.api.RunReport`
dict.

Two persistent backends, both stdlib-only and safe under the service's
thread pool:

* :class:`JsonDirCache` — one ``<key>.json`` file per entry in a directory;
  recency is tracked through file mtimes.  Trivially inspectable
  (``cat``-able) and rsync-friendly.
* :class:`SqliteCache` — a single SQLite file with an ``entries`` table;
  recency and hit counts are columns.  Better for large caches (one file
  handle, indexed eviction).

Both enforce an LRU bound of ``max_entries`` and count hits/misses/stores/
evictions, which flow into ``GET /v1/stats``.  Only *solved* reports are
stored: cancelled runs answer a different question, and an
unsolved-within-budget outcome depends on machine load at the time — caching
it would permanently poison the entry for a problem that a calmer retry
would solve.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional


class ResultCache:
    """Base class: counter bookkeeping shared by every backend."""

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # Backend hooks ----------------------------------------------------------

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def _save(self, key: str, report: Dict[str, Any]) -> None:
        raise NotImplementedError

    def _evict_lru(self) -> int:
        """Drop least-recently-used entries down to the bound; return count."""
        raise NotImplementedError

    def _low_water(self) -> int:
        """Eviction target once over the bound: 90% of ``max_entries``.

        Evicting in batches instead of one-at-a-time keeps the steady-state
        write path cheap — without this, every store at capacity would scan
        the whole store to evict exactly one entry.
        """
        return max(1, (self.max_entries * 9) // 10)

    def __len__(self) -> int:
        raise NotImplementedError

    # Public API -------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached report dict for ``key``, or None (counts hit/miss)."""
        with self._lock:
            report = self._load(key)
            if report is None:
                self.misses += 1
            else:
                self.hits += 1
            return report

    def put(self, key: str, report: Dict[str, Any]) -> None:
        """Store a completed report, evicting LRU entries past the bound."""
        with self._lock:
            self._save(key, report)
            self.stores += 1
            self.evictions += self._evict_lru()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "backend": type(self).BACKEND,
                "entries": len(self),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
            }

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    BACKEND = "abstract"


class NullCache(ResultCache):
    """A disabled cache (``--cache-backend null``): misses always, stores nothing."""

    BACKEND = "null"

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        return None

    def _save(self, key: str, report: Dict[str, Any]) -> None:
        pass

    def _evict_lru(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0


class JsonDirCache(ResultCache):
    """One JSON file per cached report, LRU via file mtimes."""

    BACKEND = "json"

    def __init__(self, path: "str | Path", max_entries: int = 1024):
        super().__init__(max_entries)
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _entry(self, key: str) -> Path:
        if not key.isalnum():
            # Keys are hex digests; anything else must not touch the fs.
            raise ValueError(f"malformed cache key: {key!r}")
        return self.path / f"{key}.json"

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._entry(key)
        try:
            report = json.loads(entry.read_text(encoding="utf-8"))
            os.utime(entry)  # refresh recency; entry may vanish externally
        except (OSError, json.JSONDecodeError):
            return None
        return report

    def _save(self, key: str, report: Dict[str, Any]) -> None:
        entry = self._entry(key)
        tmp = entry.with_suffix(".tmp")
        tmp.write_text(json.dumps(report), encoding="utf-8")
        os.replace(tmp, entry)  # atomic: readers never see a partial file

    def _evict_lru(self) -> int:
        entries = list(self.path.glob("*.json"))
        if len(entries) <= self.max_entries:
            return 0  # steady state: no stat-sort on the write path
        entries.sort(key=lambda path: path.stat().st_mtime)
        evicted = 0
        target = self._low_water()
        while len(entries) - evicted > target:
            try:
                entries[evicted].unlink()
            except OSError:
                pass
            evicted += 1
        return evicted

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.json"))


class SqliteCache(ResultCache):
    """All reports in one SQLite file; recency and hit counts are columns."""

    BACKEND = "sqlite"

    def __init__(self, path: "str | Path", max_entries: int = 1024):
        super().__init__(max_entries)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # The service's handler threads share this connection; every access
        # happens under self._lock, so check_same_thread can be off.
        self._db = sqlite3.connect(str(self.path), check_same_thread=False)
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " key TEXT PRIMARY KEY,"
            " report TEXT NOT NULL,"
            " created REAL NOT NULL,"
            " last_used REAL NOT NULL,"
            " hit_count INTEGER NOT NULL DEFAULT 0)"
        )
        self._db.execute(
            "CREATE INDEX IF NOT EXISTS entries_last_used ON entries(last_used)"
        )
        self._db.commit()

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        row = self._db.execute(
            "SELECT report FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        self._db.execute(
            "UPDATE entries SET last_used = ?, hit_count = hit_count + 1"
            " WHERE key = ?",
            (time.time(), key),
        )
        self._db.commit()
        return json.loads(row[0])

    def _save(self, key: str, report: Dict[str, Any]) -> None:
        now = time.time()
        self._db.execute(
            "INSERT INTO entries(key, report, created, last_used, hit_count)"
            " VALUES (?, ?, ?, ?, 0)"
            " ON CONFLICT(key) DO UPDATE SET report = excluded.report,"
            " last_used = excluded.last_used",
            (key, json.dumps(report), now, now),
        )
        self._db.commit()

    def _evict_lru(self) -> int:
        (count,) = self._db.execute("SELECT COUNT(*) FROM entries").fetchone()
        if count <= self.max_entries:
            return 0
        excess = count - self._low_water()
        self._db.execute(
            "DELETE FROM entries WHERE key IN"
            " (SELECT key FROM entries ORDER BY last_used ASC LIMIT ?)",
            (excess,),
        )
        self._db.commit()
        return excess

    def __len__(self) -> int:
        (count,) = self._db.execute("SELECT COUNT(*) FROM entries").fetchone()
        return count

    def close(self) -> None:
        self._db.close()


#: Registry used by ``regel serve --cache-backend``.
CACHE_BACKENDS = {
    "json": JsonDirCache,
    "sqlite": SqliteCache,
}


def make_cache(
    backend: str, path: "str | Path", max_entries: int = 1024
) -> ResultCache:
    """Instantiate a cache backend by registry name (or ``"null"``)."""
    if backend == "null":
        return NullCache(max_entries)
    try:
        factory = CACHE_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {backend!r}; choose from "
            f"{sorted(CACHE_BACKENDS) + ['null']}"
        ) from None
    return factory(path, max_entries)
