"""A small stdlib HTTP client for the service (used by ``regel client``).

:class:`ServiceClient` wraps the endpoints with typed helpers; the only
dependency is :mod:`urllib.request`.  Server-side errors (the uniform
``{"error": {"code", "message"}}`` envelope) surface as :class:`ServiceError`
with the parsed code, so callers can branch on ``exc.code == "saturated"``
rather than regexing messages.

``iter_solutions`` mirrors :meth:`repro.api.Session.iter_solutions` over the
wire: it submits an async job and polls ``GET /v1/jobs/{id}``, yielding each
new solution as the server discovers it.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional

from repro.api.problem import Problem
from repro.api.results import RunReport, Solution
from repro.service.wire import JOB_CANCELLED, JOB_DONE, JOB_FAILED


class ServiceError(OSError):
    """An HTTP error response from the service, with the parsed envelope.

    Subclasses :class:`OSError` so CLI-level error handling treats it like
    any other network failure (one clean line, no traceback).
    """

    def __init__(self, status: int, code: str, message: str, payload: Optional[dict] = None):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.payload = payload or {}


class ServiceClient:
    """Typed access to one running ``regel serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 300.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        return self._request_raw(method, path, body, "application/json")

    def _request_raw(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: str = "application/json",
    ) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": content_type},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                parsed = json.loads(exc.read().decode("utf-8"))
                error = parsed.get("error", {})
            except (ValueError, UnicodeDecodeError):
                parsed, error = {}, {}
            raise ServiceError(
                exc.code,
                error.get("code", "http_error"),
                error.get("message", str(exc)),
                payload=parsed,
            ) from None

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def solve(self, problem: Problem) -> RunReport:
        """Synchronous solve: blocks until the server returns the report."""
        return RunReport.from_dict(
            self._request("POST", "/v1/solve", problem.to_dict())
        )

    def submit(self, problem: Problem) -> Dict[str, Any]:
        """Async submit: returns the job record (``job_id``, ``status``, ...)."""
        return self._request("POST", "/v1/jobs", problem.to_dict())

    def lint(
        self, problem: Problem, sketches: Optional[list] = None
    ) -> Dict[str, Any]:
        """Static analysis only: ``{"satisfiable": ..., "diagnostics": [...]}``.

        ``sketches`` is an optional list of sketch strings to analyze against
        the problem's examples.
        """
        payload = problem.to_dict()
        if sketches:
            payload["sketches"] = list(sketches)
        return self._request("POST", "/v1/lint", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    # -- batch ingestion -----------------------------------------------------

    def submit_batch(
        self,
        lines: "list[str | Dict[str, Any]]",
        batch_id: Optional[str] = None,
        offset: int = 0,
    ) -> Dict[str, Any]:
        """``POST /v1/batch``: NDJSON bulk submission (one Problem per line).

        ``lines`` entries may be raw JSON strings or Problem dicts.  Pass the
        ``batch_id`` and ``offset`` of an earlier submission to resume it —
        items the server already ingested are skipped, not re-solved.
        """
        rendered = [
            line if isinstance(line, str) else json.dumps(line) for line in lines
        ]
        path = "/v1/batch"
        query = []
        if batch_id is not None:
            query.append(f"batch={batch_id}")
        if offset:
            query.append(f"offset={offset}")
        if query:
            path += "?" + "&".join(query)
        body = ("\n".join(rendered) + "\n").encode("utf-8")
        return self._request_raw("POST", path, body, "application/x-ndjson")

    def batch_status(
        self, batch_id: str, offset: int = 0, limit: int = 100
    ) -> Dict[str, Any]:
        """``GET /v1/batch/{id}``: summary + a page of per-item statuses."""
        return self._request(
            "GET", f"/v1/batch/{batch_id}?offset={offset}&limit={limit}"
        )

    def wait_batch(
        self,
        batch_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until every item of the batch is terminal; returns the summary."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            summary = self.batch_status(batch_id, limit=1)
            if summary.get("done"):
                return summary
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    504, "client_timeout", f"batch {batch_id} did not finish in time"
                )
            time.sleep(poll_interval)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    # -- streaming -----------------------------------------------------------

    def iter_solutions(
        self,
        problem: Problem,
        poll_interval: float = 0.1,
        timeout: Optional[float] = None,
    ) -> Iterator[Solution]:
        """Submit a job and yield solutions as the server discovers them.

        The final job record (with the full report) is kept on
        :attr:`last_job` once iteration finishes.  Raises
        :class:`ServiceError` if the job fails server-side or ``timeout``
        (default: the problem budget plus a grace period) elapses.
        """
        deadline = time.monotonic() + (
            timeout if timeout is not None else problem.budget + 30.0
        )
        record = self.submit(problem)
        job_id = record["job_id"]
        yielded = 0
        while True:
            for entry in record.get("solutions", [])[yielded:]:
                yielded += 1
                yield Solution.from_dict(entry)
            status = record.get("status")
            if status == JOB_FAILED:
                raise ServiceError(
                    500, "engine_error", record.get("error", "job failed")
                )
            if status in (JOB_DONE, JOB_CANCELLED):
                self.last_job = record
                return
            if time.monotonic() > deadline:
                raise ServiceError(504, "client_timeout", f"job {job_id} timed out")
            time.sleep(poll_interval)
            record = self.job(job_id)

    #: Final job record of the most recent :meth:`iter_solutions` run.
    last_job: Optional[Dict[str, Any]] = None
