"""A small stdlib HTTP client for the service (used by ``regel client``).

:class:`ServiceClient` wraps the endpoints with typed helpers; the only
dependency is :mod:`urllib.request`.  Server-side errors (the uniform
``{"error": {"code", "message"}}`` envelope) surface as :class:`ServiceError`
with the parsed code, so callers can branch on ``exc.code == "saturated"``
rather than regexing messages.

The transport retries transient failures with capped exponential backoff and
full jitter: connection-level errors, 429 back-pressure (honouring
``Retry-After``), and 5xx responses that don't carry a deterministic engine
error.  Retrying a *solve* POST is safe even though POST is nominally
unsafe, because the server keys work by the problem's content hash
(``cache_key``) and coalesces duplicates — an identical re-POST joins the
in-flight job or hits the cache, it never double-solves.  The one genuinely
non-idempotent request, batch *creation* (no ``batch_id`` yet), is never
retried after it may have reached the server.

``iter_solutions`` mirrors :meth:`repro.api.Session.iter_solutions` over the
wire: it submits an async job and polls ``GET /v1/jobs/{id}``, yielding each
new solution as the server discovers it.  Jobs live in server memory, so a
server restart forgets them; a 404 on a job the client *knows* it created
surfaces as :class:`JobLostError` — resubmit the problem (cheap when it
already solved: the persistent result cache answers instantly).
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional

from repro.api.problem import Problem
from repro.api.results import RunReport, Solution
from repro.faults import fault_point
from repro.service.wire import JOB_CANCELLED, JOB_DONE, JOB_FAILED


class ServiceError(OSError):
    """An HTTP error response from the service, with the parsed envelope.

    Subclasses :class:`OSError` so CLI-level error handling treats it like
    any other network failure (one clean line, no traceback).
    """

    def __init__(self, status: int, code: str, message: str, payload: Optional[dict] = None):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.payload = payload or {}


class JobLostError(ServiceError):
    """A job this client created vanished server-side (404 while polling).

    Jobs are in-memory; a server restart forgets them.  The problem is not
    lost — resubmit it: if it completed before the restart the persistent
    result cache answers instantly, otherwise it simply solves again.
    """

    def __init__(self, job_id: str, payload: Optional[dict] = None):
        super().__init__(
            404,
            "job_lost",
            f"job {job_id} no longer exists (server restarted?); "
            "resubmit the problem — completed work is served from the result cache",
            payload=payload,
        )
        self.job_id = job_id


#: 5xx envelope codes that are deterministic outcomes of *this* problem, not
#: transient server trouble — retrying would just re-fail identically.
NON_RETRYABLE_5XX_CODES = frozenset({"engine_error", "deadline_exceeded", "cancelled"})


class ServiceClient:
    """Typed access to one running ``regel serve`` instance.

    ``retries`` bounds *additional* attempts per request (0 disables
    retrying).  Backoff sleeps ``backoff_base * 2**attempt`` capped at
    ``backoff_cap``, with full jitter; ``retry_seed`` pins the jitter for
    deterministic tests.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 300.0,
        retries: int = 3,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        retry_seed: Optional[int] = None,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._retry_rng = random.Random(retry_seed)
        #: Total retry attempts performed over this client's lifetime.
        self.retries_performed = 0

    # -- transport -----------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        return self._request_raw(method, path, body, "application/json")

    @staticmethod
    def _parse_error(exc: urllib.error.HTTPError) -> ServiceError:
        try:
            parsed = json.loads(exc.read().decode("utf-8"))
            error = parsed.get("error", {})
        except (ValueError, UnicodeDecodeError):
            parsed, error = {}, {}
        return ServiceError(
            exc.code,
            error.get("code", "http_error"),
            error.get("message", str(exc)),
            payload=parsed,
        )

    @staticmethod
    def _retry_after(exc: urllib.error.HTTPError) -> Optional[float]:
        value = exc.headers.get("Retry-After") if exc.headers else None
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None

    def _retryable_response(self, error: ServiceError, idempotent: bool) -> bool:
        if error.status == 429:
            # Back-pressure is rejected *before* any processing, so retrying
            # is safe even for non-idempotent requests.
            return True
        if error.status >= 500 and idempotent:
            return error.code not in NON_RETRYABLE_5XX_CODES
        return False

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> float:
        base = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        delay = base * (0.5 + self._retry_rng.random() * 0.5)  # full-ish jitter
        if retry_after is not None:
            delay = max(delay, retry_after)
        # Retry-After is honoured up to the cap: the client would rather
        # re-ask (and get another 429) than stall unboundedly on one header.
        return min(delay, max(self.backoff_cap, self.backoff_base))

    def _request_raw(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: str = "application/json",
        idempotent: bool = True,
    ) -> Dict[str, Any]:
        attempt = 0
        while True:
            delay: float
            try:
                # Chaos hook: an injected ``client.request`` fault is a
                # connection dying under the request — the retry loop below
                # must absorb it exactly like a real reset.
                fault_point("client.request")
                request = urllib.request.Request(
                    self.base_url + path,
                    data=body,
                    method=method,
                    headers={"Content-Type": content_type},
                )
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                error = self._parse_error(exc)
                if attempt >= self.retries or not self._retryable_response(
                    error, idempotent
                ):
                    raise error from None
                delay = self._backoff(attempt, self._retry_after(exc))
            except (
                urllib.error.URLError,
                ConnectionError,
                TimeoutError,
                http.client.HTTPException,
            ) as exc:
                # Connection-level failure: the server may or may not have
                # processed the request.  Retry when the request is
                # idempotent, or when it provably never arrived (connection
                # refused happens before any byte is sent).
                reason = getattr(exc, "reason", exc)
                never_sent = isinstance(reason, ConnectionRefusedError)
                if attempt >= self.retries or not (idempotent or never_sent):
                    raise
                delay = self._backoff(attempt, None)
            attempt += 1
            self.retries_performed += 1
            time.sleep(delay)

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def solve(self, problem: Problem) -> RunReport:
        """Synchronous solve: blocks until the server returns the report."""
        return RunReport.from_dict(
            self._request("POST", "/v1/solve", problem.to_dict())
        )

    def submit(self, problem: Problem) -> Dict[str, Any]:
        """Async submit: returns the job record (``job_id``, ``status``, ...)."""
        return self._request("POST", "/v1/jobs", problem.to_dict())

    def lint(
        self, problem: Problem, sketches: Optional[list] = None
    ) -> Dict[str, Any]:
        """Static analysis only: ``{"satisfiable": ..., "diagnostics": [...]}``.

        ``sketches`` is an optional list of sketch strings to analyze against
        the problem's examples.
        """
        payload = problem.to_dict()
        if sketches:
            payload["sketches"] = list(sketches)
        return self._request("POST", "/v1/lint", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    # -- batch ingestion -----------------------------------------------------

    def submit_batch(
        self,
        lines: "list[str | Dict[str, Any]]",
        batch_id: Optional[str] = None,
        offset: int = 0,
    ) -> Dict[str, Any]:
        """``POST /v1/batch``: NDJSON bulk submission (one Problem per line).

        ``lines`` entries may be raw JSON strings or Problem dicts.  Pass the
        ``batch_id`` and ``offset`` of an earlier submission to resume it —
        items the server already ingested are skipped, not re-solved.
        """
        rendered = [
            line if isinstance(line, str) else json.dumps(line) for line in lines
        ]
        path = "/v1/batch"
        query = []
        if batch_id is not None:
            query.append(f"batch={batch_id}")
        if offset:
            query.append(f"offset={offset}")
        if query:
            path += "?" + "&".join(query)
        body = ("\n".join(rendered) + "\n").encode("utf-8")
        # Creating a batch (no id yet) is the one non-idempotent request the
        # client makes: a blind retry could register the batch twice.  A
        # *resume* names its batch id, so re-sending it is always safe.
        return self._request_raw(
            "POST", path, body, "application/x-ndjson", idempotent=batch_id is not None
        )

    def batch_status(
        self, batch_id: str, offset: int = 0, limit: int = 100
    ) -> Dict[str, Any]:
        """``GET /v1/batch/{id}``: summary + a page of per-item statuses."""
        return self._request(
            "GET", f"/v1/batch/{batch_id}?offset={offset}&limit={limit}"
        )

    def wait_batch(
        self,
        batch_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until every item of the batch is terminal; returns the summary."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            summary = self.batch_status(batch_id, limit=1)
            if summary.get("done"):
                return summary
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    504, "client_timeout", f"batch {batch_id} did not finish in time"
                )
            time.sleep(poll_interval)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    # -- streaming -----------------------------------------------------------

    def iter_solutions(
        self,
        problem: Problem,
        poll_interval: float = 0.1,
        timeout: Optional[float] = None,
    ) -> Iterator[Solution]:
        """Submit a job and yield solutions as the server discovers them.

        The final job record (with the full report) is kept on
        :attr:`last_job` once iteration finishes.  Raises
        :class:`ServiceError` if the job fails server-side or ``timeout``
        (default: the problem budget plus a grace period) elapses.
        """
        deadline = time.monotonic() + (
            timeout if timeout is not None else problem.budget + 30.0
        )
        record = self.submit(problem)
        job_id = record["job_id"]
        yielded = 0
        while True:
            for entry in record.get("solutions", [])[yielded:]:
                yielded += 1
                yield Solution.from_dict(entry)
            status = record.get("status")
            if status == JOB_FAILED:
                raise ServiceError(
                    500, "engine_error", record.get("error", "job failed")
                )
            if status in (JOB_DONE, JOB_CANCELLED):
                self.last_job = record
                return
            if time.monotonic() > deadline:
                raise ServiceError(504, "client_timeout", f"job {job_id} timed out")
            time.sleep(poll_interval)
            try:
                record = self.job(job_id)
            except ServiceError as exc:
                if exc.status == 404 and exc.code == "not_found":
                    # The job existed — we created it — so a 404 here means
                    # the server lost it (restart).  Surface that as its own
                    # type; "not found" would read as a caller bug.
                    raise JobLostError(job_id, payload=exc.payload) from None
                raise

    #: Final job record of the most recent :meth:`iter_solutions` run.
    last_job: Optional[Dict[str, Any]] = None
