"""Persistent batch records for bulk ingestion.

A *batch* is an ordered sequence of Problems identified by their position in
the submitted NDJSON stream.  The :class:`BatchRecord` tracks one status per
item — ``queued → solved | unsolved | failed``, or ``cached`` when the
result cache short-circuits the solve entirely — and persists itself as a
JSON file after every transition, so ingestion survives both client and
server restarts:

* a client killed mid-upload re-POSTs the same NDJSON against the same batch
  id; every index the record already knows is skipped (``resume``),
* a server killed mid-batch reloads records lazily from disk; items stranded
  in ``queued`` (their jobs died with the process) are re-ingested on the
  next POST instead of being skipped, because no live job backs them.

The same record format backs the ``regel batch --record`` CLI path, so a
local run and a service run of one corpus file produce interchangeable
artifacts.

Persistence is belt *and* braces.  The snapshot file is written atomically
(write-then-rename), and every item transition is first appended to a
sidecar **journal** (``<batch_id>.journal``, one JSON object per line with a
monotonic ``seq``).  The snapshot records the highest journal ``seq`` it
contains, so :meth:`BatchRecord.load` replays only the journal suffix the
snapshot missed — and when the snapshot itself is torn, truncated, or gone,
the whole record is rebuilt from the journal.  A torn *trailing* journal
line (the one a crash interrupted) is skipped; everything before it is
intact because lines are append-only.  The ``batch.persist`` /
``batch.load`` fault points (:mod:`repro.faults`) let the chaos suite kill
these writes mid-flight and assert the reopen is clean.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.faults import fault_point

#: Per-item lifecycle states.
ITEM_QUEUED = "queued"
ITEM_SOLVED = "solved"
ITEM_UNSOLVED = "unsolved"
ITEM_FAILED = "failed"
ITEM_CACHED = "cached"

ITEM_STATUSES = (ITEM_QUEUED, ITEM_SOLVED, ITEM_UNSOLVED, ITEM_FAILED, ITEM_CACHED)

#: Terminal item states (everything but ``queued``).
TERMINAL_ITEM_STATUSES = frozenset(ITEM_STATUSES) - {ITEM_QUEUED}


def _atomic_write(path: Path, payload: Dict[str, Any]) -> None:
    """Write-then-rename so a crash never leaves a half-written record."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=0, sort_keys=True), encoding="utf-8")
    # The commit point: a crash (or injected fault) here leaves the previous
    # snapshot untouched — readers see old-and-complete, never torn.
    fault_point("batch.persist")
    os.replace(tmp, path)


def _journal_path(path: Path) -> Path:
    return path.with_suffix(".journal")


def _read_journal(path: Path) -> List[Dict[str, Any]]:
    """Parse journal entries in order; a torn trailing line ends the read.

    Append-only writing means corruption can only live at the tail (the line
    a crash interrupted), so stopping at the first undecodable line keeps
    every completed entry.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    entries: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            break
        if isinstance(entry, dict) and isinstance(entry.get("seq"), int):
            entries.append(entry)
    return entries


class BatchRecord:
    """One batch's per-item statuses, with JSON-file persistence."""

    def __init__(self, batch_id: Optional[str] = None, path: Optional[Path] = None):
        self.batch_id = batch_id or uuid.uuid4().hex
        self.path = path
        self.created = time.time()
        self.updated = self.created
        #: ``{"index", "status", "cache_key", "regex"?, "error"?}`` per item,
        #: list position == item index.
        self.items: List[Dict[str, Any]] = []
        #: Indexes backed by a live job *in this process* — deliberately not
        #: persisted: after a restart nothing is live, which is exactly what
        #: makes stranded ``queued`` items eligible for re-ingestion.
        self.live: set[int] = set()
        #: Highest journal sequence number written (or replayed) so far.
        self.journal_seq = 0
        #: Journal / snapshot writes absorbed after backend failure.
        self.journal_errors = 0
        self.persist_errors = 0
        #: True when :meth:`load` had to replay the journal (snapshot stale,
        #: torn, or missing) — surfaced via :class:`BatchStore` stats.
        self.recovered = False
        self._lock = threading.RLock()

    # -- mutation ------------------------------------------------------------

    def _journal_write(self, index: int, item: Dict[str, Any]) -> None:
        """Append one write-ahead entry (caller holds ``self._lock``).

        Runs *before* the snapshot save, so any transition the snapshot
        loses to a crash is still recoverable.  Journal failures are counted
        and absorbed: the snapshot path is still there, and the record must
        never fail an ingest over its own bookkeeping.
        """
        if self.path is None:
            return
        journal = _journal_path(Path(self.path))
        self.journal_seq += 1
        lines = ""
        if self.journal_seq == 1 and not journal.exists():
            lines += json.dumps({"seq": 0, "batch_id": self.batch_id}) + "\n"
        lines += (
            json.dumps(
                {"seq": self.journal_seq, "index": index, "item": item},
                sort_keys=True,
            )
            + "\n"
        )
        try:
            with open(journal, "a", encoding="utf-8") as handle:
                handle.write(lines)
        except OSError:
            self.journal_errors += 1

    def append_item(self, status: str, cache_key: str = "", **extra: Any) -> int:
        """Add the next item; returns its index."""
        with self._lock:
            index = len(self.items)
            item = {"index": index, "status": status, "cache_key": cache_key}
            item.update({k: v for k, v in extra.items() if v is not None})
            self.items.append(item)
            self._journal_write(index, dict(item))
            self.updated = time.time()
            return index

    def update_item(self, index: int, status: str, **extra: Any) -> None:
        with self._lock:
            item = self.items[index]
            item["status"] = status
            item.update({k: v for k, v in extra.items() if v is not None})
            if status in TERMINAL_ITEM_STATUSES:
                self.live.discard(index)
            self._journal_write(index, dict(item))
            self.updated = time.time()

    def mark_live(self, index: int) -> None:
        with self._lock:
            self.live.add(index)

    def release(self, index: int) -> None:
        """Drop the live-job claim on a still-``queued`` item (cancelled job):
        the next resume POST re-ingests it instead of skipping it."""
        with self._lock:
            self.live.discard(index)

    def status_of(self, index: int) -> str:
        with self._lock:
            return self.items[index]["status"]

    def needs_reingest(self, index: int) -> bool:
        """Queued but with no live job in this process (e.g. after restart)."""
        with self._lock:
            return (
                index < len(self.items)
                and self.items[index]["status"] == ITEM_QUEUED
                and index not in self.live
            )

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self.items)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {status: 0 for status in ITEM_STATUSES}
            for item in self.items:
                out[item["status"]] = out.get(item["status"], 0) + 1
            return out

    @property
    def done(self) -> bool:
        """Every item reached a terminal state."""
        with self._lock:
            return all(
                item["status"] in TERMINAL_ITEM_STATUSES for item in self.items
            )

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "batch_id": self.batch_id,
                "total": len(self.items),
                "done": self.done,
                "counts": self.counts(),
                "created": self.created,
                "updated": self.updated,
            }

    def page(self, offset: int = 0, limit: int = 100) -> Dict[str, Any]:
        """Summary plus an item slice (offset pagination for ``GET``)."""
        with self._lock:
            payload = self.summary()
            payload["offset"] = offset
            payload["limit"] = limit
            payload["items"] = [dict(item) for item in self.items[offset : offset + limit]]
            return payload

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "batch_id": self.batch_id,
                "created": self.created,
                "updated": self.updated,
                "journal_seq": self.journal_seq,
                "items": [dict(item) for item in self.items],
            }

    def save(self, path: Optional[Path] = None) -> None:
        """Snapshot to disk; failures are absorbed (the journal has the data)."""
        target = path or self.path
        if target is None:
            return
        with self._lock:
            payload = self.to_dict()
        try:
            _atomic_write(Path(target), payload)
        except OSError:
            with self._lock:
                self.persist_errors += 1

    @classmethod
    def load(cls, path: "Path | str") -> "BatchRecord":
        """Load a record: snapshot + journal-suffix replay.

        A torn or missing snapshot falls back to a full journal rebuild;
        only when *both* are unusable does this raise (the caller answers
        404).  ``record.recovered`` is True whenever the journal contributed
        state the snapshot lacked.
        """
        path = Path(path)
        fault_point("batch.load")
        record: Optional["BatchRecord"] = None
        error: Optional[Exception] = None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            record = cls(batch_id=data["batch_id"], path=path)
            record.created = data.get("created", record.created)
            record.updated = data.get("updated", record.updated)
            record.items = [dict(item) for item in data.get("items", [])]
            seq = data.get("journal_seq", 0)
            record.journal_seq = seq if isinstance(seq, int) else 0
        except (ValueError, OSError, KeyError, TypeError) as exc:
            record, error = None, exc

        entries = _read_journal(_journal_path(path))
        if record is None:
            if not entries:
                raise error if error is not None else ValueError(f"no record at {path}")
            batch_id = path.stem
            for entry in entries:
                if entry["seq"] == 0 and isinstance(entry.get("batch_id"), str):
                    batch_id = entry["batch_id"]
                    break
            record = cls(batch_id=batch_id, path=path)
            record.recovered = True

        replayed = 0
        for entry in entries:
            seq = entry["seq"]
            if seq <= record.journal_seq:
                continue
            index = entry.get("index")
            item = entry.get("item")
            if not isinstance(index, int) or not isinstance(item, dict):
                continue
            # Each entry carries the item's full state, so later-wins replay
            # is just assignment; gaps (from absorbed journal errors) only
            # need queued placeholders to keep list position == index.
            while len(record.items) <= index:
                filler = len(record.items)
                record.items.append(
                    {"index": filler, "status": ITEM_QUEUED, "cache_key": ""}
                )
            record.items[index] = dict(item)
            record.journal_seq = max(record.journal_seq, seq)
            replayed += 1
        if replayed:
            record.recovered = True
        return record


class BatchStore:
    """Registry of batch records persisted under one directory.

    In-memory records are authoritative while the process lives; unknown ids
    are faulted in from ``<dir>/<batch_id>.json`` so a restarted server still
    answers ``GET /v1/batch/{id}`` for every batch it ever accepted.
    """

    def __init__(self, directory: "Path | str"):
        self.directory = Path(directory)
        self._records: Dict[str, BatchRecord] = {}
        self._lock = threading.Lock()
        #: Records rebuilt (fully or partially) from their journal on load.
        self.recovered = 0
        #: Records whose snapshot *and* journal were unusable (answered 404).
        self.load_errors = 0

    def _path_for(self, batch_id: str) -> Path:
        return self.directory / f"{batch_id}.json"

    def create(self) -> BatchRecord:
        self.directory.mkdir(parents=True, exist_ok=True)
        record = BatchRecord()
        record.path = self._path_for(record.batch_id)
        with self._lock:
            self._records[record.batch_id] = record
        record.save()
        return record

    def get(self, batch_id: str) -> Optional[BatchRecord]:
        with self._lock:
            record = self._records.get(batch_id)
        if record is not None:
            return record
        path = self._path_for(batch_id)
        # A journal without its snapshot (crash between journal append and
        # first save) is still a loadable record.
        if not path.is_file() and not _journal_path(path).is_file():
            return None
        try:
            record = BatchRecord.load(path)
        except (ValueError, OSError, KeyError, TypeError):
            with self._lock:
                self.load_errors += 1
            return None
        with self._lock:
            if record.recovered:
                self.recovered += 1
            # Lost the race to another loader: keep the first one.
            return self._records.setdefault(batch_id, record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "records": len(self._records),
                "recovered": self.recovered,
                "load_errors": self.load_errors,
            }
