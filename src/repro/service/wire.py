"""Wire schemas and validation for the HTTP/JSON service.

The wire format *is* the pipeline API's serialisation: a ``POST /v1/solve``
body is exactly :meth:`repro.api.Problem.to_dict` and a response is exactly
:meth:`repro.api.RunReport.to_dict`.  This module adds the envelope around
them — schema versioning, error bodies, job records — and the request
validation the library layer does not need (body size limits, budget caps,
type checks with client-readable messages).

Every error crossing the wire is ``{"error": {"code": ..., "message": ...}}``
so clients can branch on ``code`` without parsing prose.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.api.problem import Problem
from repro.sketch.parser import parse_sketch

#: Version tag stamped into ``/v1/healthz`` and ``/v1/stats`` responses.
WIRE_SCHEMA = 1

#: Hard cap on request body size (1 MiB is orders of magnitude above any
#: legitimate Problem; bigger bodies are rejected before JSON parsing).
MAX_BODY_BYTES = 1 << 20

#: Job lifecycle states, in order.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"


class WireError(Exception):
    """A client-side request problem, mapped to an HTTP 4xx response."""

    def __init__(self, message: str, status: int = 400, code: str = "bad_request"):
        super().__init__(message)
        self.status = status
        self.code = code


def error_body(code: str, message: str) -> Dict[str, Any]:
    """The uniform JSON error envelope."""
    return {"error": {"code": code, "message": message}}


def parse_problem(
    body: bytes, max_budget: Optional[float] = None
) -> Problem:
    """Decode and validate a request body into a :class:`Problem`.

    Raises :class:`WireError` with a message a client can act on; the service
    never lets a malformed body surface as a traceback.  ``max_budget`` is the
    server's per-request ceiling: rather than silently clamping (which would
    change the problem's cache identity), over-budget requests are rejected.
    """
    if len(body) > MAX_BODY_BYTES:
        raise WireError(
            f"request body exceeds {MAX_BODY_BYTES} bytes",
            status=413,
            code="body_too_large",
        )
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"request body is not valid JSON: {exc}") from None
    return problem_from_data(data, max_budget=max_budget)


def problem_from_data(
    data: Any, max_budget: Optional[float] = None
) -> Problem:
    """Validate one already-decoded Problem dict (shared with the batch path)."""
    if not isinstance(data, Mapping):
        raise WireError("request body must be a JSON object (a Problem dict)")
    if not isinstance(data.get("description", ""), str):
        raise WireError("description must be a string")
    for field in ("positive", "negative"):
        examples = data.get(field, [])
        # A bare string would silently explode into per-character examples
        # (tuple("123") == ('1','2','3')) — a different problem with a
        # legitimate-looking cache key.
        if isinstance(examples, str) or not isinstance(examples, (list, tuple)):
            raise WireError(f"{field} must be a JSON array of strings")
        if not all(isinstance(example, str) for example in examples):
            raise WireError(f"{field} examples must be strings")
    pinned = data.get("sketches", [])
    if isinstance(pinned, str) or not isinstance(pinned, (list, tuple)):
        raise WireError("sketches must be a JSON array of sketch strings")
    for entry in pinned:
        if not isinstance(entry, str):
            raise WireError("sketches must be a JSON array of sketch strings")
        try:
            parse_sketch(entry)
        except (ValueError, TypeError) as exc:
            raise WireError(f"invalid sketch {entry!r}: {exc}") from None
    try:
        problem = Problem.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise WireError(f"invalid problem: {exc}") from None
    if max_budget is not None and problem.budget > max_budget:
        raise WireError(
            f"budget {problem.budget}s exceeds the server maximum of {max_budget}s",
            code="budget_too_large",
        )
    return problem


def parse_lint_sketches(body: bytes) -> "list[tuple[str, Any]]":
    """Extract and parse the optional ``"sketches"`` array of a lint body.

    Returns ``(text, parsed_sketch)`` pairs.  Unknown keys in a Problem dict
    are ignored by :meth:`Problem.from_dict`, so the same body serves both
    ``parse_problem`` and this.
    """
    data = json.loads(body.decode("utf-8"))
    entries = data.get("sketches", [])
    if isinstance(entries, str) or not isinstance(entries, (list, tuple)):
        raise WireError("sketches must be a JSON array of sketch strings")
    parsed = []
    for entry in entries:
        if not isinstance(entry, str):
            raise WireError("sketches must be a JSON array of sketch strings")
        try:
            parsed.append((entry, parse_sketch(entry)))
        except (ValueError, TypeError) as exc:
            raise WireError(f"invalid sketch {entry!r}: {exc}") from None
    return parsed


def job_body(job: "Job", include_report: bool = True) -> Dict[str, Any]:  # noqa: F821
    """Serialise a pool job for ``POST /v1/jobs`` / ``GET /v1/jobs/{id}``.

    ``solutions`` carries every solution streamed so far (present in all
    states, so pollers see partial results while the job is still running);
    ``report`` appears once the job reaches a terminal state.
    """
    payload: Dict[str, Any] = {
        "job_id": job.id,
        "status": job.status,
        "cache_key": job.cache_key,
        "solutions": [dict(solution) for solution in job.solutions],
    }
    if job.error:
        payload["error"] = job.error
    if include_report and job.report is not None:
        payload["report"] = job.report
    return payload
