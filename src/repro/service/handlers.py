"""Transport-independent request handling for the service.

:class:`ServiceState` owns everything behind the HTTP surface — the worker
pool, the persistent result cache, the job registry, and the counters — and
exposes one ``handle_*`` method per endpoint, each returning
``(status_code, payload_dict)``.  Keeping this layer free of ``http.server``
types makes every endpoint testable as a plain function call and leaves the
server module a thin routing shim.

Request flow for a solve (sync or async):

1. validate the body into a :class:`~repro.api.Problem` (:mod:`wire`),
2. reject statically-unsatisfiable problems (conflicting example sets) with
   HTTP 422 before they occupy a warm worker (:mod:`repro.analysis`),
3. look up the canonical problem hash in the cache — a hit answers
   immediately with ``provenance: "cache"`` and never touches the pool,
4. on a miss, enqueue a :class:`~repro.service.pool.Job`; a full queue is
   HTTP 429 (back-pressure),
5. completed engine runs are written through to the cache, so the next
   identical request from any user is a hit.

``POST /v1/lint`` runs the same analyzer in report-only mode: full
diagnostics, always 200, nothing queued.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Tuple

from repro.analysis.diagnostics import lint_problem, problem_unsatisfiable
from repro.api.problem import Problem
from repro.api.providers import NlSketchProvider
from repro.api.schedulers import SCHEDULERS, make_scheduler
from repro.api.session import Session
from repro.faults import fault_point, fault_stats
from repro.service.batch import (
    ITEM_CACHED,
    ITEM_FAILED,
    ITEM_QUEUED,
    ITEM_SOLVED,
    ITEM_UNSOLVED,
    BatchRecord,
    BatchStore,
)
from repro.service.cache import ResultCache, make_cache
from repro.service.pool import Job, PoolSaturated, WorkerPool
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.examples import EVALUATORS
from repro.service.wire import (
    JOB_DONE,
    JOB_FAILED,
    WIRE_SCHEMA,
    WireError,
    error_body,
    job_body,
    parse_lint_sketches,
    parse_problem,
    problem_from_data,
)

Response = Tuple[int, Dict[str, Any]]


@dataclass
class ServiceConfig:
    """Everything ``regel serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: Worker threads, each with its own warm :class:`~repro.api.Session`.
    workers: int = 2
    #: Bounded job queue; a full queue answers 429.
    queue_size: int = 16
    #: ``json`` (directory of files), ``sqlite``, or ``null`` (disabled).
    cache_backend: str = "json"
    #: Directory (json) or database file (sqlite); None picks a default
    #: under the working directory.
    cache_path: Optional[str] = None
    cache_max_entries: int = 1024
    #: Scheduler each worker session runs (see :data:`repro.api.SCHEDULERS`).
    scheduler: str = "interleaved"
    #: Membership evaluator each engine runs (see
    #: :data:`repro.synthesis.examples.EVALUATORS`): ``dfa`` shares compiled
    #: automata and membership verdicts process-globally across worker
    #: threads and requests; ``matchset``/``recursive`` are the differential
    #: baselines.
    evaluator: str = "dfa"
    #: Sketches requested from the semantic parser per problem.
    sketches: int = 25
    #: Reject problems whose budget exceeds this (seconds).
    max_budget: float = 120.0
    #: Extra wall-clock a synchronous solve may wait past the budget.
    sync_grace: float = 5.0
    #: Terminal jobs kept for polling before being pruned, oldest first.
    max_tracked_jobs: int = 256
    #: Print one line per request (off in tests/benchmarks).
    log_requests: bool = field(default=False)
    #: Directory for persistent batch records; None derives a sibling of the
    #: cache path, so one ``--cache-path`` flag relocates both artifacts.
    batch_dir: Optional[str] = None
    #: Extra wall-clock past a job's budget before the pool watchdog settles
    #: it as failed (the worker is presumed wedged).
    watchdog_grace: float = 10.0
    watchdog_interval: float = 0.25
    #: Fault-injection spec (``REPRO_FAULTS`` grammar) armed at serve time;
    #: None leaves whatever the environment configured.
    faults: Optional[str] = None

    def resolved_cache_path(self) -> str:
        if self.cache_path is not None:
            return self.cache_path
        return (
            ".regel-cache.sqlite"
            if self.cache_backend == "sqlite"
            else ".regel-cache"
        )

    def resolved_batch_dir(self) -> str:
        if self.batch_dir is not None:
            return self.batch_dir
        return self.resolved_cache_path() + ".batches"


class ServiceState:
    """The live service: pool + cache + job registry + counters."""

    def __init__(self, config: ServiceConfig, cache: Optional[ResultCache] = None):
        if config.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {config.scheduler!r}; "
                f"choose from {sorted(SCHEDULERS)}"
            )
        if config.evaluator not in EVALUATORS:
            raise ValueError(
                f"unknown evaluator {config.evaluator!r}; "
                f"choose from {sorted(EVALUATORS)}"
            )
        self.config = config
        self.cache = cache if cache is not None else make_cache(
            config.cache_backend,
            config.resolved_cache_path(),
            config.cache_max_entries,
        )
        self.pool = WorkerPool(
            session_factory=self._make_session,
            workers=config.workers,
            queue_size=config.queue_size,
            on_complete=self._write_through,
            watchdog_grace=config.watchdog_grace,
            watchdog_interval=config.watchdog_interval,
        )
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        #: cache_key → live job, so concurrent identical requests coalesce
        #: onto one engine run instead of each occupying a worker.
        self._inflight: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._counters_lock = threading.Lock()
        self.requests: Dict[str, int] = {}
        self.started = time.time()
        self.batches = BatchStore(config.resolved_batch_dir())
        #: Batch items awaiting pool capacity: ``(record, index, problem, key)``.
        #: The feeder thread drains this with retry, so a 1000-item batch
        #: never sees the pool's 429 back-pressure — the backlog *is* the
        #: back-pressure, and it answers instantly with ``queued`` statuses.
        self._batch_backlog: Deque[Tuple[BatchRecord, int, Problem, str]] = deque()
        self._batch_cond = threading.Condition()
        self._batch_feeder_thread: Optional[threading.Thread] = None
        self._closing = False

    def _make_session(self) -> Session:
        # One session per worker thread: the NL provider holds the trained
        # semantic parser (the expensive, reusable state), the scheduler is
        # stateless per solve.
        return Session(
            provider=NlSketchProvider(num_sketches=self.config.sketches),
            scheduler=make_scheduler(self.config.scheduler),
            config=SynthesisConfig(evaluator=self.config.evaluator),
        )

    # -- bookkeeping ---------------------------------------------------------

    def count(self, endpoint: str) -> None:
        with self._counters_lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def _register(self, job: Job) -> None:
        with self._jobs_lock:
            self._register_locked(job)

    def _register_locked(self, job: Job) -> None:
        self._jobs[job.id] = job
        # Prune the oldest *terminal* jobs past the tracking bound;
        # live jobs are never dropped.
        excess = len(self._jobs) - self.config.max_tracked_jobs
        if excess > 0:
            for job_id in [
                jid for jid, tracked in self._jobs.items() if tracked.terminal
            ][:excess]:
                del self._jobs[job_id]

    def _lookup(self, job_id: str) -> Optional[Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def _coalesce_or_submit(self, job: Job) -> Job:
        """Reuse a live identical job, or enqueue ``job`` as the new one.

        Identical problems arriving while the first is still queued/running
        attach to that run (ISSUE-motivating dedup under concurrency, before
        the cache has anything to serve).  Raises :class:`PoolSaturated`.

        Coalescing, submission, and registration happen under one lock:
        a concurrent identical request must never observe a job that then
        fails to enter the pool (it would wait on a phantom that no worker
        will ever finish).
        """
        with self._jobs_lock:
            existing = self._inflight.get(job.cache_key)
            if existing is not None and not existing.terminal:
                return existing
            # Prune terminal leftovers lazily; the dict stays bounded by the
            # pool's capacity plus recently finished keys.
            if len(self._inflight) > 2 * (
                self.config.queue_size + self.config.workers
            ):
                self._inflight = {
                    key: tracked
                    for key, tracked in self._inflight.items()
                    if not tracked.terminal
                }
            self.pool.submit(job)  # may raise PoolSaturated: nothing recorded
            self._inflight[job.cache_key] = job
            self._register_locked(job)
        return job

    def _write_through(self, cache_key: str, report: Dict[str, Any]) -> None:
        """Pool completion hook: persist *solved* engine reports.

        Runs on the worker thread *before* the job is marked done, so a
        client re-posting the identical problem the instant its first
        response arrives is guaranteed to hit the cache.  Unsolved and
        cancelled reports are never cached: a budget-bounded search that
        found nothing under one machine's load is not a stable fact about
        the problem, and caching it would poison every future request.
        """
        if report.get("solved") and not report.get("cancelled"):
            self.cache.put(cache_key, report)

    def _cached_report(self, key: str) -> Optional[Dict[str, Any]]:
        report = self.cache.get(key)
        if report is None:
            return None
        report = dict(report)
        report["provenance"] = "cache"
        report["cache_key"] = key
        return report

    # -- endpoints -----------------------------------------------------------

    @staticmethod
    def _reject_unsatisfiable(problem) -> Optional[Response]:
        """The pre-queue 422 for problems no regex can ever satisfy.

        Only statically *proven* unsatisfiability is rejected (the analysis
        may say "maybe", never a wrong "no"), so every accepted problem is
        still worth a worker's time.
        """
        diagnostic = problem_unsatisfiable(problem)
        if diagnostic is None:
            return None
        payload = error_body(diagnostic.code, diagnostic.message)
        payload["diagnostics"] = [diagnostic.to_dict()]
        return 422, payload

    def handle_solve(self, body: bytes) -> Response:
        """``POST /v1/solve`` — synchronous: block until the report is ready."""
        self.count("solve")
        try:
            problem = parse_problem(body, max_budget=self.config.max_budget)
        except WireError as exc:
            return exc.status, error_body(exc.code, str(exc))
        rejected = self._reject_unsatisfiable(problem)
        if rejected is not None:
            return rejected
        key = problem.cache_key()
        cached = self._cached_report(key)
        if cached is not None:
            return 200, cached
        try:
            job = self._coalesce_or_submit(Job(problem, cache_key=key))
        except PoolSaturated as exc:
            return 429, error_body("saturated", str(exc))
        if not job.wait(timeout=problem.budget + self.config.sync_grace):
            # The job keeps running (and will be cached); tell the client
            # where to poll for it instead of holding the connection open.
            payload = error_body(
                "deadline_exceeded",
                "solve did not finish within budget + grace; poll the job",
            )
            payload["job_id"] = job.id
            return 504, payload
        if job.status == JOB_DONE:
            return 200, job.report
        if job.status == JOB_FAILED:
            return 500, error_body("engine_error", job.error or "synthesis failed")
        return 503, error_body("cancelled", "job was cancelled before completion")

    def handle_submit(self, body: bytes) -> Response:
        """``POST /v1/jobs`` — async: return a job id to poll."""
        self.count("jobs.submit")
        try:
            problem = parse_problem(body, max_budget=self.config.max_budget)
        except WireError as exc:
            return exc.status, error_body(exc.code, str(exc))
        rejected = self._reject_unsatisfiable(problem)
        if rejected is not None:
            return rejected
        key = problem.cache_key()
        job = Job(problem, cache_key=key)
        cached = self._cached_report(key)
        if cached is not None:
            # A hit still gets a job record, so clients have one code path;
            # it is born terminal with the cached report attached.
            job.solutions = [dict(entry) for entry in cached.get("solutions", [])]
            job.finish(JOB_DONE, report=cached)
            self._register(job)
            return 202, job_body(job)
        try:
            job = self._coalesce_or_submit(job)
        except PoolSaturated as exc:
            return 429, error_body("saturated", str(exc))
        return 202, job_body(job)

    def handle_lint(self, body: bytes) -> Response:
        """``POST /v1/lint`` — static analysis only; never touches the pool.

        The body is a Problem dict, optionally extended with ``"sketches"``:
        a JSON array of sketch strings to analyze against the examples.
        Always 200 with the full diagnostic list — linting an unsatisfiable
        problem is the point, not an error.
        """
        self.count("lint")
        try:
            problem = parse_problem(body)
            sketches = parse_lint_sketches(body)
        except WireError as exc:
            return exc.status, error_body(exc.code, str(exc))
        diagnostics = lint_problem(problem, sketches)
        return 200, {
            "schema": WIRE_SCHEMA,
            "satisfiable": problem_unsatisfiable(problem) is None,
            "diagnostics": [diagnostic.to_dict() for diagnostic in diagnostics],
        }

    def handle_job_get(self, job_id: str) -> Response:
        """``GET /v1/jobs/{id}`` — poll status + partial solutions."""
        self.count("jobs.get")
        job = self._lookup(job_id)
        if job is None:
            return 404, error_body("not_found", f"no such job: {job_id}")
        return 200, job_body(job)

    def handle_job_cancel(self, job_id: str) -> Response:
        """``DELETE /v1/jobs/{id}`` — cooperative cancellation.

        Note: identical concurrent requests coalesce onto one job, so
        cancelling it cancels the run for every requester sharing it.
        """
        self.count("jobs.cancel")
        job = self._lookup(job_id)
        if job is None:
            return 404, error_body("not_found", f"no such job: {job_id}")
        if not job.terminal:
            job.request_cancel()
        return 202, job_body(job)

    # -- batch ingestion -----------------------------------------------------

    def _ensure_feeder(self) -> None:
        with self._batch_cond:
            if self._closing:
                # Shutdown has begun: never (re)start the feeder, or it could
                # race the pool's close and feed jobs into a stopping queue.
                return
            if self._batch_feeder_thread is None or not self._batch_feeder_thread.is_alive():
                self._batch_feeder_thread = threading.Thread(
                    target=self._batch_feeder, name="regel-batch-feeder", daemon=True
                )
                self._batch_feeder_thread.start()

    def _batch_feeder(self) -> None:
        """Drain the batch backlog into the bounded pool, retrying saturation.

        Interactive requests and batch items share the same pool; the feeder
        simply waits out full-queue periods instead of failing items, so bulk
        ingestion is throttled by — never starved of, never starving —
        interactive traffic.
        """
        while True:
            with self._batch_cond:
                while not self._batch_backlog and not self._closing:
                    self._batch_cond.wait()
                if self._closing:
                    return
                record, index, problem, key = self._batch_backlog.popleft()
            # The cache may have filled since enqueueing (an identical item
            # earlier in the batch, or an interactive solve).
            cached = self._cached_report(key)
            if cached is not None:
                self._settle_batch_item(record, index, ITEM_CACHED, cached)
                continue
            job = Job(problem, cache_key=key)
            job.add_terminal_callback(
                lambda finished, r=record, i=index: self._on_batch_job(r, i, finished)
            )
            while True:
                try:
                    shared = self._coalesce_or_submit(job)
                    break
                except PoolSaturated:
                    if self._closing:
                        return
                    time.sleep(0.05)
            if shared is not job:
                # Coalesced onto an identical live job from another request
                # (or another item of this very batch).
                shared.add_terminal_callback(
                    lambda finished, r=record, i=index: self._on_batch_job(r, i, finished)
                )

    def _settle_batch_item(
        self,
        record: BatchRecord,
        index: int,
        status: str,
        report: Optional[Dict[str, Any]],
        error: Optional[str] = None,
    ) -> None:
        regex = None
        if report and report.get("solutions"):
            regex = report["solutions"][0].get("regex")
        record.update_item(index, status, regex=regex, error=error)
        record.save()

    def _on_batch_job(self, record: BatchRecord, index: int, job: Job) -> None:
        """Terminal-job hook persisting the batch item's outcome."""
        if job.status == JOB_DONE:
            report = job.report or {}
            status = ITEM_SOLVED if report.get("solved") else ITEM_UNSOLVED
            self._settle_batch_item(record, index, status, report)
        elif job.status == JOB_FAILED:
            self._settle_batch_item(
                record, index, ITEM_FAILED, None, error=(job.error or "engine error")[:500]
            )
        else:  # cancelled (e.g. shutdown): stays queued so a resume re-ingests
            record.release(index)
            record.save()

    def _ingest_line(self, record: BatchRecord, index: int, raw: str) -> str:
        """Validate + route one NDJSON line; returns the item's initial status.

        ``index == len(record)`` appends; ``index < len(record)`` replaces a
        stranded ``queued`` item (re-ingestion after a server restart).
        """
        replacing = index < len(record)

        def settle(status: str, **extra: Any) -> str:
            if replacing:
                record.update_item(index, status, **extra)
            else:
                record.append_item(status, **extra)
            return status

        try:
            # Chaos hook: an injected ``batch.ingest`` fault is the ingest
            # path's own I/O failing mid-item.  The item settles as a typed
            # failure — surfaced in the receipt, never silently dropped.
            fault_point("batch.ingest")
        except OSError as exc:
            return settle(ITEM_FAILED, error=f"ingest failed: {exc}")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            return settle(ITEM_FAILED, error=f"malformed JSON: {exc}")
        try:
            problem = problem_from_data(data, max_budget=self.config.max_budget)
        except WireError as exc:
            return settle(ITEM_FAILED, error=str(exc))
        diagnostic = problem_unsatisfiable(problem)
        if diagnostic is not None:
            return settle(ITEM_FAILED, error=diagnostic.message)
        key = problem.cache_key()
        cached = self._cached_report(key)
        if cached is not None:
            regex = None
            if cached.get("solutions"):
                regex = cached["solutions"][0].get("regex")
            return settle(ITEM_CACHED, cache_key=key, regex=regex)
        settle(ITEM_QUEUED, cache_key=key)
        record.mark_live(index)
        with self._batch_cond:
            self._batch_backlog.append((record, index, problem, key))
            self._batch_cond.notify()
        return ITEM_QUEUED

    def handle_batch_submit(
        self, body: bytes, batch_id: Optional[str] = None, offset: int = 0
    ) -> Response:
        """``POST /v1/batch[?batch=<id>&offset=<n>]`` — bulk NDJSON ingestion.

        The body is one Problem dict per line.  Without ``batch`` a new batch
        is created; with it, lines are resumed into the existing record: line
        ``i`` of this request is item ``offset + i`` of the batch, indexes
        the record already ingested are skipped (unless stranded in
        ``queued`` with no live job — a server restart — in which case they
        are re-ingested), and an offset beyond the record's end is rejected
        because it would leave a gap of unknown items.
        """
        self.count("batch.submit")
        if offset < 0:
            return 400, error_body("bad_offset", "offset must be >= 0")
        if batch_id is None:
            if offset:
                return 400, error_body(
                    "bad_offset", "offset requires an existing batch id"
                )
            record = self.batches.create()
        else:
            record = self.batches.get(batch_id)
            if record is None:
                return 404, error_body("not_found", f"no such batch: {batch_id}")
        if offset > len(record):
            return 409, error_body(
                "bad_offset",
                f"offset {offset} would leave a gap (batch has {len(record)} items)",
            )
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            return 400, error_body("bad_request", f"body is not UTF-8: {exc}")
        self._ensure_feeder()
        statuses = []
        ingested = skipped = 0
        for i, raw in enumerate(line for line in text.splitlines() if line.strip()):
            index = offset + i
            if index < len(record) and not record.needs_reingest(index):
                statuses.append(record.status_of(index))
                skipped += 1
                continue
            statuses.append(self._ingest_line(record, index, raw))
            ingested += 1
        record.save()
        payload = record.summary()
        payload["schema"] = WIRE_SCHEMA
        payload["ingested"] = ingested
        payload["skipped"] = skipped
        payload["statuses"] = statuses
        return 202, payload

    def handle_batch_get(
        self, batch_id: str, offset: int = 0, limit: int = 100
    ) -> Response:
        """``GET /v1/batch/{id}?offset=<n>&limit=<n>`` — paginated statuses."""
        self.count("batch.get")
        if offset < 0 or limit < 1:
            return 400, error_body(
                "bad_offset", "offset must be >= 0 and limit >= 1"
            )
        record = self.batches.get(batch_id)
        if record is None:
            return 404, error_body("not_found", f"no such batch: {batch_id}")
        payload = record.page(offset=offset, limit=min(limit, 1000))
        payload["schema"] = WIRE_SCHEMA
        return 200, payload

    def health(self) -> Dict[str, Any]:
        """Aggregate health: ``ok`` or ``degraded``, with per-subsystem detail.

        ``degraded`` means still serving, at reduced fidelity: an open cache
        breaker (every request is a miss) or a wedged worker (capacity down
        by one).  Orchestrators should keep routing traffic but alert.
        """
        subsystems = {
            "cache": "ok" if self.cache.healthy() else "degraded",
            "pool": "ok" if self.pool.healthy() else "degraded",
        }
        degraded = any(value != "ok" for value in subsystems.values())
        return {
            "status": "degraded" if degraded else "ok",
            "subsystems": subsystems,
        }

    def handle_healthz(self) -> Response:
        """``GET /v1/healthz`` — liveness, with degradation detail."""
        payload: Dict[str, Any] = self.health()
        payload["schema"] = WIRE_SCHEMA
        payload["uptime_seconds"] = time.time() - self.started
        return 200, payload

    def handle_stats(self) -> Response:
        """``GET /v1/stats`` — cache, pool, and request counters."""
        self.count("stats")
        with self._jobs_lock:
            tracked = len(self._jobs)
        with self._counters_lock:
            requests = dict(self.requests)
        return 200, {
            "schema": WIRE_SCHEMA,
            "uptime_seconds": time.time() - self.started,
            "scheduler": self.config.scheduler,
            "requests": requests,
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
            "jobs": {"tracked": tracked},
            "batches": {
                "tracked": len(self.batches),
                "backlog": len(self._batch_backlog),
                **self.batches.stats(),
            },
            "health": self.health(),
            "faults": fault_stats(),
        }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        # Stop the feeder before the pool: nothing new must enter the queue
        # while the pool cancels and joins.  Backlogged items stay ``queued``
        # in their (persisted) records, so a restart + resume picks them up.
        # Idempotent: SIGTERM handling and test teardown may both get here.
        with self._batch_cond:
            if self._closing:
                return
            self._closing = True
            self._batch_cond.notify_all()
        if self._batch_feeder_thread is not None:
            self._batch_feeder_thread.join(timeout=5.0)
        self.pool.close()
        self.cache.close()
