"""Deterministic fault injection: named points, seeded schedules, counters.

The service's hot paths call :func:`fault_point` with a stable name
(``"cache.read"``, ``"pool.job"``, ...).  With no plan armed — the production
default — the call is a single global load and a ``None`` check, measured in
nanoseconds (pinned by the ``fault_overhead`` benchmark).  With a plan armed
(``REPRO_FAULTS`` in the environment, or :func:`configure` from a test), the
point consults its rule and either raises :class:`InjectedFault`, stalls for
a bounded ``hang``, or falls through.

Determinism is the whole design: each point owns a
``random.Random(f"{seed}|{point}")`` stream and a call counter, so whether
call *n* at point *p* fires is a pure function of ``(seed, p, n)`` —
independent of thread interleaving *across* points, wall-clock time, and
everything else.  Re-running a chaos schedule with the same seed replays the
same faults.

:class:`InjectedFault` subclasses :class:`ConnectionError` (hence
:class:`OSError`): code hardened to absorb real I/O failures absorbs injected
ones through the very same ``except`` clauses, which is what makes the chaos
suite a test of the production error paths rather than of special cases.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Any, Dict, Optional

from repro.faults.spec import (
    KIND_HANG,
    FaultRule,
    FaultSpec,
    FaultSpecError,
    parse_spec,
)

__all__ = [
    "InjectedFault",
    "FaultPlan",
    "active_plan",
    "configure",
    "configure_from_env",
    "fault_point",
    "fault_stats",
    "faults_active",
]

#: Environment variable holding the fault spec (see :mod:`repro.faults.spec`).
ENV_VAR = "REPRO_FAULTS"


class InjectedFault(ConnectionError):
    """A deliberately injected failure at a named fault point.

    Subclasses :class:`ConnectionError` so the generic I/O hardening
    (``except OSError`` and friends) absorbs it exactly like a real fault.
    """

    def __init__(self, point: str, call: int):
        super().__init__(f"injected fault at {point!r} (call #{call})")
        self.point = point
        self.call = call


class _PointState:
    """Per-point call counter + seeded RNG stream (mutated under the plan lock)."""

    __slots__ = ("rule", "rng", "calls", "fired")

    def __init__(self, rule: Optional[FaultRule], seed: int, point: str):
        self.rule = rule
        self.rng = random.Random(f"{seed}|{point}")
        self.calls = 0
        self.fired = 0


class FaultPlan:
    """An armed fault schedule: the runtime form of a :class:`FaultSpec`."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._lock = threading.Lock()
        self._points: Dict[str, _PointState] = {
            point: _PointState(rule, spec.seed, point)
            for point, rule in spec.rules.items()
        }

    def hit(self, point: str, cancel: Any = None) -> None:
        """Record one traversal of ``point``; fire if the schedule says so."""
        with self._lock:
            state = self._points.get(point)
            if state is None:
                # Unarmed points are still counted: the overhead benchmark
                # and the chaos suite both want traversal totals.
                state = self._points[point] = _PointState(
                    None, self.spec.seed, point
                )
            state.calls += 1
            rule = state.rule
            if rule is None:
                return
            call = state.calls
            # Drawing unconditionally keeps the stream position a function
            # of the call number alone, whatever the schedule options.
            draw = state.rng.random()
            if not rule.should_fire(call, draw):
                return
            state.fired += 1
        # The fault itself happens outside the lock: a hang must never hold
        # up other points, and a raised fault must not poison the plan.
        if rule.kind == KIND_HANG:
            self._stall(rule.sleep, cancel)
            return
        raise InjectedFault(point, call)

    @staticmethod
    def _stall(seconds: float, cancel: Any) -> None:
        """Stall like a wedged thread, but honour a cooperative cancel."""
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            if cancel is not None and getattr(cancel, "cancelled", False):
                return
            time.sleep(min(0.01, seconds))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "seed": self.spec.seed,
                "spec": self.spec.to_string(),
                "points": {
                    point: {"calls": state.calls, "fired": state.fired}
                    for point, state in sorted(self._points.items())
                },
            }

    def total_fired(self) -> int:
        with self._lock:
            return sum(state.fired for state in self._points.values())


#: The armed plan, or None (the production default).  A plain attribute —
#: not a registered cache — because it is written only by configure() and
#: read with a single atomic load on the hot path.
_ACTIVE: Optional[FaultPlan] = None


def configure(spec: "FaultSpec | str | None") -> Optional[FaultPlan]:
    """Arm a fault plan (spec object or ``REPRO_FAULTS`` string), or disarm.

    Returns the armed plan (None when disarming).  Tests should disarm in a
    ``finally`` — an armed plan outliving its test would fault the suite.
    """
    global _ACTIVE
    if spec is None:
        _ACTIVE = None
        return None
    if isinstance(spec, str):
        spec = parse_spec(spec)
    plan = FaultPlan(spec)
    _ACTIVE = plan
    return plan


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[FaultPlan]:
    """Arm from ``REPRO_FAULTS`` if set (and non-empty); disarm otherwise."""
    value = (environ if environ is not None else os.environ).get(ENV_VAR)
    if value is None or not value.strip():
        return configure(None)
    try:
        return configure(value)
    except FaultSpecError as exc:
        # A typo'd spec must fail loudly: silently arming nothing would
        # report a green chaos run that injected zero faults.
        raise FaultSpecError(f"invalid {ENV_VAR}: {exc}") from None


def fault_point(name: str, cancel: Any = None) -> None:
    """Declare a named fault point; a no-op unless a plan is armed.

    ``cancel`` (anything with a ``cancelled`` attribute, e.g.
    :class:`repro.api.CancelToken`) lets ``hang`` faults stall cooperatively.
    """
    plan = _ACTIVE
    if plan is None:
        return
    plan.hit(name, cancel)


def faults_active() -> bool:
    return _ACTIVE is not None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def fault_stats() -> Dict[str, Any]:
    """Stats for ``/v1/stats``: ``{"active": False}`` or the plan's counters."""
    plan = _ACTIVE
    if plan is None:
        return {"active": False}
    stats = plan.stats()
    stats["active"] = True
    return stats


# Arm from the environment once at import, mirroring REPRO_SANITIZE: the
# service, the CLI, and pytest all see the same spec without plumbing.
configure_from_env()
