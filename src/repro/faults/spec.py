"""The ``REPRO_FAULTS`` specification: which points fail, when, and how.

A spec is a semicolon-separated list of segments.  The first kind of segment
sets the seed; every other segment arms one named fault point::

    REPRO_FAULTS="seed=42;cache.read:p=0.1;pool.job:nth=3:kind=hang:sleep=0.5"

Per-point options (colon-separated ``key=value`` pairs after the point name):

``p=<float>``
    Fire with this probability on every call, drawn from the point's own
    seeded RNG — the decision sequence is a pure function of
    ``(seed, point name, call number)``, so a chaos run replays exactly.
``nth=<n>[,<n>...]``
    Fire on exactly these call numbers (1-based).
``every=<n>``
    Fire on every ``n``-th call (call numbers ``n, 2n, 3n, ...``).
``kind=error|hang``
    ``error`` (default) raises :class:`repro.faults.InjectedFault`;
    ``hang`` stalls the call for ``sleep`` seconds (honouring a cooperative
    cancel token when the call site passes one) and then continues — the
    shape of a wedged thread rather than a crash.
``sleep=<float>``
    Stall duration for ``kind=hang`` (default 0.25 s).

Schedules combine: a point armed with both ``nth`` and ``p`` fires when
either rule says so.  A segment of just ``seed=<int>`` may appear anywhere;
the last one wins.  Whitespace around segments is ignored.  Parsing is
strict — a typo in a chaos spec must fail loudly, not silently arm nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["FaultRule", "FaultSpec", "FaultSpecError", "parse_spec"]

#: Fault behaviours a rule may select.
KIND_ERROR = "error"
KIND_HANG = "hang"
KINDS = (KIND_ERROR, KIND_HANG)


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULTS`` value (typo'd point option, bad number)."""


@dataclass(frozen=True)
class FaultRule:
    """When and how one named fault point fires."""

    point: str
    probability: float = 0.0
    nth: Tuple[int, ...] = ()
    every: int = 0
    kind: str = KIND_ERROR
    sleep: float = 0.25

    def __post_init__(self) -> None:
        if not self.point:
            raise FaultSpecError("fault rule needs a point name")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"{self.point}: probability must be in [0, 1], got {self.probability}"
            )
        if any(n < 1 for n in self.nth):
            raise FaultSpecError(f"{self.point}: nth call numbers are 1-based")
        if self.every < 0:
            raise FaultSpecError(f"{self.point}: every must be >= 1 (or omitted)")
        if self.kind not in KINDS:
            raise FaultSpecError(
                f"{self.point}: unknown kind {self.kind!r}; choose from {KINDS}"
            )
        if self.sleep < 0:
            raise FaultSpecError(f"{self.point}: sleep must be >= 0")

    def should_fire(self, call: int, draw: float) -> bool:
        """Decide for 1-based call number ``call`` given the RNG draw."""
        if call in self.nth:
            return True
        if self.every and call % self.every == 0:
            return True
        return self.probability > 0.0 and draw < self.probability


@dataclass(frozen=True)
class FaultSpec:
    """A parsed ``REPRO_FAULTS`` value: the seed plus one rule per point."""

    seed: int = 0
    rules: Dict[str, FaultRule] = field(default_factory=dict)

    def to_string(self) -> str:
        """Round-trip back to the environment-variable syntax."""
        segments = [f"seed={self.seed}"]
        for rule in self.rules.values():
            parts = [rule.point]
            if rule.probability:
                parts.append(f"p={rule.probability}")
            if rule.nth:
                parts.append("nth=" + ",".join(str(n) for n in rule.nth))
            if rule.every:
                parts.append(f"every={rule.every}")
            if rule.kind != KIND_ERROR:
                parts.append(f"kind={rule.kind}")
                parts.append(f"sleep={rule.sleep}")
            segments.append(":".join(parts))
        return ";".join(segments)


def _parse_float(point: str, key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise FaultSpecError(f"{point}: {key} must be a number, got {value!r}") from None


def _parse_rule(segment: str) -> FaultRule:
    head, *options = segment.split(":")
    point = head.strip()
    fields: dict = {"point": point}
    for option in options:
        key, sep, value = option.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not value:
            raise FaultSpecError(f"{point}: option {option!r} is not key=value")
        if key == "p":
            fields["probability"] = _parse_float(point, "p", value)
        elif key == "nth":
            try:
                fields["nth"] = tuple(sorted(int(n) for n in value.split(",")))
            except ValueError:
                raise FaultSpecError(
                    f"{point}: nth must be comma-separated integers, got {value!r}"
                ) from None
        elif key == "every":
            fields["every"] = int(_parse_float(point, "every", value))
        elif key == "kind":
            fields["kind"] = value
        elif key == "sleep":
            fields["sleep"] = _parse_float(point, "sleep", value)
        else:
            raise FaultSpecError(f"{point}: unknown option {key!r}")
    return FaultRule(**fields)


def parse_spec(text: str) -> FaultSpec:
    """Parse a ``REPRO_FAULTS`` value; raises :class:`FaultSpecError`.

    An empty (or all-whitespace) string parses to a spec with no rules —
    an *armed but silent* plan, useful for counting fault-point traversals
    without ever firing (the ``fault_overhead`` benchmark does this).
    """
    seed = 0
    rules: Dict[str, FaultRule] = {}
    for segment in text.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        if segment.startswith("seed="):
            try:
                seed = int(segment[len("seed="):])
            except ValueError:
                raise FaultSpecError(f"seed must be an integer: {segment!r}") from None
            continue
        rule = _parse_rule(segment)
        rules[rule.point] = rule
    return FaultSpec(seed=seed, rules=rules)
