"""Deterministic, seeded fault injection for the service layer.

``repro.faults`` is how the serving stack is exercised under failure before
failure finds it in production: named fault points embedded in the hot paths
of :mod:`repro.service` (``cache.read``, ``cache.write``, ``batch.persist``,
``batch.load``, ``batch.ingest``, ``pool.job``, ``client.request``,
``server.response``) fire on a seeded, replayable schedule described by the
``REPRO_FAULTS`` environment variable — and compile down to a global load
plus a ``None`` check when disabled.

See ``docs/operations.md`` for the spec grammar, the failure-mode table, and
how to run a chaos schedule locally.
"""

from repro.faults.injector import (
    ENV_VAR,
    FaultPlan,
    InjectedFault,
    active_plan,
    configure,
    configure_from_env,
    fault_point,
    fault_stats,
    faults_active,
)
from repro.faults.spec import FaultRule, FaultSpec, FaultSpecError, parse_spec

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "FaultSpec",
    "FaultSpecError",
    "InjectedFault",
    "active_plan",
    "configure",
    "configure_from_env",
    "fault_point",
    "fault_stats",
    "faults_active",
    "parse_spec",
]
