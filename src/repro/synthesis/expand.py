"""Expansion of open nodes in partial regexes (Figure 10 of the paper).

``expand`` takes a partial regex and one of its open nodes and returns the set
of partial regexes obtained by instantiating that node one level, following
the inference rules of Figure 10:

* rule 1/2 — constrained holes are either filled with one of their hint
  components, or (when the depth bound allows) with an operator one of whose
  arguments carries the constrained hole at depth ``d-1`` while the sibling
  arguments become *free* positions (``□^{d-1}(C ∪ {S..})``),
* rule 3 — operator sketches expand into the operator applied to open nodes
  for their argument sketches,
* rule 4 — ``Repeat``-family sketches expand into the operator with fresh
  symbolic integers (or explicit integer enumeration for the ablation
  variants).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import count
from typing import Callable, Iterable, List

from repro.dsl import ast as rast
from repro.sketch import ast as sast
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.partial import (
    FreeLabel,
    HoleLabel,
    PartialRegex,
    PLeaf,
    POp,
    POpen,
    SymInt,
    replace_node,
)

#: Operators without integer arguments, with their arities.
_F_OPERATORS: tuple[tuple[str, int], ...] = (
    ("StartsWith", 1),
    ("EndsWith", 1),
    ("Contains", 1),
    ("Not", 1),
    ("Optional", 1),
    ("KleeneStar", 1),
    ("Concat", 2),
    ("Or", 2),
    ("And", 2),
)

#: Operators with integer arguments, with the number of integer arguments.
_G_OPERATORS: tuple[tuple[str, int], ...] = (
    ("Repeat", 1),
    ("RepeatAtLeast", 1),
    ("RepeatRange", 2),
)


class SymIntFactory:
    """Generates fresh symbolic-integer names (``k1``, ``k2``, ...)."""

    def __init__(self) -> None:
        self._counter = count(1)

    def fresh(self) -> SymInt:
        return SymInt(f"k{next(self._counter)}")


def default_char_classes(literal_chars: str = "") -> list[rast.Regex]:
    """The leaf set ``C``: predefined classes plus example-derived literals.

    Single-character literals are restricted to characters appearing in the
    positive examples (plus any configured extras); this is the standard PBE
    move for keeping the constant space finite and matches how Regel's
    implementation seeds constants.
    """
    return list(_default_char_classes(literal_chars))


@lru_cache(maxsize=128)
def _default_char_classes(literal_chars: str) -> tuple[rast.Regex, ...]:
    # Cached per literal-character string: this runs for every free-position
    # expansion, which is one of the engine's hottest loops.
    leaves: list[rast.Regex] = [
        rast.NUM,
        rast.LET,
        rast.CAP,
        rast.LOW,
        rast.ANY,
        rast.ALPHANUM,
        rast.HEX,
        rast.SPEC,
    ]
    seen = set()
    for char in literal_chars:
        if char.isalnum() or char in seen:
            # Alphanumeric literals are almost never the intent; the predefined
            # classes cover them.  Punctuation literals (.,-,/ etc.) matter.
            continue
        seen.add(char)
        leaves.append(rast.literal(char))
    return tuple(leaves)


def initial_partial(sketch: sast.Sketch) -> POpen:
    """The root partial regex ``P0`` for a given h-sketch (line 2 of Figure 9)."""
    return POpen(sketch)


def expand(
    partial: PartialRegex,
    node: POpen,
    config: SynthesisConfig,
    symints: SymIntFactory,
    literal_chars: str = "",
) -> List[PartialRegex]:
    """All one-step expansions of ``node`` inside ``partial``."""
    subtrees = _expansions_of_label(node.label, config, symints, literal_chars)
    return [replace_node(partial, node, subtree) for subtree in subtrees]


# ---------------------------------------------------------------------------
# Label-level expansion
# ---------------------------------------------------------------------------

def _expansions_of_label(
    label,
    config: SynthesisConfig,
    symints: SymIntFactory,
    literal_chars: str,
) -> List[PartialRegex]:
    if isinstance(label, sast.ConcreteRegexSketch):
        return [PLeaf(label.regex)]
    if isinstance(label, sast.OpSketch):
        return [POp(label.op, tuple(POpen(arg) for arg in label.args))]
    if isinstance(label, sast.IntOpSketch):
        return _int_op_expansions(label.op, POpen(label.arg), label.ints, config, symints)
    if isinstance(label, sast.Hole):
        label = HoleLabel(label.components, config.hole_depth)
    if isinstance(label, HoleLabel) and not label.components:
        # An unconstrained hole (the Regel-PBE starting point) has no hint to
        # place, so it behaves exactly like a free position.
        label = FreeLabel((), label.depth)
    if isinstance(label, HoleLabel):
        return _hole_expansions(label, config, symints)
    if isinstance(label, FreeLabel):
        return _free_expansions(label, config, symints, literal_chars)
    raise TypeError(f"unknown open-node label: {label!r}")


def _int_op_expansions(
    op: str,
    child: PartialRegex,
    ints: Iterable[int | None],
    config: SynthesisConfig,
    symints: SymIntFactory,
) -> List[PartialRegex]:
    """Expansions of a Repeat-family operator (rule 4 / ablation enumeration)."""
    ints = tuple(ints)
    if config.use_symbolic_ints:
        resolved = tuple(value if value is not None else symints.fresh() for value in ints)
        return [POp(op, (child,), resolved)]
    # Explicit enumeration of the unknown integer arguments.
    candidates: List[tuple[int, ...]] = [()]
    for position, value in enumerate(ints):
        new_candidates: List[tuple[int, ...]] = []
        for prefix in candidates:
            if value is not None:
                new_candidates.append(prefix + (value,))
                continue
            for concrete in range(1, config.max_enum_int + 1):
                new_candidates.append(prefix + (concrete,))
        candidates = new_candidates
    results = []
    for values in candidates:
        if op == "RepeatRange" and values[0] > values[1]:
            continue
        results.append(POp(op, (child,), values))
    return results


def _hole_expansions(
    label: HoleLabel, config: SynthesisConfig, symints: SymIntFactory
) -> List[PartialRegex]:
    """Rules 1 and 2 of Figure 10."""
    results: List[PartialRegex] = []
    # Π1: fill the hole with one of the hint components.
    for component in label.components:
        results.append(POpen(component))
    if label.depth <= 1:
        return results

    child_hole = POpen(HoleLabel(label.components, label.depth - 1))
    free = lambda: POpen(FreeLabel(label.components, label.depth - 1))  # noqa: E731

    # Π2: an operator without integer arguments; one argument keeps the
    # constrained hole, the others become free positions.
    for op, arity in _F_OPERATORS:
        for position in range(arity):
            children = tuple(
                child_hole if index == position else free() for index in range(arity)
            )
            results.append(POp(op, children))

    # Π3: a Repeat-family operator applied to the constrained hole.
    for op, _ in _G_OPERATORS:
        results.extend(
            _int_op_expansions(op, POpen(HoleLabel(label.components, label.depth - 1)),
                               (None,) * dict(_G_OPERATORS)[op], config, symints)
        )
    return results


def _free_expansions(
    label: FreeLabel,
    config: SynthesisConfig,
    symints: SymIntFactory,
    literal_chars: str,
) -> List[PartialRegex]:
    """Expansions of a free (sibling) position: ``□^d(C ∪ components)``."""
    results: List[PartialRegex] = []
    for leaf in default_char_classes(literal_chars + config.extra_literals):
        results.append(PLeaf(leaf))
    for component in label.components:
        results.append(POpen(component))
    if label.depth <= 1:
        return results
    free_child = lambda: POpen(FreeLabel(label.components, label.depth - 1))  # noqa: E731
    for op, arity in _F_OPERATORS:
        results.append(POp(op, tuple(free_child() for _ in range(arity))))
    for op, num_ints in _G_OPERATORS:
        results.extend(
            _int_op_expansions(op, free_child(), (None,) * num_ints, config, symints)
        )
    return results
