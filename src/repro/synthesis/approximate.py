"""Over-/under-approximation of partial regexes and sketches (Figures 11–12).

Given a partial regex ``P`` the engine computes a pair of concrete regexes
``(o, u)`` such that every completion of ``P`` is contained in ``o`` and
contains ``u``.  A partial regex can then be pruned when some positive example
falls outside ``o`` or some negative example falls inside ``u`` — without ever
enumerating its completions (Theorem 4.4).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.caches import CACHE_LOCK, GuardedDict, cache_insert, register_cache
from repro.dsl import ast as rast
from repro.sketch import ast as sast
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.examples import Examples
from repro.synthesis.partial import (
    FreeLabel,
    HoleLabel,
    PartialRegex,
    PLeaf,
    POp,
    POpen,
    SymInt,
)

#: ``⊤`` — the regex accepting every string.
TOP = rast.KleeneStar(rast.ANY)
#: ``⊥`` — the regex accepting no string.
BOTTOM = rast.EmptySet()

_UNARY = dict(sast.UNARY_SKETCH_OPS)
_BINARY = dict(sast.BINARY_SKETCH_OPS)
_INT_OPS = {name: ctor for name, (ctor, _) in sast.INT_SKETCH_OPS.items()}


Approximation = Tuple[rast.Regex, rast.Regex]


# ---------------------------------------------------------------------------
# Sketch approximation (Figure 12)
# ---------------------------------------------------------------------------

def approximate_sketch(sketch: sast.Sketch, hole_depth: int = 3) -> Approximation:
    """Over-/under-approximation ``(o, u)`` of an h-sketch."""
    if isinstance(sketch, sast.ConcreteRegexSketch):
        return sketch.regex, sketch.regex                              # rule 7
    if isinstance(sketch, sast.OpSketch):
        approximations = [approximate_sketch(arg, hole_depth) for arg in sketch.args]
        if sketch.op == "Not":                                         # rule 5
            over, under = approximations[0]
            return rast.Not(under), rast.Not(over)
        ctor = _UNARY.get(sketch.op) or _BINARY[sketch.op]              # rule 4
        overs = [o for o, _ in approximations]
        unders = [u for _, u in approximations]
        return ctor(*overs), ctor(*unders)
    if isinstance(sketch, sast.IntOpSketch):
        over, under = approximate_sketch(sketch.arg, hole_depth)
        if all(value is not None for value in sketch.ints):
            ctor = _INT_OPS[sketch.op]
            return ctor(over, *sketch.ints), ctor(under, *sketch.ints)
        return rast.RepeatAtLeast(over, 1), BOTTOM                     # rule 6
    if isinstance(sketch, sast.Hole):
        return _approximate_hole(sketch.components, hole_depth)
    raise TypeError(f"unknown sketch node: {sketch!r}")


def _approximate_hole(components: tuple[sast.Sketch, ...], depth: int) -> Approximation:
    """Rules 1–3 of Figure 12 for constrained holes."""
    if not components:
        return TOP, BOTTOM
    if depth > 1:                                                       # rule 3
        return TOP, BOTTOM
    over, under = approximate_sketch(components[0], depth)              # rules 1-2
    for component in components[1:]:
        next_over, next_under = approximate_sketch(component, depth)
        over = rast.Or(over, next_over)
        under = rast.And(under, next_under)
    return over, under


# ---------------------------------------------------------------------------
# Partial-regex approximation (Figure 11)
# ---------------------------------------------------------------------------

class ApproxCacheStats:
    """Global hit/miss counters for the per-subtree approximation cache."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> Tuple[int, int]:
        return self.hits, self.misses


APPROX_CACHE_STATS = ApproxCacheStats()

#: ``(interned partial, examples, hole depth) -> pruned?`` — the pruning
#: check is a pair of batched membership queries against compiled automata,
#: so its verdict is itself a pure function of the interned partial and the
#: example strings and joins the same process-global cache family.  Only
#: the compiled (``dfa``) evaluator consults it: the match-set and
#: recursive evaluators are differential/benchmark oracles and must keep
#: doing the real work.  Strong keys deliberately keep the partial nodes —
#: and every memo stamped on them (approximations, sizes, analysis facts) —
#: alive across engine runs, which is what makes warm service workers
#: re-solve a known problem shape without re-deriving the search frontier.
_INFEASIBLE_CACHE: Dict[tuple, bool] = register_cache(
    "synthesis.infeasible_verdicts", GuardedDict()
)

_MAX_INFEASIBLE_VERDICTS = 1 << 18


def approximate_partial(partial: PartialRegex, hole_depth: int = 3) -> Approximation:
    """Over-/under-approximation ``(o, u)`` of a partial regex (cached).

    The ``(over, under)`` pair is memoised *on* the interned node (the
    ``_hash`` precedent from :mod:`repro.dsl.intern`): an attribute read is an
    order of magnitude cheaper than a weak-dict lookup on this path, and the
    entry's lifetime is identical to a weak-keyed one — it dies with the
    node.  Because expansion rebuilds only the spine from the expanded node
    to the root (see :func:`repro.synthesis.partial.replace_node`), every
    off-spine subtree of a successor is the *same object* as in its parent
    and hits this memo — the approximation is incremental in the depth of
    the expanded node.  Thread safety: the function is pure and each memo
    mutation is a single atomic bytecode, so a racing thread can at worst
    overwrite an equal entry (benign lost update, recomputed on next call).
    """
    per_depth = getattr(partial, "_approx", None)
    if per_depth is not None:
        cached = per_depth.get(hole_depth)
        if cached is not None:
            APPROX_CACHE_STATS.hits += 1
            return cached
    APPROX_CACHE_STATS.misses += 1
    result = _approximate_partial_uncached(partial, hole_depth)
    if per_depth is None:
        per_depth = {}
        object.__setattr__(partial, "_approx", per_depth)
    per_depth[hole_depth] = result
    return result


def _approximate_partial_uncached(
    partial: PartialRegex, hole_depth: int
) -> Approximation:
    if isinstance(partial, PLeaf):
        return partial.regex, partial.regex
    if isinstance(partial, POpen):
        label = partial.label
        if isinstance(label, HoleLabel):
            return _approximate_hole(label.components, label.depth)
        if isinstance(label, FreeLabel):
            return TOP, BOTTOM
        return approximate_sketch(label, hole_depth)                    # rule 1
    if isinstance(partial, POp):
        approximations = [approximate_partial(child, hole_depth) for child in partial.children]
        if partial.op == "Not":                                         # rule 3
            over, under = approximations[0]
            return rast.Not(under), rast.Not(over)
        if partial.op in _UNARY or partial.op in _BINARY:               # rule 2
            ctor = _UNARY.get(partial.op) or _BINARY[partial.op]
            overs = [o for o, _ in approximations]
            unders = [u for _, u in approximations]
            return ctor(*overs), ctor(*unders)
        # Repeat family (rules 4-5).
        over, under = approximations[0]
        ctor = _INT_OPS[partial.op]
        if any(isinstance(value, SymInt) for value in partial.ints):    # rule 5
            return rast.RepeatAtLeast(over, 1), BOTTOM
        return ctor(over, *partial.ints), ctor(under, *partial.ints)    # rule 4
    raise TypeError(f"unknown partial regex node: {partial!r}")


def infeasible(
    partial: PartialRegex,
    examples: Examples,
    config: SynthesisConfig,
) -> bool:
    """Approximation-based pruning check (``Infeasible`` in Figure 9, line 13).

    Returns True when the partial regex provably cannot be completed into a
    regex consistent with the examples.  When approximation pruning is
    disabled (the Regel-Enum ablation) this always returns False.
    """
    if not config.use_approximation:
        return False
    use_cache = examples.evaluator == "dfa"
    if use_cache:
        key = (partial, examples, config.hole_depth)
        cached = _INFEASIBLE_CACHE.get(key)
        if cached is not None:
            APPROX_CACHE_STATS.hits += 1
            return cached
    over, under = approximate_partial(partial, config.hole_depth)
    verdict = not examples.accepts_all_positive(over) or not examples.rejects_all_negative(
        under
    )
    if use_cache:
        if len(_INFEASIBLE_CACHE) >= _MAX_INFEASIBLE_VERDICTS:
            with CACHE_LOCK:
                if len(_INFEASIBLE_CACHE) >= _MAX_INFEASIBLE_VERDICTS:
                    _INFEASIBLE_CACHE.clear()
        verdict = cache_insert(_INFEASIBLE_CACHE, key, verdict)
    return verdict
