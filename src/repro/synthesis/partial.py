"""Partial regexes — the search states of the PBE engine (Definition 4.1).

A partial regex is a tree whose nodes are labelled with

* a DSL operator applied to child partial regexes (:class:`POp`), whose
  integer arguments may be concrete integers or symbolic integers
  (:class:`SymInt`),
* a concrete regex (:class:`PLeaf`), or
* an *open node* (:class:`POpen`) labelled with an h-sketch or with one of the
  two internal hole labels produced by expansion (:class:`HoleLabel` for
  constrained holes, :class:`FreeLabel` for the ``□^{d-1}(C ∪ {S..})``
  sibling positions of Figure 10, rule 2).

Following the paper, a partial regex is *concrete* when every label is a DSL
construct with concrete integers, and *symbolic* when it has no open nodes but
still contains symbolic integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.dsl import ast as rast
from repro.sketch import ast as sast


@dataclass(frozen=True)
class SymInt:
    """A symbolic integer ``κ`` standing for an unknown positive constant."""

    name: str


@dataclass(frozen=True)
class HoleLabel:
    """A constrained hole ``□^depth{components}`` awaiting expansion."""

    components: tuple[sast.Sketch, ...]
    depth: int


@dataclass(frozen=True)
class FreeLabel:
    """An unconstrained sibling position: ``□^depth(C ∪ components)``."""

    components: tuple[sast.Sketch, ...]
    depth: int


Label = Union[sast.Sketch, HoleLabel, FreeLabel]


class PartialRegex:
    """Base class of partial-regex nodes."""

    __slots__ = ()

    def __repr__(self) -> str:
        return to_debug_string(self)


@dataclass(frozen=True, repr=False)
class PLeaf(PartialRegex):
    """A concrete regex leaf (may itself be a composite regex)."""

    regex: rast.Regex


@dataclass(frozen=True, repr=False)
class POpen(PartialRegex):
    """An open node labelled with an h-sketch or hole label."""

    label: Label


@dataclass(frozen=True, repr=False)
class POp(PartialRegex):
    """A DSL operator applied to child partial regexes."""

    op: str
    children: tuple[PartialRegex, ...]
    ints: tuple[Union[int, SymInt], ...] = ()

    def __init__(self, op, children, ints=()):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "ints", tuple(ints))


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

def walk(partial: PartialRegex) -> Iterator[PartialRegex]:
    """Pre-order traversal of a partial regex."""
    yield partial
    if isinstance(partial, POp):
        for child in partial.children:
            yield from walk(child)


def open_nodes(partial: PartialRegex) -> list[POpen]:
    """All open nodes in left-to-right order."""
    return [node for node in walk(partial) if isinstance(node, POpen)]


def symints_of(partial: PartialRegex) -> list[SymInt]:
    """All symbolic integers in left-to-right order (without duplicates)."""
    seen: dict[str, SymInt] = {}
    for node in walk(partial):
        if isinstance(node, POp):
            for value in node.ints:
                if isinstance(value, SymInt) and value.name not in seen:
                    seen[value.name] = value
    return list(seen.values())


def is_concrete(partial: PartialRegex) -> bool:
    """No open nodes and no symbolic integers."""
    return not open_nodes(partial) and not symints_of(partial)


def is_symbolic(partial: PartialRegex) -> bool:
    """No open nodes, but at least one symbolic integer."""
    return not open_nodes(partial) and bool(symints_of(partial))


def partial_size(partial: PartialRegex) -> int:
    """Number of nodes (used by the search priority)."""
    from repro.dsl.simplify import size as regex_size

    if isinstance(partial, PLeaf):
        return regex_size(partial.regex)
    if isinstance(partial, POpen):
        return 1
    if isinstance(partial, POp):
        return 1 + sum(partial_size(child) for child in partial.children)
    raise TypeError(f"unknown partial regex node: {partial!r}")


# ---------------------------------------------------------------------------
# Conversions
# ---------------------------------------------------------------------------

_UNARY = dict(sast.UNARY_SKETCH_OPS)
_BINARY = dict(sast.BINARY_SKETCH_OPS)
_INT_OPS = {name: ctor for name, (ctor, _) in sast.INT_SKETCH_OPS.items()}


def to_regex(partial: PartialRegex) -> rast.Regex:
    """Convert a concrete partial regex into a DSL regex.

    Raises ``ValueError`` if the partial regex still has open nodes or
    symbolic integers.
    """
    if isinstance(partial, PLeaf):
        return partial.regex
    if isinstance(partial, POpen):
        raise ValueError("partial regex still has open nodes")
    if isinstance(partial, POp):
        children = [to_regex(child) for child in partial.children]
        ints = []
        for value in partial.ints:
            if isinstance(value, SymInt):
                raise ValueError("partial regex still has symbolic integers")
            ints.append(value)
        ctor = _UNARY.get(partial.op) or _BINARY.get(partial.op) or _INT_OPS.get(partial.op)
        if ctor is None:
            raise ValueError(f"unknown operator {partial.op!r}")
        return ctor(*children, *ints)
    raise TypeError(f"unknown partial regex node: {partial!r}")


def substitute_symint(partial: PartialRegex, name: str, value: int) -> PartialRegex:
    """Replace one symbolic integer with a concrete value everywhere."""
    if isinstance(partial, (PLeaf, POpen)):
        return partial
    if isinstance(partial, POp):
        new_children = tuple(substitute_symint(child, name, value) for child in partial.children)
        new_ints = tuple(
            value if isinstance(i, SymInt) and i.name == name else i for i in partial.ints
        )
        if new_children == partial.children and new_ints == partial.ints:
            return partial
        return POp(partial.op, new_children, new_ints)
    raise TypeError(f"unknown partial regex node: {partial!r}")


def replace_node(partial: PartialRegex, target: POpen, replacement: PartialRegex) -> PartialRegex:
    """Replace one specific open node (by identity) with a new subtree."""
    if partial is target:
        return replacement
    if isinstance(partial, POp):
        changed = False
        new_children = []
        for child in partial.children:
            new_child = replace_node(child, target, replacement)
            changed = changed or new_child is not child
            new_children.append(new_child)
        if changed:
            return POp(partial.op, tuple(new_children), partial.ints)
    return partial


def to_debug_string(partial: PartialRegex) -> str:
    """Readable rendering of a partial regex (used in logs and __repr__)."""
    from repro.dsl.printer import to_dsl_string
    from repro.sketch.printer import sketch_to_string

    if isinstance(partial, PLeaf):
        return to_dsl_string(partial.regex)
    if isinstance(partial, POpen):
        label = partial.label
        if isinstance(label, HoleLabel):
            inner = ",".join(sketch_to_string(c) for c in label.components)
            return f"Hole[{label.depth}]{{{inner}}}"
        if isinstance(label, FreeLabel):
            return f"Free[{label.depth}]"
        return f"Open[{sketch_to_string(label)}]"
    if isinstance(partial, POp):
        parts = [to_debug_string(child) for child in partial.children]
        parts.extend(v.name if isinstance(v, SymInt) else str(v) for v in partial.ints)
        return f"{partial.op}({','.join(parts)})"
    raise TypeError(f"unknown partial regex node: {partial!r}")
