"""Partial regexes — the search states of the PBE engine (Definition 4.1).

A partial regex is a tree whose nodes are labelled with

* a DSL operator applied to child partial regexes (:class:`POp`), whose
  integer arguments may be concrete integers or symbolic integers
  (:class:`SymInt`),
* a concrete regex (:class:`PLeaf`), or
* an *open node* (:class:`POpen`) labelled with an h-sketch or with one of the
  two internal hole labels produced by expansion (:class:`HoleLabel` for
  constrained holes, :class:`FreeLabel` for the ``□^{d-1}(C ∪ {S..})``
  sibling positions of Figure 10, rule 2).

Following the paper, a partial regex is *concrete* when every label is a DSL
construct with concrete integers, and *symbolic* when it has no open nodes but
still contains symbolic integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.dsl import ast as rast
from repro.dsl.intern import InternedMeta, freeze_interned
from repro.dsl.simplify import size as _regex_size
from repro.sketch import ast as sast


@dataclass(frozen=True)
class SymInt:
    """A symbolic integer ``κ`` standing for an unknown positive constant."""

    name: str


@dataclass(frozen=True)
class HoleLabel:
    """A constrained hole ``□^depth{components}`` awaiting expansion."""

    components: tuple[sast.Sketch, ...]
    depth: int


@dataclass(frozen=True)
class FreeLabel:
    """An unconstrained sibling position: ``□^depth(C ∪ components)``."""

    components: tuple[sast.Sketch, ...]
    depth: int


Label = Union[sast.Sketch, HoleLabel, FreeLabel]


class PartialRegex(metaclass=InternedMeta):
    """Base class of partial-regex nodes.

    Like DSL regexes, partial regexes are hash-consed: structurally equal
    partials are the same object, so worklist dedup is a set-of-objects test
    and per-subtree caches (sizes, approximations) are shared across the
    whole search.  One consequence: the *same* open node object can occur at
    several positions of one partial regex (e.g. the two free sibling
    positions of a ``Concat`` expansion), which is why replacement below is
    positional (leftmost occurrence) rather than replace-all-by-identity.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return to_debug_string(self)


@dataclass(frozen=True, repr=False)
class PLeaf(PartialRegex):
    """A concrete regex leaf (may itself be a composite regex)."""

    regex: rast.Regex


@dataclass(frozen=True, repr=False)
class POpen(PartialRegex):
    """An open node labelled with an h-sketch or hole label."""

    label: Label


@dataclass(frozen=True, repr=False)
class POp(PartialRegex):
    """A DSL operator applied to child partial regexes."""

    op: str
    children: tuple[PartialRegex, ...]
    ints: tuple[Union[int, SymInt], ...] = ()

    def __init__(self, op, children, ints=()):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "ints", tuple(ints))


freeze_interned(PLeaf, POpen, POp)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

def walk(partial: PartialRegex) -> Iterator[PartialRegex]:
    """Pre-order traversal of a partial regex."""
    yield partial
    if isinstance(partial, POp):
        for child in partial.children:
            yield from walk(child)


def open_nodes(partial: PartialRegex) -> tuple[POpen, ...]:
    """All open nodes in left-to-right order (memoised on the node)."""
    cached = getattr(partial, "_open", None)
    if cached is None:
        cached = tuple(node for node in walk(partial) if isinstance(node, POpen))
        object.__setattr__(partial, "_open", cached)
    return cached


def symints_of(partial: PartialRegex) -> tuple[SymInt, ...]:
    """All symbolic integers in left-to-right order (memoised, no duplicates)."""
    cached = getattr(partial, "_symints", None)
    if cached is None:
        seen: dict[str, SymInt] = {}
        for node in walk(partial):
            if isinstance(node, POp):
                for value in node.ints:
                    if isinstance(value, SymInt) and value.name not in seen:
                        seen[value.name] = value
        cached = tuple(seen.values())
        object.__setattr__(partial, "_symints", cached)
    return cached


def is_concrete(partial: PartialRegex) -> bool:
    """No open nodes and no symbolic integers."""
    return not open_nodes(partial) and not symints_of(partial)


def is_symbolic(partial: PartialRegex) -> bool:
    """No open nodes, but at least one symbolic integer."""
    return not open_nodes(partial) and bool(symints_of(partial))


def partial_size(partial: PartialRegex) -> int:
    """Number of nodes (used by the search priority).

    Memoised on the interned node itself (like ``_hash``): the write is a
    single atomic attribute store of a value every racing thread computes
    identically, and the entry dies with the node.
    """
    cached = getattr(partial, "_size", None)
    if cached is not None:
        return cached
    if isinstance(partial, PLeaf):
        result = _regex_size(partial.regex)
    elif isinstance(partial, POpen):
        result = 1
    elif isinstance(partial, POp):
        result = 1 + sum(partial_size(child) for child in partial.children)
    else:
        raise TypeError(f"unknown partial regex node: {partial!r}")
    object.__setattr__(partial, "_size", result)
    return result


# ---------------------------------------------------------------------------
# Conversions
# ---------------------------------------------------------------------------

_UNARY = dict(sast.UNARY_SKETCH_OPS)
_BINARY = dict(sast.BINARY_SKETCH_OPS)
_INT_OPS = {name: ctor for name, (ctor, _) in sast.INT_SKETCH_OPS.items()}


def to_regex(partial: PartialRegex) -> rast.Regex:
    """Convert a concrete partial regex into a DSL regex.

    Raises ``ValueError`` if the partial regex still has open nodes or
    symbolic integers.
    """
    if isinstance(partial, PLeaf):
        return partial.regex
    if isinstance(partial, POpen):
        raise ValueError("partial regex still has open nodes")
    if isinstance(partial, POp):
        children = [to_regex(child) for child in partial.children]
        ints = []
        for value in partial.ints:
            if isinstance(value, SymInt):
                raise ValueError("partial regex still has symbolic integers")
            ints.append(value)
        ctor = _UNARY.get(partial.op) or _BINARY.get(partial.op) or _INT_OPS.get(partial.op)
        if ctor is None:
            raise ValueError(f"unknown operator {partial.op!r}")
        return ctor(*children, *ints)
    raise TypeError(f"unknown partial regex node: {partial!r}")


def substitute_symint(partial: PartialRegex, name: str, value: int) -> PartialRegex:
    """Replace one symbolic integer with a concrete value everywhere."""
    if isinstance(partial, (PLeaf, POpen)):
        return partial
    if isinstance(partial, POp):
        new_children = tuple(substitute_symint(child, name, value) for child in partial.children)
        new_ints = tuple(
            value if isinstance(i, SymInt) and i.name == name else i for i in partial.ints
        )
        if new_children == partial.children and new_ints == partial.ints:
            return partial
        return POp(partial.op, new_children, new_ints)
    raise TypeError(f"unknown partial regex node: {partial!r}")


def replace_node(partial: PartialRegex, target: POpen, replacement: PartialRegex) -> PartialRegex:
    """Replace the leftmost (pre-order first) occurrence of ``target``.

    With hash-consing, structurally equal open nodes are the same object and
    may occur at several positions; replacing exactly one position is what
    expansion requires (the engine always expands the leftmost open node).
    Only the spine from the replaced position to the root is rebuilt — all
    sibling subtrees are shared with the input, which is what makes the
    incremental approximation cache effective.
    """
    replaced, result = _replace_first(partial, target, replacement)
    return result


def _replace_first(
    partial: PartialRegex, target: POpen, replacement: PartialRegex
) -> tuple[bool, PartialRegex]:
    if partial is target:
        return True, replacement
    if isinstance(partial, POp):
        for index, child in enumerate(partial.children):
            replaced, new_child = _replace_first(child, target, replacement)
            if replaced:
                children = (
                    partial.children[:index]
                    + (new_child,)
                    + partial.children[index + 1:]
                )
                return True, POp(partial.op, children, partial.ints)
    return False, partial


def to_debug_string(partial: PartialRegex) -> str:
    """Readable rendering of a partial regex (used in logs and __repr__)."""
    from repro.dsl.printer import to_dsl_string
    from repro.sketch.printer import sketch_to_string

    if isinstance(partial, PLeaf):
        return to_dsl_string(partial.regex)
    if isinstance(partial, POpen):
        label = partial.label
        if isinstance(label, HoleLabel):
            inner = ",".join(sketch_to_string(c) for c in label.components)
            return f"Hole[{label.depth}]{{{inner}}}"
        if isinstance(label, FreeLabel):
            return f"Free[{label.depth}]"
        return f"Open[{sketch_to_string(label)}]"
    if isinstance(partial, POp):
        parts = [to_debug_string(child) for child in partial.children]
        parts.extend(v.name if isinstance(v, SymInt) else str(v) for v in partial.ints)
        return f"{partial.op}({','.join(parts)})"
    raise TypeError(f"unknown partial regex node: {partial!r}")
