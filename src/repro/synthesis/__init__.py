"""Sketch-guided programming-by-example engine for regexes (Section 4).

The engine performs top-down enumerative search over *partial regexes*
(Figure 9), expanding open nodes according to their h-sketch labels
(Figure 10), pruning infeasible candidates with sketch-guided over- and
under-approximations (Figures 11–12), and solving for the integer arguments
of ``Repeat``-family operators symbolically via length constraints
(Figures 13–14).
"""

from repro.synthesis.config import SynthesisConfig, EngineVariant
from repro.synthesis.examples import Examples
from repro.synthesis.partial import (
    PartialRegex,
    PLeaf,
    POp,
    POpen,
    SymInt,
    HoleLabel,
    FreeLabel,
    is_concrete,
    is_symbolic,
    to_regex,
    partial_size,
    substitute_symint,
    open_nodes,
    symints_of,
)
from repro.synthesis.expand import expand, initial_partial
from repro.synthesis.approximate import (
    APPROX_CACHE_STATS,
    approximate_partial,
    approximate_sketch,
    infeasible,
)
from repro.synthesis.encode import encode_partial, constraint_for_examples
from repro.synthesis.infer_constants import infer_constants
from repro.synthesis.engine import Synthesizer, SynthesisResult, SynthesisRun, synthesize

__all__ = [
    "SynthesisConfig",
    "EngineVariant",
    "Examples",
    "PartialRegex",
    "PLeaf",
    "POp",
    "POpen",
    "SymInt",
    "HoleLabel",
    "FreeLabel",
    "is_concrete",
    "is_symbolic",
    "to_regex",
    "partial_size",
    "substitute_symint",
    "open_nodes",
    "symints_of",
    "expand",
    "initial_partial",
    "APPROX_CACHE_STATS",
    "approximate_partial",
    "approximate_sketch",
    "infeasible",
    "encode_partial",
    "constraint_for_examples",
    "infer_constants",
    "Synthesizer",
    "SynthesisResult",
    "SynthesisRun",
    "synthesize",
]
