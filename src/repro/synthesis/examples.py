"""Positive/negative example sets and cached membership checking."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple, Union

from repro.dsl import ast
from repro.dsl.semantics import Matcher, RecursiveMatcher

#: Evaluator registry for :class:`Examples`; ``matchset`` is the production
#: default, ``recursive`` keeps the original boolean recursion available as a
#: reference baseline (used by the benchmark driver and differential tests).
EVALUATORS = {
    "matchset": Matcher,
    "recursive": RecursiveMatcher,
}


class Examples:
    """A set of positive and negative string examples.

    Membership checks reuse one matcher per example string, so evaluating
    thousands of candidate regexes against the same examples shares the
    memoised per-node match sets.  ``evaluator`` selects the evaluation
    strategy (see :data:`EVALUATORS`); equality and hashing deliberately
    ignore it — it changes performance, not semantics.
    """

    def __init__(
        self,
        positive: Iterable[str],
        negative: Iterable[str],
        evaluator: str = "matchset",
    ):
        self.positive: tuple[str, ...] = tuple(positive)
        self.negative: tuple[str, ...] = tuple(negative)
        if evaluator not in EVALUATORS:
            raise ValueError(
                f"unknown evaluator {evaluator!r}; expected one of {sorted(EVALUATORS)}"
            )
        self.evaluator = evaluator
        self._matchers: Dict[str, Union[Matcher, RecursiveMatcher]] = {}
        self._pos_matchers: tuple = ()
        self._neg_matchers: tuple = ()

    def __repr__(self) -> str:
        return f"Examples(positive={list(self.positive)!r}, negative={list(self.negative)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Examples):
            return NotImplemented
        return self.positive == other.positive and self.negative == other.negative

    def __hash__(self) -> int:
        return hash((self.positive, self.negative))

    def matcher(self, text: str) -> Union[Matcher, RecursiveMatcher]:
        matcher = self._matchers.get(text)
        if matcher is None:
            matcher = EVALUATORS[self.evaluator](text)
            self._matchers[text] = matcher
        return matcher

    def matches(self, regex: ast.Regex, text: str) -> bool:
        """Membership of one example string (cached)."""
        return self.matcher(text).matches(regex)

    def positive_matchers(self) -> tuple:
        """One matcher per positive example (built lazily, then reused)."""
        matchers = self._pos_matchers
        if len(matchers) != len(self.positive):
            matchers = self._pos_matchers = tuple(
                self.matcher(s) for s in self.positive
            )
        return matchers

    def negative_matchers(self) -> tuple:
        """One matcher per negative example (built lazily, then reused)."""
        matchers = self._neg_matchers
        if len(matchers) != len(self.negative):
            matchers = self._neg_matchers = tuple(
                self.matcher(s) for s in self.negative
            )
        return matchers

    def consistent(self, regex: ast.Regex) -> bool:
        """True iff the regex accepts every positive and rejects every negative example."""
        return all(
            matcher.matches(regex) for matcher in self.positive_matchers()
        ) and not any(matcher.matches(regex) for matcher in self.negative_matchers())

    def accepts_all_positive(self, regex: ast.Regex) -> bool:
        return all(matcher.matches(regex) for matcher in self.positive_matchers())

    def rejects_all_negative(self, regex: ast.Regex) -> bool:
        return not any(matcher.matches(regex) for matcher in self.negative_matchers())

    def eval_cache_stats(self) -> Tuple[int, int]:
        """Aggregate ``(hits, misses)`` of the per-node evaluation caches.

        The recursive evaluator does not track per-node statistics; its
        matchers simply contribute zero.
        """
        hits = 0
        misses = 0
        for matcher in self._matchers.values():
            hits += getattr(matcher, "cache_hits", 0)
            misses += getattr(matcher, "cache_misses", 0)
        return hits, misses

    def extended(
        self, extra_positive: Sequence[str] = (), extra_negative: Sequence[str] = ()
    ) -> "Examples":
        """A new example set with additional examples (iterative protocol of Sec. 8.1)."""
        return Examples(
            tuple(dict.fromkeys([*self.positive, *extra_positive])),
            tuple(dict.fromkeys([*self.negative, *extra_negative])),
            evaluator=self.evaluator,
        )

    def literal_characters(self) -> str:
        """Characters occurring in the positive examples, used as literal leaf candidates."""
        seen: dict[str, None] = {}
        for text in self.positive:
            for char in text:
                seen.setdefault(char, None)
        return "".join(seen)

    def max_positive_length(self) -> int:
        return max((len(s) for s in self.positive), default=0)

    def __len__(self) -> int:
        return len(self.positive) + len(self.negative)
