"""Positive/negative example sets and cached membership checking."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.automata.membership import MEMBERSHIP_CACHE_STATS, membership_automaton
from repro.caches import CACHE_LOCK, GuardedDict, cache_insert, register_cache
from repro.dsl import ast
from repro.dsl.charclass import PRINTABLE_ALPHABET
from repro.dsl.semantics import DfaMatcher, Matcher, RecursiveMatcher

_PRINTABLE = frozenset(PRINTABLE_ALPHABET)

#: ``(interned regex, subject tuple) -> acceptance bitmask`` — the batched
#: membership verdicts of the compiled evaluator.  One automaton pass over
#: all of a problem's subjects produces one integer; warm engine runs (and
#: warm service workers, since the cache is process-global) answer the
#: whole accepts-all-positives / rejects-all-negatives question with a
#: single dict hit.  Strong keys are deliberate: they keep the interned
#: regex alive, and with it every artifact and memo stamped on it.
_MEMBERSHIP_MASKS: Dict[tuple, int] = register_cache(
    "synthesis.membership_masks", GuardedDict()
)

_MAX_MEMBERSHIP_MASKS = 1 << 18

#: Evaluator registry for :class:`Examples`; ``dfa`` is the production
#: default (compiled membership over process-global automata, falling back
#: to match sets where the backend cannot help), ``matchset`` the pure
#: match-set evaluator, and ``recursive`` the original boolean recursion —
#: the latter two are the differential oracles of the benchmark driver and
#: the three-way equivalence suite.
EVALUATORS = {
    "dfa": DfaMatcher,
    "matchset": Matcher,
    "recursive": RecursiveMatcher,
}

#: The evaluator used when callers do not ask for one explicitly.
DEFAULT_EVALUATOR = "dfa"


class Examples:
    """A set of positive and negative string examples.

    Membership checks reuse one matcher per example string, so evaluating
    thousands of candidate regexes against the same examples shares the
    memoised per-node match sets.  ``evaluator`` selects the evaluation
    strategy (see :data:`EVALUATORS`); equality and hashing deliberately
    ignore it — it changes performance, not semantics.
    """

    def __init__(
        self,
        positive: Iterable[str],
        negative: Iterable[str],
        evaluator: str = DEFAULT_EVALUATOR,
    ):
        self.positive: tuple[str, ...] = tuple(positive)
        self.negative: tuple[str, ...] = tuple(negative)
        if evaluator not in EVALUATORS:
            raise ValueError(
                f"unknown evaluator {evaluator!r}; expected one of {sorted(EVALUATORS)}"
            )
        self.evaluator = evaluator
        self._matchers: Dict[str, Union[Matcher, RecursiveMatcher]] = {}
        self._pos_matchers: tuple = ()
        self._neg_matchers: tuple = ()
        # Batched membership is only available to the compiled evaluator and
        # only over subjects the automata backend can encode.
        self._batch_pos = evaluator == "dfa" and all(
            char in _PRINTABLE for text in self.positive for char in text
        )
        self._batch_neg = evaluator == "dfa" and all(
            char in _PRINTABLE for text in self.negative for char in text
        )
        self._full_pos_mask = (1 << len(self.positive)) - 1
        #: Batched-membership lookups attributed to this example set (the
        #: per-subject matchers keep their own counters; these cover the
        #: queries that never reach a matcher).
        self._batch_hits = 0
        self._batch_misses = 0

    def __repr__(self) -> str:
        return f"Examples(positive={list(self.positive)!r}, negative={list(self.negative)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Examples):
            return NotImplemented
        return self.positive == other.positive and self.negative == other.negative

    def __hash__(self) -> int:
        return hash((self.positive, self.negative))

    def matcher(self, text: str) -> Union[Matcher, RecursiveMatcher]:
        matcher = self._matchers.get(text)
        if matcher is None:
            matcher = EVALUATORS[self.evaluator](text)
            self._matchers[text] = matcher
        return matcher

    def matches(self, regex: ast.Regex, text: str) -> bool:
        """Membership of one example string (cached)."""
        return self.matcher(text).matches(regex)

    def positive_matchers(self) -> tuple:
        """One matcher per positive example (built lazily, then reused)."""
        matchers = self._pos_matchers
        if len(matchers) != len(self.positive):
            matchers = self._pos_matchers = tuple(
                self.matcher(s) for s in self.positive
            )
        return matchers

    def negative_matchers(self) -> tuple:
        """One matcher per negative example (built lazily, then reused)."""
        matchers = self._neg_matchers
        if len(matchers) != len(self.negative):
            matchers = self._neg_matchers = tuple(
                self.matcher(s) for s in self.negative
            )
        return matchers

    def _batch_mask(self, regex: ast.Regex, subjects: tuple) -> Optional[int]:
        """Acceptance bitmask of ``regex`` over ``subjects`` (global cache).

        Bit ``i`` is set iff ``subjects[i]`` matches.  Returns None when the
        regex is uncompilable, in which case the caller falls back to the
        per-subject matchers.
        """
        key = (regex, subjects)
        mask = _MEMBERSHIP_MASKS.get(key)
        if mask is not None:
            MEMBERSHIP_CACHE_STATS.hits += 1
            self._batch_hits += 1
            return mask
        automaton = membership_automaton(regex)
        if automaton is None:
            return None
        self._batch_misses += 1
        mask = 0
        for index, accepted in enumerate(automaton.accepts_batch(subjects)):
            if accepted:
                mask |= 1 << index
        if len(_MEMBERSHIP_MASKS) >= _MAX_MEMBERSHIP_MASKS:
            with CACHE_LOCK:
                if len(_MEMBERSHIP_MASKS) >= _MAX_MEMBERSHIP_MASKS:
                    _MEMBERSHIP_MASKS.clear()
        return cache_insert(_MEMBERSHIP_MASKS, key, mask)

    def consistent(self, regex: ast.Regex) -> bool:
        """True iff the regex accepts every positive and rejects every negative example."""
        return self.accepts_all_positive(regex) and self.rejects_all_negative(regex)

    def accepts_all_positive(self, regex: ast.Regex) -> bool:
        if self._batch_pos:
            mask = self._batch_mask(regex, self.positive)
            if mask is not None:
                return mask == self._full_pos_mask
        return all(matcher.matches(regex) for matcher in self.positive_matchers())

    def rejects_all_negative(self, regex: ast.Regex) -> bool:
        if self._batch_neg:
            mask = self._batch_mask(regex, self.negative)
            if mask is not None:
                return mask == 0
        return not any(matcher.matches(regex) for matcher in self.negative_matchers())

    def eval_cache_stats(self) -> Tuple[int, int]:
        """Aggregate ``(hits, misses)`` of the evaluation caches.

        Covers both the per-node matcher tables and the batched-membership
        lookups of the compiled evaluator.  The recursive evaluator does not
        track per-node statistics; its matchers simply contribute zero.
        """
        hits = self._batch_hits
        misses = self._batch_misses
        for matcher in self._matchers.values():
            hits += getattr(matcher, "cache_hits", 0)
            misses += getattr(matcher, "cache_misses", 0)
        return hits, misses

    def extended(
        self, extra_positive: Sequence[str] = (), extra_negative: Sequence[str] = ()
    ) -> "Examples":
        """A new example set with additional examples (iterative protocol of Sec. 8.1)."""
        return Examples(
            tuple(dict.fromkeys([*self.positive, *extra_positive])),
            tuple(dict.fromkeys([*self.negative, *extra_negative])),
            evaluator=self.evaluator,
        )

    def literal_characters(self) -> str:
        """Characters occurring in the positive examples, used as literal leaf candidates."""
        seen: dict[str, None] = {}
        for text in self.positive:
            for char in text:
                seen.setdefault(char, None)
        return "".join(seen)

    def max_positive_length(self) -> int:
        return max((len(s) for s in self.positive), default=0)

    def __len__(self) -> int:
        return len(self.positive) + len(self.negative)
