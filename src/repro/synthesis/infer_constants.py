"""Solving for symbolic integers — the ``InferConstants`` procedure (Figure 14).

Given a symbolic regex (no open nodes, at least one symbolic integer), the
procedure enumerates candidate assignments to the symbolic integers using the
length-constraint encoding of Figure 13 and the bounded-integer solver, and
keeps only assignments whose (partially concretised) regexes survive the
approximation-based feasibility check.  The returned concrete regexes still
have to be validated against the examples by the main loop — the constraint is
an over-approximation, not a proof of consistency.

The enumeration is **incremental**: the constraint ψ0 is compiled once into a
:class:`~repro.solver.solver.SolverInstance`, and the Figure-14 blocking
clauses (``κ != v``) and pins (``κ == v``) travel through the worklist as
assumption literals over that one compiled store — nothing is rebuilt,
re-flattened, or re-decomposed per model.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.solver import Solver
from repro.solver.solver import Literal
from repro.synthesis.approximate import infeasible
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.encode import constraint_for_examples
from repro.synthesis.examples import Examples
from repro.synthesis.partial import (
    PartialRegex,
    POp,
    SymInt,
    is_concrete,
    substitute_symint,
    symints_of,
    walk,
)


def _ints_valid(partial: PartialRegex) -> bool:
    """DSL integer invariants on the concretised values so far.

    The encoding is an over-approximation and κ occurrences under ``Not``
    are not constrained at all, so a model can propose values no DSL
    operator accepts (``Repeat`` counts < 1, ``RepeatRange`` bounds out of
    order).  Such candidates are discarded; their blocking clause still
    advances the enumeration.
    """
    for node in walk(partial):
        if not isinstance(node, POp):
            continue
        ints = [value for value in node.ints if not isinstance(value, SymInt)]
        if any(value < 1 for value in ints):
            return False
        if node.op == "RepeatRange" and len(ints) == 2 and ints[0] > ints[1]:
            return False
    return True


def infer_constants(
    partial: PartialRegex,
    examples: Examples,
    config: SynthesisConfig,
    solver: Solver | None = None,
    deadline: float | None = None,
) -> List[PartialRegex]:
    """Enumerate feasible concretisations of a symbolic regex.

    Mirrors Figure 14: a worklist of ``(symbolic regex, assumptions)`` pairs
    is made increasingly concrete one symbolic integer at a time; blocking
    clauses force the solver to produce different values for the chosen
    integer, and partially concretised regexes that the approximation check
    refutes are dropped together with every extension.  ``deadline`` (a
    ``time.monotonic`` timestamp) stops the enumeration early with whatever
    has been found, so a scheduler's time slice bounds even this, the
    engine's most expensive single step.
    """
    solver = solver or Solver()
    formula, domains, kappas = constraint_for_examples(partial, examples, config)
    instance = solver.compile(formula, domains, shared=kappas)
    results: List[PartialRegex] = []
    worklist: List[tuple[PartialRegex, Tuple[Literal, ...]]] = [(partial, ())]
    budget = config.max_models_per_symbolic

    while worklist and budget > 0:
        if deadline is not None and time.monotonic() > deadline:
            break
        current, assumptions = worklist.pop()
        current_kappas = symints_of(current)
        if not current_kappas:
            continue
        prefer = [kappa.name for kappa in current_kappas]
        try:
            model = instance.solve(assumptions, prefer=prefer, deadline=deadline)
        except RuntimeError:
            # Step or deadline budget exceeded: treat as UNSAT for this branch.
            continue
        if model is None:
            continue
        budget -= 1
        kappa = current_kappas[0]
        value = model.get(kappa.name)
        if value is None:
            # The formula does not mention this κ (it can happen that no
            # positive example pins the length of the branch it occurs in),
            # so the model omits it; any in-domain value satisfies the
            # constraint — take the smallest.  The blocking literal below
            # then introduces the variable, so later models enumerate the
            # rest.
            value = domains.get(kappa.name, (1, config.max_kappa))[0]
        concretised = substitute_symint(current, kappa.name, value)

        # Keep exploring other values of this symbolic integer (a blocking
        # clause, as a cheap assumption literal over the compiled store).
        worklist.append((current, assumptions + ((kappa.name, "!=", value),)))

        if not _ints_valid(concretised):
            continue
        if is_concrete(concretised):
            results.append(concretised)
            continue
        if not infeasible(concretised, examples, config):
            worklist.append((concretised, assumptions + ((kappa.name, "==", value),)))
    return results
