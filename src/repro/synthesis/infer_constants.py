"""Solving for symbolic integers — the ``InferConstants`` procedure (Figure 14).

Given a symbolic regex (no open nodes, at least one symbolic integer), the
procedure enumerates candidate assignments to the symbolic integers using the
length-constraint encoding of Figure 13 and the bounded-integer solver, and
keeps only assignments whose (partially concretised) regexes survive the
approximation-based feasibility check.  The returned concrete regexes still
have to be validated against the examples by the main loop — the constraint is
an over-approximation, not a proof of consistency.
"""

from __future__ import annotations

from typing import List

from repro.solver import Solver, terms as T
from repro.synthesis.approximate import infeasible
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.encode import constraint_for_examples
from repro.synthesis.examples import Examples
from repro.synthesis.partial import (
    PartialRegex,
    is_concrete,
    substitute_symint,
    symints_of,
)


def infer_constants(
    partial: PartialRegex,
    examples: Examples,
    config: SynthesisConfig,
    solver: Solver | None = None,
    deadline: float | None = None,
) -> List[PartialRegex]:
    """Enumerate feasible concretisations of a symbolic regex.

    Mirrors Figure 14: a worklist of ``(symbolic regex, constraint)`` pairs is
    made increasingly concrete one symbolic integer at a time; blocking
    clauses force the solver to produce different values for the chosen
    integer, and partially concretised regexes that the approximation check
    refutes are dropped together with every extension.  ``deadline`` (a
    ``time.monotonic`` timestamp) stops the enumeration early with whatever
    has been found, so a scheduler's time slice bounds even this, the
    engine's most expensive single step.
    """
    import time

    solver = solver or Solver()
    formula, domains, _ = constraint_for_examples(partial, examples, config)
    results: List[PartialRegex] = []
    worklist: List[tuple[PartialRegex, T.Formula]] = [(partial, formula)]
    budget = config.max_models_per_symbolic

    while worklist and budget > 0:
        if deadline is not None and time.monotonic() > deadline:
            break
        current, constraint = worklist.pop()
        kappas = symints_of(current)
        if not kappas:
            continue
        prefer = [kappa.name for kappa in kappas]
        try:
            model = solver.solve(constraint, domains, prefer=prefer, deadline=deadline)
        except RuntimeError:
            # Step or deadline budget exceeded: treat as UNSAT for this branch.
            continue
        if model is None:
            continue
        budget -= 1
        kappa = kappas[0]
        value = model.get(kappa.name)
        if value is None:
            # The formula does not mention this κ (it can happen that no
            # positive example pins the length of the branch it occurs in),
            # so the model omits it; any in-domain value satisfies the
            # constraint — take the smallest.  The blocking clause below then
            # introduces the variable, so later models enumerate the rest.
            value = domains.get(kappa.name, (1, config.max_kappa))[0]
        concretised = substitute_symint(current, kappa.name, value)

        # Keep exploring other values of this symbolic integer (blocking clause).
        blocked = T.conjoin(
            [constraint, T.NotF(T.Cmp("==", T.Var(kappa.name), T.Const(value)))]
        )
        worklist.append((current, blocked))

        if is_concrete(concretised):
            results.append(concretised)
            continue
        if not infeasible(concretised, examples, config):
            pinned = T.conjoin(
                [constraint, T.Cmp("==", T.Var(kappa.name), T.Const(value))]
            )
            worklist.append((concretised, pinned))
    return results
