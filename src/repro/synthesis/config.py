"""Configuration of the PBE engine and its ablation variants."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class EngineVariant(Enum):
    """The three engine variants compared in the ablation study (Figure 18)."""

    #: Plain enumerative search: no approximation pruning, no symbolic integers.
    ENUM = "regel-enum"
    #: Approximation-based pruning only (Section 4.1).
    APPROX = "regel-approx"
    #: The full engine: approximation pruning + symbolic integers (Sections 4.1 + 4.2).
    FULL = "regel"


@dataclass
class SynthesisConfig:
    """Tunable parameters of the synthesis engine.

    The defaults correspond to the full Regel configuration; the ablation
    variants are obtained through :meth:`for_variant`.
    """

    #: Depth bound ``d`` used for constrained holes (Section 3.2 remark).
    hole_depth: int = 3
    #: Upper bound MAX for symbolic integers (Figure 13, rule 3).
    max_kappa: int = 20
    #: Wall-clock budget in seconds for one sketch completion.
    timeout: float = 20.0
    #: Hard cap on worklist expansions (protects against pathological sketches).
    max_expansions: int = 60_000
    #: Number of concrete regexes requested (the engine stops after finding them).
    max_results: int = 1
    #: Use over-/under-approximation pruning (Section 4.1).
    use_approximation: bool = True
    #: Run the abstract-interpretation pre-filter (:mod:`repro.analysis`)
    #: before the match-set evaluator.  It is a refinement of approximation
    #: pruning, so the Regel-Enum ablation (``use_approximation=False``)
    #: disables it too.
    use_static_analysis: bool = True
    #: Use symbolic integers + constraint solving (Section 4.2); when False the
    #: Repeat-family integer arguments are enumerated explicitly.
    use_symbolic_ints: bool = True
    #: Cap on concrete integer values enumerated when symbolic integers are off.
    max_enum_int: int = 8
    #: Cap on models enumerated per symbolic regex by InferConstants.
    max_models_per_symbolic: int = 24
    #: Use the subsumption heuristics that skip redundant membership queries
    #: (Section 6, "Eliminating membership queries").
    use_subsumption: bool = True
    #: Extra literal characters (beyond predefined classes) allowed as leaves;
    #: by default literals are harvested from the positive examples.
    extra_literals: str = ""
    #: Membership evaluator (see :data:`repro.synthesis.examples.EVALUATORS`):
    #: ``dfa`` compiles concrete subtrees onto the automata backend (the
    #: production default), ``matchset`` forces the pure match-set evaluator,
    #: ``recursive`` the boolean-recursion reference oracle.
    evaluator: str = "dfa"

    def for_variant(self, variant: EngineVariant) -> "SynthesisConfig":
        """Return a copy of this configuration specialised to an ablation variant."""
        from dataclasses import replace

        if variant is EngineVariant.FULL:
            return replace(self, use_approximation=True, use_symbolic_ints=True)
        if variant is EngineVariant.APPROX:
            return replace(self, use_approximation=True, use_symbolic_ints=False)
        if variant is EngineVariant.ENUM:
            return replace(self, use_approximation=False, use_symbolic_ints=False)
        raise ValueError(f"unknown variant {variant!r}")
