"""The sketch-guided synthesis loop (Figure 9 of the paper).

:class:`Synthesizer` maintains a worklist of partial regexes, prioritised by
size, and processes each according to its kind:

* **concrete** regexes are checked against the examples and returned when
  consistent,
* **symbolic** regexes (no open nodes, but unknown integer constants) are
  handed to :func:`repro.synthesis.infer_constants.infer_constants`,
* otherwise one open node is selected and expanded with
  :func:`repro.synthesis.expand.expand`, and infeasible expansions are pruned
  with the approximation check of Section 4.1.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from itertools import count
from typing import List, Optional

from repro.analysis.check import prune_checker
from repro.automata.membership import MEMBERSHIP_CACHE_STATS
from repro.dsl import ast as rast
from repro.dsl.printer import to_dsl_string
from repro.dsl.simplify import simplify, size as regex_size
from repro.sketch import ast as sast
from repro.solver import Solver
from repro.synthesis.approximate import APPROX_CACHE_STATS, infeasible
from repro.synthesis.config import EngineVariant, SynthesisConfig
from repro.synthesis.examples import Examples
from repro.synthesis.encode import ENCODE_CACHE_STATS
from repro.synthesis.expand import SymIntFactory, expand, initial_partial
from repro.synthesis.infer_constants import infer_constants
from repro.synthesis.partial import (
    PartialRegex,
    is_concrete,
    is_symbolic,
    open_nodes,
    partial_size,
    to_regex,
)


#: Minimum wall-clock allowance for one symbolic-integer enumeration, even
#: when the scheduler's slice deadline has already passed.
_MIN_SYMBOLIC_SLICE = 0.05


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run."""

    #: Consistent regexes found, best (smallest) first.
    regexes: List[rast.Regex] = field(default_factory=list)
    #: Whether the engine stopped because of the time budget.
    timed_out: bool = False
    #: Number of partial regexes taken off the worklist.
    expansions: int = 0
    #: Number of candidates discarded by the approximation check.
    pruned: int = 0
    #: Wall-clock time spent, in seconds.
    elapsed: float = 0.0
    #: Match-set evaluation cache hits/misses attributed to this run.
    eval_cache_hits: int = 0
    eval_cache_misses: int = 0
    #: Per-subtree approximation cache hits attributed to this run.
    approx_cache_hits: int = 0
    #: Solver propagation/conflict counts attributed to this run (the new
    #: bounds-propagating solver narrows domains instead of enumerating them;
    #: these counters are how that work is observed).
    solver_propagations: int = 0
    solver_conflicts: int = 0
    #: Figure-13 encoding-cache hits attributed to this run.
    encode_cache_hits: int = 0
    #: Successors pruned by the static analyzer before any membership query
    #: (hits), and successors the analyzer could not rule out (misses).
    static_prune_hits: int = 0
    static_prune_misses: int = 0
    #: Compiled-membership cache hits attributed to this run (automaton and
    #: batched-verdict lookups answered by the process-global DFA caches),
    #: automata compiled during it, and milliseconds spent compiling them.
    dfa_cache_hits: int = 0
    dfa_compiled: int = 0
    dfa_compile_ms: float = 0.0

    @property
    def solved(self) -> bool:
        return bool(self.regexes)

    @property
    def best(self) -> Optional[rast.Regex]:
        return self.regexes[0] if self.regexes else None


class SynthesisRun:
    """A resumable search over one sketch.

    The search state (worklist, memoisation sets, symbolic-integer factory,
    accumulated statistics) lives on this object, so the search can be driven
    in budget-chunked slices by a scheduler: :meth:`step` runs until its time
    or expansion slice is exhausted and returns, and a later :meth:`step`
    resumes exactly where the previous one stopped.  This is what lets the
    portfolio schedulers in :mod:`repro.api.schedulers` interleave many
    per-sketch engine instances inside one process.
    """

    def __init__(self, synthesizer: "Synthesizer", sketch: sast.Sketch, examples: Examples):
        self.config = synthesizer.config
        self.solver = synthesizer.solver
        self.sketch = sketch
        self.examples = examples
        self.result = SynthesisResult()
        self._literal_chars = examples.literal_characters() + self.config.extra_literals
        self._symints = SymIntFactory()
        self._counter = count()
        self._worklist: list[tuple[int, int, PartialRegex]] = []
        # Hash-consing makes structurally equal partials the same object, so
        # worklist dedup is a set of interned nodes (no string rendering).
        self._seen: set[PartialRegex] = set()
        # Membership-rejection store for the Section 6 subsumption short-cuts,
        # restructured for O(1) checks: rejected regexes (interned nodes), the
        # arguments of rejected Contains nodes, and the per-argument minimum
        # rejected RepeatAtLeast count.
        self._rejected: set[rast.Regex] = set()
        self._rejected_contains: set[rast.Regex] = set()
        self._rejected_atleast: dict[rast.Regex, int] = {}
        # Static pre-filter specialised to this run's examples and config;
        # it owns a facts→verdict memo (the examples are fixed for the whole
        # run and successors share facts values heavily).
        self._static_prune = prune_checker(examples, self.config)
        self._done = False
        self._push(initial_partial(sketch))

    @property
    def done(self) -> bool:
        """True once the search is exhausted, solved, or hit its expansion cap."""
        return self._done

    def _push(self, partial: PartialRegex) -> None:
        heapq.heappush(
            self._worklist, (partial_size(partial), next(self._counter), partial)
        )

    def step(
        self, budget: float, max_expansions: Optional[int] = None
    ) -> SynthesisResult:
        """Advance the search by at most ``budget`` seconds / ``max_expansions`` pops.

        Returns the accumulated :class:`SynthesisResult`; statistics and
        ``elapsed`` aggregate across successive calls.  ``result.timed_out``
        is only set when the run hits the configuration's *global* expansion
        cap — a caller that abandons a paused run should set it itself.
        """
        config = self.config
        result = self.result
        examples = self.examples
        start = time.monotonic()
        deadline = start + budget
        slice_expansions = 0
        eval_hits_base, eval_misses_base = examples.eval_cache_stats()
        approx_hits_base = APPROX_CACHE_STATS.hits
        solver_stats = self.solver.stats
        propagations_base = solver_stats.propagations
        conflicts_base = solver_stats.conflicts
        encode_hits_base = ENCODE_CACHE_STATS.hits
        membership_stats = MEMBERSHIP_CACHE_STATS
        dfa_hits_base = membership_stats.hits
        dfa_compiled_base = membership_stats.compiled
        dfa_seconds_base = membership_stats.compile_seconds

        while self._worklist and not self._done:
            if result.expansions >= config.max_expansions:
                result.timed_out = True
                self._done = True
                break
            if time.monotonic() > deadline:
                break
            if max_expansions is not None and slice_expansions >= max_expansions:
                break
            _, _, partial = heapq.heappop(self._worklist)
            result.expansions += 1
            slice_expansions += 1

            if is_concrete(partial):
                regex = to_regex(partial)
                if self._consistent(regex, examples):
                    result.regexes.append(simplify(regex))
                    if len(result.regexes) >= config.max_results:
                        self._done = True
                        break
                continue

            if is_symbolic(partial):
                if config.use_symbolic_ints:
                    # Bound the model enumeration by the slice deadline, but
                    # always allow a small minimum so that very short slices
                    # still discover the first (smallest) models.
                    ic_deadline = max(deadline, time.monotonic() + _MIN_SYMBOLIC_SLICE)
                    for candidate in infer_constants(
                        partial, examples, config, self.solver, deadline=ic_deadline
                    ):
                        self._push(candidate)
                # Without symbolic integers the expansion already enumerated
                # concrete constants, so a symbolic partial regex cannot occur.
                continue

            node = open_nodes(partial)[0]
            for successor in expand(partial, node, config, self._symints, self._literal_chars):
                if successor in self._seen:
                    continue
                self._seen.add(successor)
                # Cheap abstract-interpretation pre-filter: facts alone can
                # often prove infeasibility without a single membership query.
                if self._static_prune(successor) is not None:
                    result.static_prune_hits += 1
                    result.pruned += 1
                    continue
                result.static_prune_misses += 1
                if infeasible(successor, examples, config):
                    result.pruned += 1
                    continue
                self._push(successor)

        if not self._worklist:
            self._done = True
        result.elapsed += time.monotonic() - start
        eval_hits, eval_misses = examples.eval_cache_stats()
        result.eval_cache_hits += eval_hits - eval_hits_base
        result.eval_cache_misses += eval_misses - eval_misses_base
        result.approx_cache_hits += APPROX_CACHE_STATS.hits - approx_hits_base
        result.solver_propagations += solver_stats.propagations - propagations_base
        result.solver_conflicts += solver_stats.conflicts - conflicts_base
        result.encode_cache_hits += ENCODE_CACHE_STATS.hits - encode_hits_base
        result.dfa_cache_hits += membership_stats.hits - dfa_hits_base
        result.dfa_compiled += membership_stats.compiled - dfa_compiled_base
        result.dfa_compile_ms += (
            membership_stats.compile_seconds - dfa_seconds_base
        ) * 1000.0
        # NB: result.regexes is append-only across steps (no re-sorting here);
        # incremental consumers rely on stable indices to detect new finds.
        return result

    def _consistent(self, regex: rast.Regex, examples: Examples) -> bool:
        """Membership check with the subsumption short-cuts of Section 6.

        Section 6 ("Eliminating membership queries"): if ``Contains(r)``
        rejects a positive example then so do ``StartsWith(r)`` and
        ``EndsWith(r)``; if ``RepeatAtLeast(r, k)`` rejects a positive example
        then so does ``RepeatAtLeast(r, k')`` for every ``k' >= k``.  The
        rejection store is keyed by interned nodes (plus a per-argument count
        threshold for the ``RepeatAtLeast`` family), so each check is O(1)
        instead of printing O(k) candidate strings.
        """
        config = self.config
        if config.use_subsumption:
            if regex in self._rejected:
                return False
            if (
                isinstance(regex, (rast.StartsWith, rast.EndsWith))
                and regex.arg in self._rejected_contains
            ):
                return False
            if isinstance(regex, rast.RepeatAtLeast):
                threshold = self._rejected_atleast.get(regex.arg)
                if threshold is not None and regex.count >= threshold:
                    return False
        if examples.consistent(regex):
            return True
        if config.use_subsumption and not examples.accepts_all_positive(regex):
            self._rejected.add(regex)
            if isinstance(regex, rast.Contains):
                self._rejected_contains.add(regex.arg)
            elif isinstance(regex, rast.RepeatAtLeast):
                previous = self._rejected_atleast.get(regex.arg)
                if previous is None or regex.count < previous:
                    self._rejected_atleast[regex.arg] = regex.count
        return False


class Synthesizer:
    """Sketch-guided PBE engine (one instance per synthesis problem)."""

    def __init__(self, config: Optional[SynthesisConfig] = None):
        self.config = config or SynthesisConfig()
        self.solver = Solver()

    # -- public API ----------------------------------------------------------

    def start(self, sketch: sast.Sketch, examples: Examples) -> SynthesisRun:
        """Begin a resumable search; drive it with :meth:`SynthesisRun.step`."""
        return SynthesisRun(self, sketch, examples)

    def synthesize(self, sketch: sast.Sketch, examples: Examples) -> SynthesisResult:
        """Search for regexes that complete ``sketch`` and satisfy ``examples``."""
        run = self.start(sketch, examples)
        result = run.step(self.config.timeout)
        if not run.done:
            result.timed_out = True
        # Prefer smaller regexes among those found.
        result.regexes.sort(key=lambda regex: _regex_rank(regex))
        return result

def _regex_rank(regex: rast.Regex) -> tuple[int, str]:
    return regex_size(regex), to_dsl_string(regex)


def synthesize(
    sketch: sast.Sketch,
    positive: list[str],
    negative: list[str],
    config: Optional[SynthesisConfig] = None,
    variant: EngineVariant = EngineVariant.FULL,
) -> SynthesisResult:
    """Convenience one-shot synthesis entry point.

    ``variant`` selects between the full engine and the ablation variants
    (Regel-Approx / Regel-Enum) used in Figure 18.
    """
    config = (config or SynthesisConfig()).for_variant(variant)
    engine = Synthesizer(config)
    return engine.synthesize(
        sketch, Examples(positive, negative, evaluator=config.evaluator)
    )
