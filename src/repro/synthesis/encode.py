"""Length-constraint encoding of symbolic regexes (Figure 13 of the paper).

``encode_partial`` produces, for a symbolic regex ``P``, a formula ``φ`` and a
variable ``x`` such that: *if* some instantiation of ``P``'s symbolic integers
matches a string ``s``, then those integer values satisfy ``φ[len(s)/x]``
(Theorem 10.4).  The formula is therefore an over-approximation used to prune
infeasible integer assignments, never to prove feasibility.

Two optimisations on top of the paper's presentation:

* **Per-subtree encoding cache.**  Hash-consing (PR 3) makes every partial
  regex node a canonical object, so the canonical encoding of each subtree —
  with temporary length variables numbered relative to the subtree — is
  cached per interned node and reused across examples, sibling partials, and
  repeated ``InferConstants`` calls; instantiating a copy is a cheap variable
  renaming rather than a re-walk of the regex.
* **Fixed-length children of the Repeat family.**  When the repeated subtree
  is concrete with a single possible match length ``L`` (a character class, a
  literal string, …), the bound ``x1·k ≤ x ≤ x1_hi·k`` collapses to
  ``L·k ≤ x ≤ L·k`` and the two duplicated child encodings (the ``φ1`` /
  ``φ1_hi`` copies that exist only to let the lower and upper bounds pick
  different child lengths) are not emitted at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import caches
from repro.dsl import ast as rast
from repro.solver import terms as T
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.examples import Examples
from repro.synthesis.partial import PartialRegex, PLeaf, POp, SymInt, symints_of


#: Prefix marking canonical (cache-internal) temporary variables.  The
#: instantiation step renames them to ``{prefix}x{i}``; the marker can never
#: collide with a symbolic-integer name.
_TEMP = "\x00"


@dataclass
class _EncodeCacheStats:
    """Hit/miss counters of the per-subtree encoding cache."""

    hits: int = 0
    misses: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


ENCODE_CACHE_STATS = _EncodeCacheStats()


@dataclass(frozen=True)
class _CachedEncoding:
    """Canonical encoding of one interned subtree.

    ``formula`` uses temp variables ``\\x00·0 … \\x00·(n_temps-1)`` (the root
    length variable is index 0) and real symbolic-integer names.
    """

    formula: T.Formula
    n_temps: int
    kappas: frozenset


#: Canonical encodings per interned node, keyed (node, max_kappa).  Weak keys
#: so the cache cannot outlive the search states it describes.
_ENCODING_CACHE: "caches.GuardedWeakKeyDictionary" = caches.register_cache(
    "repro.synthesis.encode._ENCODING_CACHE", caches.GuardedWeakKeyDictionary()
)


def _temp(index: int) -> T.Var:
    return T.Var(f"{_TEMP}{index}")


def _rename_term(term: T.Term, rename) -> T.Term:
    """Rewrite every temp-variable name of a term through ``rename``."""
    if isinstance(term, T.Var):
        if term.name.startswith(_TEMP):
            return T.Var(rename(term.name))
        return term
    if isinstance(term, T.Const):
        return term
    if isinstance(term, T.Add):
        return T.Add(tuple(_rename_term(t, rename) for t in term.terms))
    if isinstance(term, T.Mul):
        return T.Mul(tuple(_rename_term(t, rename) for t in term.terms))
    raise TypeError(f"unknown term: {term!r}")


def _rename(formula: T.Formula, rename) -> T.Formula:
    """Rewrite every temp-variable name of a formula through ``rename``."""
    if isinstance(formula, T.BoolConst):
        return formula
    if isinstance(formula, T.Cmp):
        return T.Cmp(
            formula.op,
            _rename_term(formula.lhs, rename),
            _rename_term(formula.rhs, rename),
        )
    if isinstance(formula, T.AndF):
        return T.AndF(tuple(_rename(p, rename) for p in formula.parts))
    if isinstance(formula, T.OrF):
        return T.OrF(tuple(_rename(p, rename) for p in formula.parts))
    if isinstance(formula, T.NotF):
        return T.NotF(_rename(formula.arg, rename))
    raise TypeError(f"unknown formula: {formula!r}")


def _shift(formula: T.Formula, offset: int) -> T.Formula:
    """Renumber a cached formula's temp variables by ``offset``."""
    if offset == 0:
        return formula
    return _rename(formula, lambda name: f"{_TEMP}{int(name[1:]) + offset}")


# ---------------------------------------------------------------------------
# Fixed-length analysis of concrete regexes
# ---------------------------------------------------------------------------

def _fixed_length(regex: rast.Regex) -> Optional[int]:
    """The single match length of ``regex``, or None when lengths vary.

    Sound to over-report only for empty languages (a regex that matches
    nothing makes any length claim vacuously true), which keeps the collapsed
    Repeat encoding a valid over-approximation.
    """
    if isinstance(regex, rast.CharClass):
        return 1
    if isinstance(regex, rast.Epsilon):
        return 0
    if isinstance(regex, rast.Concat):
        left = _fixed_length(regex.left)
        right = _fixed_length(regex.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(regex, (rast.Or, rast.And)):
        left = _fixed_length(regex.left)
        right = _fixed_length(regex.right)
        if left is not None and left == right:
            return left
        return None
    if isinstance(regex, rast.Repeat):
        inner = _fixed_length(regex.arg)
        if inner is not None and isinstance(regex.count, int):
            return inner * regex.count
        return None
    if isinstance(regex, rast.RepeatRange):
        inner = _fixed_length(regex.arg)
        if inner == 0:
            return 0
        if (
            inner is not None
            and isinstance(regex.low, int)
            and regex.low == regex.high
        ):
            return inner * regex.low
        return None
    if isinstance(regex, (rast.Optional, rast.KleeneStar, rast.RepeatAtLeast)):
        inner = _fixed_length(regex.arg)
        return 0 if inner == 0 else None
    return None


def _leaf_fixed_length(node) -> Optional[int]:
    """Fixed length of a Repeat-family child, when it is concrete."""
    if isinstance(node, PLeaf):
        return _fixed_length(node.regex)
    if isinstance(node, rast.Regex):
        return _fixed_length(node)
    return None


# ---------------------------------------------------------------------------
# Canonical (cached) encoding
# ---------------------------------------------------------------------------

class _Builder:
    """Builds one node's canonical encoding from its children's encodings."""

    def __init__(self, max_kappa: int):
        self.max_kappa = max_kappa
        self.parts: list[T.Formula] = []
        self.kappas: set = set()
        self.n_temps = 1  # index 0 is the node's own length variable

    def child(self, node) -> T.Var:
        """Inline a child's cached encoding; returns its (shifted) root var."""
        child_enc = _canonical(node, self.max_kappa)
        offset = self.n_temps
        self.n_temps += child_enc.n_temps
        self.kappas |= child_enc.kappas
        self.parts.append(_shift(child_enc.formula, offset))
        return _temp(offset)

    def int_term(self, value) -> T.Term:
        if isinstance(value, SymInt):
            self.kappas.add(value.name)
            self.parts.append(T.Cmp(">=", T.Var(value.name), T.Const(1)))
            self.parts.append(T.Cmp("<=", T.Var(value.name), T.Const(self.max_kappa)))
            return T.Var(value.name)
        return T.Const(value)

    def done(self, *constraints: T.Formula) -> _CachedEncoding:
        formula = T.conjoin([*constraints, *self.parts])
        return _CachedEncoding(formula, self.n_temps, frozenset(self.kappas))


def _canonical(node, max_kappa: int) -> _CachedEncoding:
    """Cached canonical encoding of one interned node."""
    per_node = _ENCODING_CACHE.get(node)
    if per_node is not None:
        cached = per_node.get(max_kappa)
        if cached is not None:
            ENCODE_CACHE_STATS.hits += 1
            return cached
    ENCODE_CACHE_STATS.misses += 1
    encoding = _encode_node(node, max_kappa)
    # Shared across pool workers: publish both levels under the cache lock,
    # keeping a racing winner's (identical) entry.
    with caches.CACHE_LOCK:
        per_node = _ENCODING_CACHE.get(node)
        if per_node is None:
            per_node = caches.GuardedDict()
            try:
                _ENCODING_CACHE[node] = per_node
            except TypeError:  # non-weakrefable nodes are simply not cached
                return encoding
        existing = per_node.get(max_kappa)
        if existing is not None:
            return existing
        per_node[max_kappa] = encoding
    return encoding


def _encode_node(node, max_kappa: int) -> _CachedEncoding:
    if isinstance(node, PLeaf):
        return _canonical(node.regex, max_kappa)
    if isinstance(node, POp):
        return _encode_op(node.op, list(node.children), list(node.ints), max_kappa)
    if isinstance(node, rast.Regex):
        return _encode_regex(node, max_kappa)
    raise TypeError(f"cannot encode {node!r}")


def _encode_regex(regex: rast.Regex, max_kappa: int) -> _CachedEncoding:
    if isinstance(regex, rast.CharClass):
        return _CachedEncoding(T.Cmp("==", _temp(0), T.Const(1)), 1, frozenset())
    if isinstance(regex, rast.Epsilon):
        return _CachedEncoding(T.Cmp("==", _temp(0), T.Const(0)), 1, frozenset())
    if isinstance(regex, rast.EmptySet):
        return _CachedEncoding(T.TRUE, 1, frozenset())
    name = type(regex).__name__
    children = list(regex.children())
    ints: list = []
    if isinstance(regex, (rast.Repeat, rast.RepeatAtLeast)):
        ints = [regex.count]
    elif isinstance(regex, rast.RepeatRange):
        ints = [regex.low, regex.high]
    return _encode_op(name, children, ints, max_kappa)


def _encode_op(op: str, children: list, ints: list, max_kappa: int) -> _CachedEncoding:
    builder = _Builder(max_kappa)
    xt = _temp(0)

    if op == "Not":
        # Tracking length constraints under negation would require
        # sufficient rather than necessary conditions (Section 4.2).
        return builder.done(T.TRUE)

    if op in ("StartsWith", "EndsWith", "Contains"):
        x1 = builder.child(children[0])
        return builder.done(T.Cmp(">=", xt, x1))

    if op == "Optional":
        x1 = builder.child(children[0])
        either = T.disjoin([
            T.Cmp("==", xt, T.Const(0)),
            T.Cmp("==", xt, x1),
        ])
        return builder.done(either)

    if op == "KleeneStar":
        x1 = builder.child(children[0])
        either = T.disjoin([
            T.Cmp("==", xt, T.Const(0)),
            T.Cmp(">=", xt, x1),
        ])
        return builder.done(either)

    if op == "Concat":
        x1 = builder.child(children[0])
        x2 = builder.child(children[1])
        return builder.done(T.Cmp("==", xt, T.Add((x1, x2))))

    if op == "Or":
        x1 = builder.child(children[0])
        x2 = builder.child(children[1])
        either = T.disjoin([
            T.Cmp("==", xt, x1),
            T.Cmp("==", xt, x2),
        ])
        return builder.done(either)

    if op == "And":
        x1 = builder.child(children[0])
        x2 = builder.child(children[1])
        both = T.conjoin([
            T.Cmp("==", xt, x1),
            T.Cmp("==", xt, x2),
        ])
        return builder.done(both)

    if op == "Repeat":
        fixed = _leaf_fixed_length(children[0])
        k_term = builder.int_term(ints[0])
        if fixed is not None:
            return builder.done(T.Cmp("==", xt, T.Mul((T.Const(fixed), k_term))))
        x1 = builder.child(children[0])
        x1_hi = builder.child(children[0])
        lower = T.Cmp(">=", xt, T.Mul((x1, k_term)))
        upper = T.Cmp("<=", xt, T.Mul((x1_hi, k_term)))
        return builder.done(lower, upper)

    if op == "RepeatAtLeast":
        fixed = _leaf_fixed_length(children[0])
        k_term = builder.int_term(ints[0])
        if fixed is not None:
            return builder.done(T.Cmp(">=", xt, T.Mul((T.Const(fixed), k_term))))
        x1 = builder.child(children[0])
        lower = T.Cmp(">=", xt, T.Mul((x1, k_term)))
        return builder.done(lower)

    if op == "RepeatRange":
        fixed = _leaf_fixed_length(children[0])
        k1_term = builder.int_term(ints[0])
        k2_term = builder.int_term(ints[1])
        ordered = T.Cmp("<=", k1_term, k2_term)
        if fixed is not None:
            lower = T.Cmp(">=", xt, T.Mul((T.Const(fixed), k1_term)))
            upper = T.Cmp("<=", xt, T.Mul((T.Const(fixed), k2_term)))
            return builder.done(lower, upper, ordered)
        x1 = builder.child(children[0])
        x1_hi = builder.child(children[0])
        lower = T.Cmp(">=", xt, T.Mul((x1, k1_term)))
        upper = T.Cmp("<=", xt, T.Mul((x1_hi, k2_term)))
        return builder.done(lower, upper, ordered)

    raise ValueError(f"unknown operator {op!r}")


# ---------------------------------------------------------------------------
# Instantiation (canonical → per-example variable names)
# ---------------------------------------------------------------------------

def _instantiate(formula: T.Formula, prefix: str) -> T.Formula:
    """Rename canonical temps to the per-example ``{prefix}x{i}`` names."""
    return _rename(formula, lambda name: f"{prefix}x{name[1:]}")


def encode_partial(
    partial: PartialRegex, max_kappa: int = 20, prefix: str = ""
) -> Tuple[T.Formula, str, set]:
    """Encode one symbolic regex; returns ``(φ, x0, kappa_names)``.

    Temporary length variables are named ``{prefix}x{i}`` with the root at
    index 0; symbolic integers keep their own names (they are shared across
    examples).
    """
    cached = _canonical(partial, max_kappa)
    return _instantiate(cached.formula, prefix), f"{prefix}x0", set(cached.kappas)


def constraint_for_examples(
    partial: PartialRegex,
    examples: Examples,
    config: SynthesisConfig,
) -> Tuple[T.Formula, Dict[str, Tuple[int, int]], set]:
    """The constraint ``ψ0`` of Figure 14 (line 2).

    The encoding is instantiated once per positive example with fresh
    temporary length variables (the symbolic integers ``κ`` are shared), and
    the root length variable of each copy is pinned to the example's length.
    """
    parts: list[T.Formula] = []
    domains: Dict[str, Tuple[int, int]] = {}
    kappas: set = set()
    max_len = max(examples.max_positive_length(), 1)
    cached = _canonical(partial, config.max_kappa)
    for index, example in enumerate(examples.positive):
        prefix = f"e{index}_"
        formula = _instantiate(cached.formula, prefix)
        root = f"{prefix}x0"
        parts.append(
            T.conjoin([formula, T.Cmp("==", T.Var(root), T.Const(len(example)))])
        )
        bound = (0, max(max_len, len(example)))
        for i in range(cached.n_temps):
            domains[f"{prefix}x{i}"] = bound
        kappas |= cached.kappas
    # Every symbolic integer of the regex gets the κ domain [1, MAX], even
    # when the encoding never mentions it (κ under ``Not`` encodes to TRUE):
    # blocking clauses introduce such variables later, and without the domain
    # they would be enumerated from 0, which no DSL operator accepts.
    for sym in symints_of(partial):
        kappas.add(sym.name)
    for name in kappas:
        domains[name] = (1, config.max_kappa)
    return T.conjoin(parts), domains, kappas
