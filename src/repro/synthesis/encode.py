"""Length-constraint encoding of symbolic regexes (Figure 13 of the paper).

``encode_partial`` produces, for a symbolic regex ``P``, a formula ``φ`` and a
variable ``x`` such that: *if* some instantiation of ``P``'s symbolic integers
matches a string ``s``, then those integer values satisfy ``φ[len(s)/x]``
(Theorem 10.4).  The formula is therefore an over-approximation used to prune
infeasible integer assignments, never to prove feasibility.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Iterable, Tuple

from repro.dsl import ast as rast
from repro.solver import terms as T
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.examples import Examples
from repro.synthesis.partial import PartialRegex, PLeaf, POp, SymInt


class _Encoder:
    """One encoding pass; generates fresh length variables with a common prefix."""

    def __init__(self, prefix: str, max_kappa: int):
        self._counter = count(0)
        self.prefix = prefix
        self.max_kappa = max_kappa
        self.kappa_names: set[str] = set()

    def fresh(self) -> str:
        return f"{self.prefix}x{next(self._counter)}"

    # -- integer arguments --------------------------------------------------

    def _int_term(self, value: int | SymInt) -> Tuple[T.Term, T.Formula]:
        if isinstance(value, SymInt):
            self.kappa_names.add(value.name)
            bounds = T.conjoin([
                T.Cmp(">=", T.Var(value.name), T.Const(1)),
                T.Cmp("<=", T.Var(value.name), T.Const(self.max_kappa)),
            ])
            return T.Var(value.name), bounds
        return T.Const(value), T.TRUE

    # -- nodes ---------------------------------------------------------------

    def encode(self, node: PartialRegex | rast.Regex) -> Tuple[T.Formula, str]:
        """Encode a partial regex node or a concrete regex; returns (φ, x)."""
        if isinstance(node, PLeaf):
            return self.encode(node.regex)
        if isinstance(node, POp):
            return self._encode_op(
                node.op,
                list(node.children),
                list(node.ints),
            )
        if isinstance(node, rast.Regex):
            return self._encode_regex(node)
        raise TypeError(f"cannot encode {node!r}")

    def _encode_regex(self, regex: rast.Regex) -> Tuple[T.Formula, str]:
        if isinstance(regex, rast.CharClass):
            x = self.fresh()
            return T.Cmp("==", T.Var(x), T.Const(1)), x
        if isinstance(regex, rast.Epsilon):
            x = self.fresh()
            return T.Cmp("==", T.Var(x), T.Const(0)), x
        if isinstance(regex, rast.EmptySet):
            x = self.fresh()
            return T.TRUE, x
        name = type(regex).__name__
        children = list(regex.children())
        ints: list[int | SymInt] = []
        if isinstance(regex, (rast.Repeat, rast.RepeatAtLeast)):
            ints = [regex.count]
        elif isinstance(regex, rast.RepeatRange):
            ints = [regex.low, regex.high]
        return self._encode_op(name, children, ints)

    def _encode_op(
        self,
        op: str,
        children: list,
        ints: list,
    ) -> Tuple[T.Formula, str]:
        x = self.fresh()
        xt = T.Var(x)

        if op == "Not":
            # Tracking length constraints under negation would require
            # sufficient rather than necessary conditions (Section 4.2).
            return T.TRUE, x

        if op in ("StartsWith", "EndsWith", "Contains"):
            phi1, x1 = self.encode(children[0])
            return T.conjoin([T.Cmp(">=", xt, T.Var(x1)), phi1]), x

        if op == "Optional":
            phi1, x1 = self.encode(children[0])
            either = T.disjoin([
                T.Cmp("==", xt, T.Const(0)),
                T.Cmp("==", xt, T.Var(x1)),
            ])
            return T.conjoin([either, phi1]), x

        if op == "KleeneStar":
            phi1, x1 = self.encode(children[0])
            either = T.disjoin([
                T.Cmp("==", xt, T.Const(0)),
                T.Cmp(">=", xt, T.Var(x1)),
            ])
            return T.conjoin([either, phi1]), x

        if op == "Concat":
            phi1, x1 = self.encode(children[0])
            phi2, x2 = self.encode(children[1])
            total = T.Cmp("==", xt, T.Add((T.Var(x1), T.Var(x2))))
            return T.conjoin([total, phi1, phi2]), x

        if op == "Or":
            phi1, x1 = self.encode(children[0])
            phi2, x2 = self.encode(children[1])
            either = T.disjoin([
                T.Cmp("==", xt, T.Var(x1)),
                T.Cmp("==", xt, T.Var(x2)),
            ])
            return T.conjoin([either, phi1, phi2]), x

        if op == "And":
            phi1, x1 = self.encode(children[0])
            phi2, x2 = self.encode(children[1])
            both = T.conjoin([
                T.Cmp("==", xt, T.Var(x1)),
                T.Cmp("==", xt, T.Var(x2)),
            ])
            return T.conjoin([both, phi1, phi2]), x

        if op == "Repeat":
            phi1, x1 = self.encode(children[0])
            phi1_hi, x1_hi = self.encode(children[0])
            k_term, k_bounds = self._int_term(ints[0])
            lower = T.Cmp(">=", xt, T.Mul((T.Var(x1), k_term)))
            upper = T.Cmp("<=", xt, T.Mul((T.Var(x1_hi), k_term)))
            return T.conjoin([lower, upper, phi1, phi1_hi, k_bounds]), x

        if op == "RepeatAtLeast":
            phi1, x1 = self.encode(children[0])
            k_term, k_bounds = self._int_term(ints[0])
            lower = T.Cmp(">=", xt, T.Mul((T.Var(x1), k_term)))
            return T.conjoin([lower, phi1, k_bounds]), x

        if op == "RepeatRange":
            phi1, x1 = self.encode(children[0])
            phi1_hi, x1_hi = self.encode(children[0])
            k1_term, k1_bounds = self._int_term(ints[0])
            k2_term, k2_bounds = self._int_term(ints[1])
            lower = T.Cmp(">=", xt, T.Mul((T.Var(x1), k1_term)))
            upper = T.Cmp("<=", xt, T.Mul((T.Var(x1_hi), k2_term)))
            ordered = T.Cmp("<=", k1_term, k2_term)
            return T.conjoin([lower, upper, ordered, phi1, phi1_hi, k1_bounds, k2_bounds]), x

        raise ValueError(f"unknown operator {op!r}")


def encode_partial(
    partial: PartialRegex, max_kappa: int = 20, prefix: str = ""
) -> Tuple[T.Formula, str, set[str]]:
    """Encode one symbolic regex; returns ``(φ, x0, kappa_names)``."""
    encoder = _Encoder(prefix, max_kappa)
    formula, root = encoder.encode(partial)
    return formula, root, encoder.kappa_names


def constraint_for_examples(
    partial: PartialRegex,
    examples: Examples,
    config: SynthesisConfig,
) -> Tuple[T.Formula, Dict[str, Tuple[int, int]], set[str]]:
    """The constraint ``ψ0`` of Figure 14 (line 2).

    The encoding is instantiated once per positive example with fresh
    temporary length variables (the symbolic integers ``κ`` are shared), and
    the root length variable of each copy is pinned to the example's length.
    """
    parts: list[T.Formula] = []
    domains: Dict[str, Tuple[int, int]] = {}
    kappas: set[str] = set()
    max_len = max(examples.max_positive_length(), 1)
    for index, example in enumerate(examples.positive):
        formula, root, kappa_names = encode_partial(
            partial, config.max_kappa, prefix=f"e{index}_"
        )
        parts.append(T.conjoin([formula, T.Cmp("==", T.Var(root), T.Const(len(example)))]))
        kappas |= kappa_names
        for name in T.var_names(formula) | {root}:
            if name not in kappa_names:
                domains[name] = (0, max(max_len, len(example)))
    for name in kappas:
        domains[name] = (1, config.max_kappa)
    return T.conjoin(parts), domains, kappas
