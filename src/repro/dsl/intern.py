"""Hash-consing (structural interning) for immutable AST node classes.

The PBE engine's hot path is dominated by membership queries whose results
are memoised per AST node.  Before interning, structurally identical regexes
built at different times (most notably the over-/under-approximations that
:func:`repro.synthesis.approximate.approximate_partial` constructs on every
pruning check) were distinct objects, so no memo entry was ever shared and
id-keyed caches needed keep-alive lists to stay sound.

:class:`InternedMeta` fixes this at the construction site: every call to an
interned dataclass constructor returns *the* canonical instance for its field
values, so structural equality coincides with object identity.  That makes

* equality O(1) (identity),
* hashing O(1) (cached at interning time),
* and any ``dict``/``set`` keyed by nodes automatically shared across all
  producers of equal structure — across candidates, across ``infeasible``
  calls, and across worklist generations.

The intern tables hold their values weakly, so nodes are reclaimed once the
last external reference dies; caches keyed by nodes should likewise use weak
keys (or live on objects with a bounded lifetime, like a per-subject matcher).

Interning is process-global and the service's worker pool constructs nodes
from many threads, so inserts are serialised through
:data:`repro.caches.CACHE_LOCK`: if two threads race past the lock-free
lookup, only one candidate is published and both threads return it — a second
"canonical" object for the same structure would break identity equality for
the rest of the process.  Lookups stay lock-free (safe under the GIL; a
published entry never changes).
"""

from __future__ import annotations

from typing import Any, Tuple

from repro import caches


class InternedMeta(type):
    """Metaclass interning every instance of its (frozen-dataclass) classes.

    Construction runs the class's normal ``__init__``/``__post_init__``
    (validation and argument normalisation included), then the canonical
    instance for the resulting field values is looked up; the freshly built
    object is discarded in favour of the canonical one when it already
    exists.  Field values must be hashable — which the AST invariantly
    guarantees (children are themselves interned, integer arguments and
    labels are immutable).
    """

    def __new__(mcls, name, bases, namespace, **kwargs):
        cls = super().__new__(mcls, name, bases, namespace, **kwargs)
        cls._intern_table = caches.register_cache(
            f"{namespace.get('__module__', 'repro')}.{name}._intern_table",
            caches.GuardedWeakValueDictionary(),
        )
        return cls

    def __call__(cls, *args: Any, **kwargs: Any):
        # Fast path: positional args in already-normalised form *are* the
        # field tuple, so probe the table before paying for a candidate
        # construction that a hit would discard.  A stored key always has
        # full field arity, so defaulted/unnormalised/unhashable args simply
        # miss and fall through to the slow path.  Bool/float args must also
        # miss: ``True == 1`` and ``1.0 == 1``, so they would hit the entry
        # of a live int-keyed node and skip the validation that rejects them
        # (reachable whenever a strong cache keeps the node alive).
        table = cls._intern_table
        probe = not kwargs
        if probe:
            for arg in args:
                if arg.__class__ is bool or arg.__class__ is float:
                    probe = False
                    break
        if probe:
            try:
                # table.data maps key -> KeyedRef; probing it directly skips
                # WeakValueDictionary.get's Python frame on this hot path.
                ref = table.data.get(args)
            except TypeError:  # unhashable arg (e.g. a list of children)
                ref = None
            if ref is not None:
                canonical = ref()
                if canonical is not None:
                    return canonical
        candidate = super().__call__(*args, **kwargs)
        fields = getattr(cls, "__dataclass_fields__", None)
        if fields is None:  # abstract bases are never interned
            return candidate
        key = tuple(getattr(candidate, name) for name in fields)
        canonical = table.get(key)
        if canonical is not None:
            return canonical
        object.__setattr__(candidate, "_hash", hash((cls, key)))
        # Serialised publish: a racing thread may have interned an equal
        # candidate since the lock-free lookup above; the first insert wins
        # and every constructor call returns that canonical object.
        return caches.cache_insert(table, key, candidate)


def _interned_hash(self) -> int:
    return self._hash


def _interned_eq(self, other) -> bool:
    # Interning guarantees equal structure <=> same object (pickling included,
    # see _interned_reduce), so identity is a sound and O(1) equality.
    return self is other


def _interned_ne(self, other) -> bool:
    return self is not other


def _interned_reduce(self) -> Tuple[type, tuple]:
    # Reconstruct through the constructor so unpickling re-interns: field
    # order matches the constructors' positional arguments for every AST node.
    cls = type(self)
    return cls, tuple(getattr(self, name) for name in cls.__dataclass_fields__)


def freeze_interned(*classes: type) -> None:
    """Install identity equality, cached hashing, and re-interning pickling.

    Must run after the ``@dataclass`` decorators (which generate structural
    ``__eq__``/``__hash__`` that this replaces) and **before** the first
    instance is created, so that the intern tables only ever see the cached
    hash function.
    """
    for cls in classes:
        cls.__hash__ = _interned_hash
        cls.__eq__ = _interned_eq
        cls.__ne__ = _interned_ne
        cls.__reduce__ = _interned_reduce


def intern_table_sizes(*classes: type) -> dict:
    """Live canonical-instance counts per class (diagnostics / tests)."""
    return {cls.__name__: len(cls._intern_table) for cls in classes}


def check_intern_tables(*classes: type) -> int:
    """Verify intern-table consistency; returns the number of entries checked.

    For every live entry the table key must equal the instance's field tuple,
    the cached hash must match, and re-running the constructor must return
    the *same object* — the invariant a lost insert race would break.  Raises
    ``AssertionError`` on the first violation.
    """
    checked = 0
    for cls in classes:
        fields = getattr(cls, "__dataclass_fields__", None)
        if fields is None:
            continue
        with caches.CACHE_LOCK:
            entries = list(cls._intern_table.items())
        for key, node in entries:
            actual = tuple(getattr(node, name) for name in fields)
            if actual != key:
                raise AssertionError(
                    f"{cls.__name__} intern entry keyed {key!r} holds fields {actual!r}"
                )
            if hash(node) != hash((cls, key)):
                raise AssertionError(f"{cls.__name__} cached hash drifted for {node!r}")
            if cls(*actual) is not node:
                raise AssertionError(
                    f"{cls.__name__}{actual!r} re-interned to a distinct object"
                )
            checked += 1
    return checked
