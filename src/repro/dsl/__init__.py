"""Regex DSL used by Regel (Figure 5 of the paper).

This package defines the abstract syntax tree of the regex DSL, its exact
matching semantics (Figure 6), a pretty printer, a parser for the textual
DSL notation, and structural utilities (size, depth, simplification).

The DSL is equivalent in expressive power to regular languages but exposes
higher-level operators (``Contains``, ``StartsWith``, ``EndsWith``, ``Not``,
``And``, the ``Repeat`` family) that map more directly onto natural-language
descriptions.
"""

from repro.dsl.charclass import (
    CharClassKind,
    ALL_CHAR_CLASSES,
    PRINTABLE_ALPHABET,
    chars_of,
    literal_kind,
)
from repro.dsl.ast import (
    Regex,
    CharClass,
    Epsilon,
    EmptySet,
    StartsWith,
    EndsWith,
    Contains,
    Not,
    Optional,
    KleeneStar,
    Concat,
    Or,
    And,
    Repeat,
    RepeatAtLeast,
    RepeatRange,
    NUM,
    LET,
    CAP,
    LOW,
    ANY,
    ALPHANUM,
    HEX,
    VOW,
    SPEC,
    literal,
    concat_all,
    or_all,
)
from repro.dsl.semantics import matches, Matcher, RecursiveMatcher
from repro.dsl.printer import to_dsl_string, to_python_regex, UnsupportedConstructError
from repro.dsl.parser import parse_regex, RegexParseError
from repro.dsl.simplify import size, depth, operators_used, simplify

__all__ = [
    "CharClassKind",
    "ALL_CHAR_CLASSES",
    "PRINTABLE_ALPHABET",
    "chars_of",
    "literal_kind",
    "Regex",
    "CharClass",
    "Epsilon",
    "EmptySet",
    "StartsWith",
    "EndsWith",
    "Contains",
    "Not",
    "Optional",
    "KleeneStar",
    "Concat",
    "Or",
    "And",
    "Repeat",
    "RepeatAtLeast",
    "RepeatRange",
    "NUM",
    "LET",
    "CAP",
    "LOW",
    "ANY",
    "ALPHANUM",
    "HEX",
    "VOW",
    "SPEC",
    "literal",
    "concat_all",
    "or_all",
    "matches",
    "Matcher",
    "RecursiveMatcher",
    "to_dsl_string",
    "to_python_regex",
    "UnsupportedConstructError",
    "parse_regex",
    "RegexParseError",
    "size",
    "depth",
    "operators_used",
    "simplify",
]
