"""Parser for the textual DSL notation produced by :func:`repro.dsl.printer.to_dsl_string`.

The grammar is the obvious one:

.. code-block:: text

    regex     := charclass | '<eps>' | '<null>' | op '(' args ')'
    charclass := '<num>' | '<let>' | ... | '<' single-character '>'
    args      := regex (',' regex)* (',' integer)*

Datasets and gold sketches store regexes in this notation, so the parser is a
load-bearing part of the reproduction, not just a convenience.
"""

from __future__ import annotations

from typing import Callable

from repro.dsl import ast
from repro.dsl.charclass import CharClassKind


class RegexParseError(ValueError):
    """Raised when a DSL string cannot be parsed."""


_CLASS_BY_NAME = {kind.value: kind for kind in CharClassKind}

#: Named single-character literals that would be awkward to write verbatim.
_NAMED_LITERALS = {"<space>": " ", "<tab>": "\t", "<comma>": ","}

_OPERATORS: dict[str, Callable[..., ast.Regex]] = {
    "StartsWith": ast.StartsWith,
    "EndsWith": ast.EndsWith,
    "Contains": ast.Contains,
    "Not": ast.Not,
    "Optional": ast.Optional,
    "KleeneStar": ast.KleeneStar,
    "Star": ast.KleeneStar,
    "Concat": ast.Concat,
    "Or": ast.Or,
    "And": ast.And,
    "Repeat": ast.Repeat,
    "RepeatAtLeast": ast.RepeatAtLeast,
    "RepeatRange": ast.RepeatRange,
}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> RegexParseError:
        return RegexParseError(f"{message} at position {self.pos} in {self.text!r}")

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return "" if self.eof() else self.text[self.pos]

    def skip_ws(self) -> None:
        while not self.eof() and self.text[self.pos] in " \n":
            self.pos += 1

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.eof() or self.text[self.pos] != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def parse(self) -> ast.Regex:
        regex = self.parse_regex()
        self.skip_ws()
        if not self.eof():
            raise self.error("trailing input")
        return regex

    def parse_regex(self) -> ast.Regex:
        self.skip_ws()
        if self.peek() == "<":
            return self.parse_charclass()
        name = self.parse_name()
        if name not in _OPERATORS:
            raise self.error(f"unknown operator {name!r}")
        self.expect("(")
        args: list[ast.Regex] = []
        ints: list[int] = []
        while True:
            self.skip_ws()
            if self.peek() == ")":
                break
            if self.peek().isdigit():
                ints.append(self.parse_int())
            else:
                if ints:
                    raise self.error("regex argument after integer argument")
                args.append(self.parse_regex())
            self.skip_ws()
            if self.peek() == ",":
                self.pos += 1
                continue
            break
        self.expect(")")
        return self.build(name, args, ints)

    def build(self, name: str, args: list[ast.Regex], ints: list[int]) -> ast.Regex:
        ctor = _OPERATORS[name]
        try:
            return ctor(*args, *ints)
        except (TypeError, ValueError) as exc:
            raise self.error(f"bad arguments for {name}: {exc}") from exc

    def parse_name(self) -> str:
        self.skip_ws()
        start = self.pos
        while not self.eof() and (self.text[self.pos].isalpha()):
            self.pos += 1
        if start == self.pos:
            raise self.error("expected an operator name")
        return self.text[start:self.pos]

    def parse_int(self) -> int:
        start = self.pos
        while not self.eof() and self.text[self.pos].isdigit():
            self.pos += 1
        return int(self.text[start:self.pos])

    def parse_charclass(self) -> ast.Regex:
        # Find the matching '>'.  Literal '<' and '>' classes are written
        # '<<>' and '<>>' respectively.
        start = self.pos
        end = self.text.find(">", self.pos + 2)
        if self.text[self.pos : self.pos + 3] in ("<<>", "<>>"):
            end = self.pos + 2
        if end == -1:
            raise self.error("unterminated character class")
        token = self.text[start : end + 1]
        self.pos = end + 1
        if token == "<eps>":
            return ast.Epsilon()
        if token == "<null>":
            return ast.EmptySet()
        if token in _CLASS_BY_NAME:
            return ast.CharClass(_CLASS_BY_NAME[token])
        if token in _NAMED_LITERALS:
            return ast.CharClass(_NAMED_LITERALS[token])
        inner = token[1:-1]
        if len(inner) != 1:
            raise RegexParseError(f"unknown character class {token!r}")
        return ast.CharClass(inner)


def parse_regex(text: str) -> ast.Regex:
    """Parse the textual DSL notation into a regex AST."""
    return _Parser(text).parse()
