"""Abstract syntax tree of the regex DSL (Figure 5 of the paper).

All nodes are immutable, hashable, and **hash-consed**: constructing a node
whose field values equal an existing node's returns that existing (canonical)
object, so structural equality coincides with identity (see
:mod:`repro.dsl.intern`).  This is what lets the evaluation layer memoise
per ``(node, subject)`` and get cache hits across candidate regexes.
Constructors perform light validation (e.g. the ``Repeat`` family requires
positive integer arguments, as the paper mandates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.dsl.charclass import CharClassKind, class_display, literal_kind
from repro.dsl.intern import InternedMeta, freeze_interned


class Regex(metaclass=InternedMeta):
    """Base class for every node of the regex DSL."""

    __slots__ = ()

    def children(self) -> tuple["Regex", ...]:
        """Return the regex sub-terms of this node (integer arguments excluded)."""
        return ()

    def walk(self) -> Iterator["Regex"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    # The concrete string form is defined in repro.dsl.printer; __repr__
    # delegates there so debugging output matches the paper's notation.
    def __repr__(self) -> str:
        from repro.dsl.printer import to_dsl_string

        return to_dsl_string(self)


@dataclass(frozen=True, repr=False)
class CharClass(Regex):
    """A character class: a predefined family or a single-character literal."""

    kind: "CharClassKind | str"

    def __post_init__(self) -> None:
        if not isinstance(self.kind, CharClassKind):
            object.__setattr__(self, "kind", literal_kind(self.kind))

    @property
    def display(self) -> str:
        return class_display(self.kind)


@dataclass(frozen=True, repr=False)
class Epsilon(Regex):
    """The regex matching exactly the empty string."""


@dataclass(frozen=True, repr=False)
class EmptySet(Regex):
    """The regex matching no string at all."""


@dataclass(frozen=True, repr=False)
class StartsWith(Regex):
    """Matches strings with a prefix matching the argument."""

    arg: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.arg,)


@dataclass(frozen=True, repr=False)
class EndsWith(Regex):
    """Matches strings with a suffix matching the argument."""

    arg: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.arg,)


@dataclass(frozen=True, repr=False)
class Contains(Regex):
    """Matches strings with a substring matching the argument."""

    arg: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.arg,)


@dataclass(frozen=True, repr=False)
class Not(Regex):
    """Matches strings that do *not* match the argument."""

    arg: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.arg,)


@dataclass(frozen=True, repr=False)
class Optional(Regex):
    """Matches the empty string or any string matching the argument."""

    arg: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.arg,)


@dataclass(frozen=True, repr=False)
class KleeneStar(Regex):
    """Matches zero or more repetitions of the argument."""

    arg: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.arg,)


@dataclass(frozen=True, repr=False)
class Concat(Regex):
    """Matches the concatenation of a string matching ``left`` and one matching ``right``."""

    left: Regex
    right: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, repr=False)
class Or(Regex):
    """Matches strings matched by either argument."""

    left: Regex
    right: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, repr=False)
class And(Regex):
    """Matches strings matched by both arguments."""

    left: Regex
    right: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.left, self.right)


def _check_positive(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(f"{name} requires a positive integer argument, got {value!r}")


@dataclass(frozen=True, repr=False)
class Repeat(Regex):
    """Matches exactly ``count`` repetitions of the argument."""

    arg: Regex
    count: int

    def __post_init__(self) -> None:
        _check_positive("Repeat", self.count)

    def children(self) -> tuple[Regex, ...]:
        return (self.arg,)


@dataclass(frozen=True, repr=False)
class RepeatAtLeast(Regex):
    """Matches at least ``count`` repetitions of the argument."""

    arg: Regex
    count: int

    def __post_init__(self) -> None:
        _check_positive("RepeatAtLeast", self.count)

    def children(self) -> tuple[Regex, ...]:
        return (self.arg,)


@dataclass(frozen=True, repr=False)
class RepeatRange(Regex):
    """Matches between ``low`` and ``high`` repetitions of the argument."""

    arg: Regex
    low: int
    high: int

    def __post_init__(self) -> None:
        _check_positive("RepeatRange", self.low)
        _check_positive("RepeatRange", self.high)
        if self.low > self.high:
            raise ValueError(
                f"RepeatRange requires low <= high, got ({self.low}, {self.high})"
            )

    def children(self) -> tuple[Regex, ...]:
        return (self.arg,)


#: Every concrete node class, in definition order (used for interning setup
#: and by generic tooling such as the property-test regex generator).
NODE_CLASSES = (
    CharClass,
    Epsilon,
    EmptySet,
    StartsWith,
    EndsWith,
    Contains,
    Not,
    Optional,
    KleeneStar,
    Concat,
    Or,
    And,
    Repeat,
    RepeatAtLeast,
    RepeatRange,
)

# Replace the dataclass-generated structural __eq__/__hash__ with the O(1)
# interned versions.  This must happen before the first node is constructed
# (i.e. before the singletons below).
freeze_interned(*NODE_CLASSES)


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

#: Predefined character-class singletons, matching the paper's notation.
NUM = CharClass(CharClassKind.NUM)
LET = CharClass(CharClassKind.LET)
CAP = CharClass(CharClassKind.CAP)
LOW = CharClass(CharClassKind.LOW)
ANY = CharClass(CharClassKind.ANY)
ALPHANUM = CharClass(CharClassKind.ALPHANUM)
HEX = CharClass(CharClassKind.HEX)
VOW = CharClass(CharClassKind.VOW)
SPEC = CharClass(CharClassKind.SPEC)


def literal(char: str) -> CharClass:
    """Build a single-character literal character class, e.g. ``literal('.')``."""
    return CharClass(char)


def string_literal(text: str) -> Regex:
    """Build a regex matching exactly ``text`` (a concatenation of literals)."""
    if not text:
        return Epsilon()
    return concat_all([literal(c) for c in text])


def concat_all(parts: Sequence[Regex] | Iterable[Regex]) -> Regex:
    """Right-associated concatenation of an arbitrary number of regexes."""
    parts = list(parts)
    if not parts:
        return Epsilon()
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = Concat(part, result)
    return result


def or_all(parts: Sequence[Regex] | Iterable[Regex]) -> Regex:
    """Right-associated union of an arbitrary number of regexes."""
    parts = list(parts)
    if not parts:
        return EmptySet()
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = Or(part, result)
    return result


#: Operators without integer arguments, keyed by arity (the ``F_n`` sets of the paper).
UNARY_OPERATORS = (StartsWith, EndsWith, Contains, Not, Optional, KleeneStar)
BINARY_OPERATORS = (Concat, Or, And)

#: Operators with integer arguments (the ``G_n`` sets of the paper), as
#: (constructor, number of integer arguments) pairs.
INT_OPERATORS = ((Repeat, 1), (RepeatAtLeast, 1), (RepeatRange, 2))
