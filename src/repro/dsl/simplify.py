"""Structural utilities and light simplification for DSL regexes.

``size``/``depth``/``operators_used`` are used for dataset statistics
(Section 7 of the paper reports average regex sizes) and for ranking
synthesized regexes by simplicity.  :func:`simplify` applies a handful of
semantics-preserving rewrites that remove obviously redundant structure from
enumerated candidates before they are shown to the user.
"""

from __future__ import annotations

from repro.dsl import ast


def size(regex: ast.Regex) -> int:
    """Number of AST nodes in the regex (integer arguments not counted)."""
    return 1 + sum(size(child) for child in regex.children())


def depth(regex: ast.Regex) -> int:
    """Height of the regex AST (a leaf has depth 1)."""
    children = regex.children()
    if not children:
        return 1
    return 1 + max(depth(child) for child in children)


def operators_used(regex: ast.Regex) -> set[str]:
    """The set of operator names (non-leaf constructors) used in the regex."""
    ops: set[str] = set()
    for node in regex.walk():
        if node.children():
            ops.add(type(node).__name__)
    return ops


def char_classes_used(regex: ast.Regex) -> set[ast.CharClass]:
    """The set of character-class leaves occurring in the regex."""
    return {node for node in regex.walk() if isinstance(node, ast.CharClass)}


def simplify(regex: ast.Regex) -> ast.Regex:
    """Apply semantics-preserving simplification rewrites bottom-up.

    The rewrites are deliberately conservative: they only remove structure
    that is redundant for *every* string (e.g. ``Or(r, r) -> r``,
    ``Optional(Optional(r)) -> Optional(r)``, double negation,
    ``Repeat(r, 1) -> r``).
    """
    rewritten = _rebuild(regex, [simplify(child) for child in regex.children()])

    if isinstance(rewritten, ast.Or) and rewritten.left == rewritten.right:
        return rewritten.left
    if isinstance(rewritten, ast.And) and rewritten.left == rewritten.right:
        return rewritten.left
    if isinstance(rewritten, ast.Not) and isinstance(rewritten.arg, ast.Not):
        return rewritten.arg.arg
    if isinstance(rewritten, ast.Optional) and isinstance(rewritten.arg, ast.Optional):
        return rewritten.arg
    if isinstance(rewritten, ast.Optional) and isinstance(rewritten.arg, ast.KleeneStar):
        return rewritten.arg
    if isinstance(rewritten, ast.KleeneStar) and isinstance(rewritten.arg, ast.KleeneStar):
        return rewritten.arg
    if isinstance(rewritten, ast.KleeneStar) and isinstance(rewritten.arg, ast.Optional):
        return ast.KleeneStar(rewritten.arg.arg)
    if isinstance(rewritten, ast.Repeat) and rewritten.count == 1:
        return rewritten.arg
    if isinstance(rewritten, ast.RepeatRange) and rewritten.low == rewritten.high:
        return simplify(ast.Repeat(rewritten.arg, rewritten.low))
    if isinstance(rewritten, ast.Concat) and isinstance(rewritten.left, ast.Epsilon):
        return rewritten.right
    if isinstance(rewritten, ast.Concat) and isinstance(rewritten.right, ast.Epsilon):
        return rewritten.left
    if isinstance(rewritten, ast.Or) and isinstance(rewritten.left, ast.EmptySet):
        return rewritten.right
    if isinstance(rewritten, ast.Or) and isinstance(rewritten.right, ast.EmptySet):
        return rewritten.left
    return rewritten


def _rebuild(node: ast.Regex, children: list[ast.Regex]) -> ast.Regex:
    """Reconstruct ``node`` with new regex children, preserving integer args."""
    if not children:
        return node
    if isinstance(node, (ast.StartsWith, ast.EndsWith, ast.Contains, ast.Not,
                         ast.Optional, ast.KleeneStar)):
        return type(node)(children[0])
    if isinstance(node, (ast.Concat, ast.Or, ast.And)):
        return type(node)(children[0], children[1])
    if isinstance(node, ast.Repeat):
        return ast.Repeat(children[0], node.count)
    if isinstance(node, ast.RepeatAtLeast):
        return ast.RepeatAtLeast(children[0], node.count)
    if isinstance(node, ast.RepeatRange):
        return ast.RepeatRange(children[0], node.low, node.high)
    raise TypeError(f"unknown regex node: {node!r}")


# ---------------------------------------------------------------------------
# DSL-coverage analyses (footnote 9 of the paper)
# ---------------------------------------------------------------------------

def expressible_in_flashfill(regex: ast.Regex) -> bool:
    """Whether the regex fits the FlashFill token-sequence fragment.

    When mapped onto this DSL, FlashFill patterns have the shape
    ``Concat(S1, ..., Sn)`` where every ``Si`` is ``RepeatAtLeast(c, 1)`` for
    a character class ``c`` (Section 9 of the paper).
    """
    parts = _flatten_concat(regex)
    return all(
        isinstance(part, ast.RepeatAtLeast)
        and part.count == 1
        and isinstance(part.arg, ast.CharClass)
        for part in parts
    )


def expressible_in_fidex(regex: ast.Regex) -> bool:
    """Whether the regex fits the Fidex DSL fragment.

    Fidex supports concatenations of character-class tokens with bounded or
    at-least-one repetition and literal characters, but no Kleene star over
    composite regexes, no ``Not``/``And``, and no nested composition.
    """
    parts = _flatten_concat(regex)
    for part in parts:
        if isinstance(part, ast.CharClass):
            continue
        if isinstance(part, (ast.Repeat, ast.RepeatAtLeast)) and isinstance(
            part.arg, ast.CharClass
        ):
            continue
        if isinstance(part, ast.RepeatRange) and isinstance(part.arg, ast.CharClass):
            continue
        return False
    return True


def _flatten_concat(regex: ast.Regex) -> list[ast.Regex]:
    if isinstance(regex, ast.Concat):
        return _flatten_concat(regex.left) + _flatten_concat(regex.right)
    return [regex]
