"""Exact matching semantics of the regex DSL (Figure 6 of the paper).

The matcher evaluates ``[[r]](s)`` directly on the AST with memoisation over
``(node, start, end)`` sub-problems.  Because the DSL includes ``Not`` and
``And``, a direct boolean evaluation is both simpler and faster than going
through automata for the short example strings used during synthesis; the
automata-based evaluation in :mod:`repro.automata` is used when language-level
reasoning (complement, equivalence, sampling) is needed.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.dsl import ast
from repro.dsl.charclass import chars_of


class Matcher:
    """Memoised matcher for one subject string.

    A :class:`Matcher` is specialised to a single string ``s`` and can answer
    ``[[r]](s[i:j])`` queries for many regexes; the memo table is shared across
    queries, which is the common access pattern of the PBE engine (many
    candidate regexes evaluated against the same handful of examples).
    """

    def __init__(self, subject: str):
        self.subject = subject
        self._memo: Dict[Tuple[int, int, int], bool] = {}
        # Memo keys use id(node); keep every queried regex alive so node ids
        # are never recycled while their cached entries are still present.
        self._roots: list[ast.Regex] = []

    def matches(self, regex: ast.Regex) -> bool:
        """Return True iff ``regex`` matches the whole subject string."""
        self._roots.append(regex)
        return self._eval(regex, 0, len(self.subject))

    # -- internal ----------------------------------------------------------

    def _eval(self, regex: ast.Regex, i: int, j: int) -> bool:
        key = (id(regex), i, j)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Seed the memo with False to cut (impossible) cyclic re-entry short;
        # the DSL has no recursive references so this is purely defensive.
        self._memo[key] = False
        result = self._eval_uncached(regex, i, j)
        self._memo[key] = result
        return result

    def _eval_uncached(self, regex: ast.Regex, i: int, j: int) -> bool:
        s = self.subject
        if isinstance(regex, ast.CharClass):
            return j - i == 1 and s[i] in chars_of(regex.kind)
        if isinstance(regex, ast.Epsilon):
            return i == j
        if isinstance(regex, ast.EmptySet):
            return False
        if isinstance(regex, ast.StartsWith):
            return any(self._eval(regex.arg, i, k) for k in range(i, j + 1))
        if isinstance(regex, ast.EndsWith):
            return any(self._eval(regex.arg, k, j) for k in range(i, j + 1))
        if isinstance(regex, ast.Contains):
            return any(
                self._eval(regex.arg, a, b)
                for a in range(i, j + 1)
                for b in range(a, j + 1)
            )
        if isinstance(regex, ast.Not):
            return not self._eval(regex.arg, i, j)
        if isinstance(regex, ast.Optional):
            return i == j or self._eval(regex.arg, i, j)
        if isinstance(regex, ast.KleeneStar):
            return self._eval_star(regex, regex.arg, i, j)
        if isinstance(regex, ast.Concat):
            return any(
                self._eval(regex.left, i, k) and self._eval(regex.right, k, j)
                for k in range(i, j + 1)
            )
        if isinstance(regex, ast.Or):
            return self._eval(regex.left, i, j) or self._eval(regex.right, i, j)
        if isinstance(regex, ast.And):
            return self._eval(regex.left, i, j) and self._eval(regex.right, i, j)
        if isinstance(regex, ast.Repeat):
            return self._eval_repeat(regex.arg, regex.count, i, j)
        if isinstance(regex, ast.RepeatAtLeast):
            # RepeatAtLeast(r, k) == Concat(Repeat(r, k), KleeneStar(r))
            return any(
                self._eval_repeat(regex.arg, regex.count, i, k)
                and self._eval_star(regex, regex.arg, k, j)
                for k in range(i, j + 1)
            )
        if isinstance(regex, ast.RepeatRange):
            return any(
                self._eval_repeat(regex.arg, k, i, j)
                for k in range(regex.low, regex.high + 1)
            )
        raise TypeError(f"unknown regex node: {regex!r}")

    def _eval_star(self, star_key: ast.Regex, arg: ast.Regex, i: int, j: int) -> bool:
        """Kleene-star evaluation over s[i:j] with non-empty leading pieces."""
        if i == j:
            return True
        key = (id(star_key), i, j, "star")
        cached = self._memo.get(key)  # type: ignore[arg-type]
        if cached is not None:
            return cached
        self._memo[key] = False  # type: ignore[index]
        result = any(
            self._eval(arg, i, k) and self._eval_star(star_key, arg, k, j)
            for k in range(i + 1, j + 1)
        )
        self._memo[key] = result  # type: ignore[index]
        return result

    def _eval_repeat(self, arg: ast.Regex, count: int, i: int, j: int) -> bool:
        """Exactly ``count`` consecutive pieces each matching ``arg`` over s[i:j]."""
        key = (id(arg), i, j, "repeat", count)
        cached = self._memo.get(key)  # type: ignore[arg-type]
        if cached is not None:
            return cached
        if count == 1:
            result = self._eval(arg, i, j)
        else:
            result = any(
                self._eval(arg, i, k) and self._eval_repeat(arg, count - 1, k, j)
                for k in range(i, j + 1)
            )
        self._memo[key] = result  # type: ignore[index]
        return result


def matches(regex: ast.Regex, subject: str) -> bool:
    """Return True iff ``regex`` matches the whole string ``subject``.

    This is the stateless convenience wrapper around :class:`Matcher`; callers
    that evaluate many regexes against the same string should create a
    :class:`Matcher` once and reuse it.
    """
    return Matcher(subject).matches(regex)
