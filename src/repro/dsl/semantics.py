"""Exact matching semantics of the regex DSL (Figure 6 of the paper).

Three evaluators implement ``[[r]](s)``:

* :class:`Matcher` — the default **match-set** evaluator.  For each regex
  node it computes, bottom-up and exactly once per ``(node, subject)`` pair,
  the complete relation "``s[i:j]`` matches the node" as one integer bitmask
  of end positions ``j`` per start index ``i``.  Boolean connectives
  (``Or``/``And``/``Not``) become bitwise operations on whole rows,
  ``Concat``/``KleeneStar``/the ``Repeat`` family become span composition,
  and ``StartsWith``/``EndsWith``/``Contains`` are O(1) mask tests per row.
  Because DSL nodes are hash-consed (:mod:`repro.dsl.intern`), structurally
  equal sub-regexes are the *same* object and share one table entry across
  all candidate regexes evaluated against the subject — which is the access
  pattern of the PBE engine (thousands of candidates, a handful of example
  strings).
* :class:`DfaMatcher` — the **compiled** evaluator and production default.
  Whole-string membership queries are dispatched to process-global automata
  compiled once per interned concrete subtree
  (:mod:`repro.automata.membership`); span queries (``match_sets`` /
  ``matches_span``) fall through to the inherited match-set composition.
  Subjects containing characters outside the printable alphabet, and
  regexes the automata backend refuses to compile, silently fall back to
  the match-set path — the evaluators are everywhere-equivalent and the
  three-way differential suite (``tests/test_eval_equivalence.py``) pins
  that.
* :class:`RecursiveMatcher` — the original per-``(node, i, j)`` boolean
  recursion, kept verbatim as an executable reference oracle for the
  evaluator-equivalence property tests and as the ``evaluator="recursive"``
  mode of :class:`repro.synthesis.examples.Examples`.

Automata-based evaluation (:mod:`repro.automata`) also remains the tool for
language-level reasoning (complement, equivalence, sampling).
"""

from __future__ import annotations

from functools import reduce
from operator import ior
from typing import Dict, List, Tuple

from repro.dsl import ast
from repro.dsl.charclass import PRINTABLE_ALPHABET, chars_of

#: Characters the automata backend can encode; subjects containing anything
#: else (rare: control characters in adversarial inputs) are evaluated by
#: the match-set path, whose semantics cover arbitrary characters.
_PRINTABLE_SET = frozenset(PRINTABLE_ALPHABET)

#: Lazily resolved :func:`repro.automata.membership.membership_automaton`.
#: The dsl package is the base layer, so the upward import happens on first
#: DfaMatcher construction rather than at module import.
_membership_automaton = None


def _resolve_membership():
    global _membership_automaton
    if _membership_automaton is None:
        from repro.automata.membership import membership_automaton

        _membership_automaton = membership_automaton
    return _membership_automaton


def _lowest_bit_index(mask: int) -> int:
    return (mask & -mask).bit_length() - 1


def _bit_indices(mask: int) -> Tuple[int, ...]:
    """Indices of the set bits of ``mask``, ascending."""
    indices = []
    while mask:
        low = mask & -mask
        mask ^= low
        indices.append(low.bit_length() - 1)
    return tuple(indices)


class Matcher:
    """Match-set evaluator specialised to a single subject string.

    A :class:`Matcher` can answer ``[[r]](s[i:j])`` queries for many regexes;
    the per-node match-set table is shared across queries.  ``cache_hits`` /
    ``cache_misses`` count node-table lookups and are surfaced through the
    engine's telemetry (:class:`repro.api.results.SketchReport`).
    """

    __slots__ = (
        "subject",
        "cache_hits",
        "cache_misses",
        "_n",
        "_sets",
        "_full",
        "_bits",
    )

    def __init__(self, subject: str):
        self.subject = subject
        n = len(subject)
        self._n = n
        #: node -> list of bitmasks; row ``i`` has bit ``j`` set iff
        #: ``subject[i:j]`` matches the node (invariant: only bits ``>= i``).
        self._sets: Dict[ast.Regex, List[int]] = {}
        all_bits = (1 << (n + 1)) - 1
        self._full = [all_bits & ~((1 << i) - 1) for i in range(n + 1)]
        #: mask -> tuple of set-bit indices.  Row masks repeat heavily across
        #: the node tables of one subject, so decoding each distinct mask once
        #: lets span composition run its inner loop through C (map/reduce)
        #: instead of a per-bit Python loop.
        self._bits: Dict[int, Tuple[int, ...]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def matches(self, regex: ast.Regex) -> bool:
        """Return True iff ``regex`` matches the whole subject string."""
        sets = self._sets.get(regex)
        if sets is None:
            sets = self.match_sets(regex)
        else:
            self.cache_hits += 1
        return bool((sets[0] >> self._n) & 1)

    def matches_span(self, regex: ast.Regex, i: int, j: int) -> bool:
        """Return True iff ``regex`` matches ``subject[i:j]``."""
        return bool((self.match_sets(regex)[i] >> j) & 1)

    def match_sets(self, regex: ast.Regex) -> List[int]:
        """The full match-set table of ``regex`` (do not mutate)."""
        sets = self._sets.get(regex)
        if sets is not None:
            self.cache_hits += 1
            return sets
        self.cache_misses += 1
        sets = self._compute(regex)
        self._sets[regex] = sets
        return sets

    # -- internal ----------------------------------------------------------

    def _compute(self, regex: ast.Regex) -> List[int]:
        n = self._n
        if isinstance(regex, ast.CharClass):
            chars = chars_of(regex.kind)
            subject = self.subject
            out = [0] * (n + 1)
            for i in range(n):
                if subject[i] in chars:
                    out[i] = 1 << (i + 1)
            return out
        if isinstance(regex, ast.Epsilon):
            return [1 << i for i in range(n + 1)]
        if isinstance(regex, ast.EmptySet):
            return [0] * (n + 1)
        if isinstance(regex, ast.StartsWith):
            # s[i:j] has a matching prefix iff the child's shortest match end
            # from i is <= j: a full tail-mask starting at that end position.
            child = self.match_sets(regex.arg)
            full = self._full
            return [full[_lowest_bit_index(m)] if m else 0 for m in child]
        if isinstance(regex, ast.EndsWith):
            # s[i:j] has a matching suffix iff some child match (k, j) exists
            # with k >= i: the suffix-OR of the child's rows.
            child = self.match_sets(regex.arg)
            out = [0] * (n + 1)
            acc = 0
            for i in range(n, -1, -1):
                acc |= child[i]
                out[i] = acc
            return out
        if isinstance(regex, ast.Contains):
            # s[i:j] has a matching substring iff the earliest child match end
            # over all starts >= i is <= j.
            child = self.match_sets(regex.arg)
            full = self._full
            out = [0] * (n + 1)
            acc = 0
            for i in range(n, -1, -1):
                acc |= child[i]
                if acc:
                    out[i] = full[_lowest_bit_index(acc)]
            return out
        if isinstance(regex, ast.Not):
            child = self.match_sets(regex.arg)
            full = self._full
            return [full[i] & ~child[i] for i in range(n + 1)]
        if isinstance(regex, ast.Optional):
            child = self.match_sets(regex.arg)
            return [child[i] | (1 << i) for i in range(n + 1)]
        if isinstance(regex, ast.KleeneStar):
            return self._star(self.match_sets(regex.arg))
        if isinstance(regex, ast.Concat):
            return self._compose(
                self.match_sets(regex.left), self.match_sets(regex.right)
            )
        if isinstance(regex, ast.Or):
            left = self.match_sets(regex.left)
            right = self.match_sets(regex.right)
            return [left[i] | right[i] for i in range(n + 1)]
        if isinstance(regex, ast.And):
            left = self.match_sets(regex.left)
            right = self.match_sets(regex.right)
            return [left[i] & right[i] for i in range(n + 1)]
        if isinstance(regex, ast.Repeat):
            # Computed as Repeat(r, c-1) . r so every power is itself an
            # interned node with a cached table: a RepeatRange sweep (and any
            # candidate family differing only in counts) reuses all of them.
            if regex.count == 1:
                return self.match_sets(regex.arg)
            prev = self.match_sets(ast.Repeat(regex.arg, regex.count - 1))
            return self._compose(prev, self.match_sets(regex.arg))
        if isinstance(regex, ast.RepeatAtLeast):
            # RepeatAtLeast(r, c) == Concat(Repeat(r, c), KleeneStar(r)).
            prefix = (
                self.match_sets(ast.Repeat(regex.arg, regex.count))
                if regex.count > 1
                else self.match_sets(regex.arg)
            )
            return self._compose(prefix, self.match_sets(ast.KleeneStar(regex.arg)))
        if isinstance(regex, ast.RepeatRange):
            out = list(self.match_sets(ast.Repeat(regex.arg, regex.low)))
            for count in range(regex.low + 1, regex.high + 1):
                rep = self.match_sets(ast.Repeat(regex.arg, count))
                out = [a | b for a, b in zip(out, rep)]
            return out
        raise TypeError(f"unknown regex node: {regex!r}")

    def _compose(self, left: List[int], right: List[int]) -> List[int]:
        """Span composition: out[i] bit j iff some k has left[i] bit k and right[k] bit j."""
        out = [0] * (self._n + 1)
        bits = self._bits
        getter = right.__getitem__
        for i in range(self._n, -1, -1):
            mask = left[i]
            if not mask:
                continue
            if not mask & (mask - 1):  # single span end: one row lookup
                out[i] = right[mask.bit_length() - 1]
                continue
            indices = bits.get(mask)
            if indices is None:
                indices = bits[mask] = _bit_indices(mask)
            out[i] = reduce(ior, map(getter, indices))
        return out

    def _star(self, child: List[int]) -> List[int]:
        """Reflexive-transitive closure of ``child`` steps (non-empty pieces)."""
        n = self._n
        out = [0] * (n + 1)
        out[n] = 1 << n
        bits = self._bits
        for i in range(n - 1, -1, -1):
            acc = 1 << i
            mask = child[i] & ~acc  # empty pieces add nothing
            if mask:
                indices = bits.get(mask)
                if indices is None:
                    indices = bits[mask] = _bit_indices(mask)
                acc = reduce(ior, map(out.__getitem__, indices), acc)
            out[i] = acc
        return out


class DfaMatcher(Matcher):
    """Match-set evaluator with compiled whole-string membership.

    ``matches`` — the engine's hot query (the approximation pruning loop is
    almost entirely whole-string membership) — runs the subject through a
    process-global automaton compiled once per interned regex
    (:mod:`repro.automata.membership`).  Everything else (``match_sets``,
    ``matches_span``, span composition for enclosing open nodes) is the
    inherited match-set machinery.  When the subject cannot be encoded or
    the regex cannot be compiled within budget, ``matches`` falls back to
    the inherited path, so the evaluator is a pure accelerator.
    """

    __slots__ = ("_accepts", "_automaton_of", "_encodable")

    def __init__(self, subject: str):
        super().__init__(subject)
        #: regex -> whole-string verdict; separate from the match-set table
        #: so a DFA answer never forces a table row to exist.
        self._accepts: Dict[ast.Regex, bool] = {}
        self._automaton_of = _resolve_membership()
        self._encodable = all(char in _PRINTABLE_SET for char in subject)

    def matches(self, regex: ast.Regex) -> bool:
        """Return True iff ``regex`` matches the whole subject string."""
        cached = self._accepts.get(regex)
        if cached is not None:
            self.cache_hits += 1
            return cached
        if not self._encodable:
            return super().matches(regex)
        automaton = self._automaton_of(regex)
        if automaton is None:
            return super().matches(regex)
        self.cache_misses += 1
        result = automaton.accepts(self.subject)
        self._accepts[regex] = result
        return result


class RecursiveMatcher:
    """The original memoised boolean recursion (reference oracle).

    Kept byte-for-byte equivalent to the pre-match-set implementation: memo
    keys use ``id(node)`` with a keep-alive list, and each ``(node, i, j)``
    sub-problem is decided independently.  Use :class:`Matcher` in production
    code; this class exists for differential testing and as the
    ``evaluator="recursive"`` baseline of the benchmark driver.
    """

    def __init__(self, subject: str):
        self.subject = subject
        self._memo: Dict[Tuple[int, int, int], bool] = {}
        # Memo keys use id(node); keep every queried regex alive so node ids
        # are never recycled while their cached entries are still present.
        self._roots: list[ast.Regex] = []

    def matches(self, regex: ast.Regex) -> bool:
        """Return True iff ``regex`` matches the whole subject string."""
        self._roots.append(regex)
        return self._eval(regex, 0, len(self.subject))

    # -- internal ----------------------------------------------------------

    def _eval(self, regex: ast.Regex, i: int, j: int) -> bool:
        key = (id(regex), i, j)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Seed the memo with False to cut (impossible) cyclic re-entry short;
        # the DSL has no recursive references so this is purely defensive.
        self._memo[key] = False
        result = self._eval_uncached(regex, i, j)
        self._memo[key] = result
        return result

    def _eval_uncached(self, regex: ast.Regex, i: int, j: int) -> bool:
        s = self.subject
        if isinstance(regex, ast.CharClass):
            return j - i == 1 and s[i] in chars_of(regex.kind)
        if isinstance(regex, ast.Epsilon):
            return i == j
        if isinstance(regex, ast.EmptySet):
            return False
        if isinstance(regex, ast.StartsWith):
            return any(self._eval(regex.arg, i, k) for k in range(i, j + 1))
        if isinstance(regex, ast.EndsWith):
            return any(self._eval(regex.arg, k, j) for k in range(i, j + 1))
        if isinstance(regex, ast.Contains):
            return any(
                self._eval(regex.arg, a, b)
                for a in range(i, j + 1)
                for b in range(a, j + 1)
            )
        if isinstance(regex, ast.Not):
            return not self._eval(regex.arg, i, j)
        if isinstance(regex, ast.Optional):
            return i == j or self._eval(regex.arg, i, j)
        if isinstance(regex, ast.KleeneStar):
            return self._eval_star(regex, regex.arg, i, j)
        if isinstance(regex, ast.Concat):
            return any(
                self._eval(regex.left, i, k) and self._eval(regex.right, k, j)
                for k in range(i, j + 1)
            )
        if isinstance(regex, ast.Or):
            return self._eval(regex.left, i, j) or self._eval(regex.right, i, j)
        if isinstance(regex, ast.And):
            return self._eval(regex.left, i, j) and self._eval(regex.right, i, j)
        if isinstance(regex, ast.Repeat):
            return self._eval_repeat(regex.arg, regex.count, i, j)
        if isinstance(regex, ast.RepeatAtLeast):
            # RepeatAtLeast(r, k) == Concat(Repeat(r, k), KleeneStar(r))
            return any(
                self._eval_repeat(regex.arg, regex.count, i, k)
                and self._eval_star(regex, regex.arg, k, j)
                for k in range(i, j + 1)
            )
        if isinstance(regex, ast.RepeatRange):
            return any(
                self._eval_repeat(regex.arg, k, i, j)
                for k in range(regex.low, regex.high + 1)
            )
        raise TypeError(f"unknown regex node: {regex!r}")

    def _eval_star(self, star_key: ast.Regex, arg: ast.Regex, i: int, j: int) -> bool:
        """Kleene-star evaluation over s[i:j] with non-empty leading pieces."""
        if i == j:
            return True
        key = (id(star_key), i, j, "star")
        cached = self._memo.get(key)  # type: ignore[arg-type]
        if cached is not None:
            return cached
        self._memo[key] = False  # type: ignore[index]
        result = any(
            self._eval(arg, i, k) and self._eval_star(star_key, arg, k, j)
            for k in range(i + 1, j + 1)
        )
        self._memo[key] = result  # type: ignore[index]
        return result

    def _eval_repeat(self, arg: ast.Regex, count: int, i: int, j: int) -> bool:
        """Exactly ``count`` consecutive pieces each matching ``arg`` over s[i:j]."""
        key = (id(arg), i, j, "repeat", count)
        cached = self._memo.get(key)  # type: ignore[arg-type]
        if cached is not None:
            return cached
        if count == 1:
            result = self._eval(arg, i, j)
        else:
            result = any(
                self._eval(arg, i, k) and self._eval_repeat(arg, count - 1, k, j)
                for k in range(i, j + 1)
            )
        self._memo[key] = result  # type: ignore[index]
        return result


def matches(regex: ast.Regex, subject: str) -> bool:
    """Return True iff ``regex`` matches the whole string ``subject``.

    This is the stateless convenience wrapper around :class:`Matcher`; callers
    that evaluate many regexes against the same string should create a
    :class:`Matcher` once and reuse it.
    """
    return Matcher(subject).matches(regex)
