"""Character classes of the regex DSL.

The paper's DSL supports predefined character classes (``<num>``, ``<let>``,
``<cap>``, ``<low>``, ``<any>``, ``<alphanum>``, ``<hex>``, ``<vow>``,
``<spec>``) as well as single-character literals (``<a>``, ``<,>`` ...).

We work over the printable-ASCII alphabet, which matches the paper's setting
("common ASCII characters").
"""

from __future__ import annotations

import string
from enum import Enum
from functools import lru_cache


#: The concrete alphabet all regexes are interpreted over.  Printable ASCII
#: minus a handful of characters that never occur in the datasets keeps the
#: automata small while preserving the semantics the paper relies on.
PRINTABLE_ALPHABET: str = (
    string.digits
    + string.ascii_letters
    + " .,:;-_/@#%&*+='\"!?()[]<>$^{}|\\~`\t"
)


class CharClassKind(Enum):
    """Predefined character-class families of the DSL."""

    NUM = "<num>"
    LET = "<let>"
    CAP = "<cap>"
    LOW = "<low>"
    ANY = "<any>"
    ALPHANUM = "<alphanum>"
    HEX = "<hex>"
    VOW = "<vow>"
    SPEC = "<spec>"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: All predefined (non-literal) character classes.
ALL_CHAR_CLASSES = tuple(CharClassKind)

_VOWELS = "aeiouAEIOU"
_SPECIALS = "".join(
    c for c in PRINTABLE_ALPHABET if not c.isalnum() and c not in " \t"
)

_CLASS_CHARS: dict[CharClassKind, frozenset[str]] = {
    CharClassKind.NUM: frozenset(string.digits),
    CharClassKind.LET: frozenset(string.ascii_letters),
    CharClassKind.CAP: frozenset(string.ascii_uppercase),
    CharClassKind.LOW: frozenset(string.ascii_lowercase),
    CharClassKind.ANY: frozenset(PRINTABLE_ALPHABET),
    CharClassKind.ALPHANUM: frozenset(string.digits + string.ascii_letters),
    CharClassKind.HEX: frozenset(string.hexdigits),
    CharClassKind.VOW: frozenset(_VOWELS),
    CharClassKind.SPEC: frozenset(_SPECIALS),
}


@lru_cache(maxsize=None)
def chars_of(kind: "CharClassKind | str") -> frozenset[str]:
    """Return the set of concrete characters denoted by a character class.

    ``kind`` is either a :class:`CharClassKind` or a single-character literal.
    """
    if isinstance(kind, CharClassKind):
        return _CLASS_CHARS[kind]
    if isinstance(kind, str) and len(kind) == 1:
        return frozenset(kind)
    raise ValueError(f"not a character class or single-character literal: {kind!r}")


def literal_kind(char: str) -> str:
    """Validate and normalise a literal character class (a single character)."""
    if not isinstance(char, str) or len(char) != 1:
        raise ValueError(f"literal character class must be a single character, got {char!r}")
    return char


def class_display(kind: "CharClassKind | str") -> str:
    """Human-readable ``<...>`` notation for a character class or literal."""
    if isinstance(kind, CharClassKind):
        return kind.value
    return f"<{kind}>"
