"""Pretty printing of DSL regexes.

Two output formats are supported:

* :func:`to_dsl_string` — the paper's own notation, e.g.
  ``Concat(RepeatRange(<num>,1,15),Optional(Concat(<.>,RepeatRange(<num>,1,3))))``.
  This form round-trips through :func:`repro.dsl.parser.parse_regex`.
* :func:`to_python_regex` — a standard Python ``re`` pattern suitable for
  ``re.fullmatch``, for the subset of the DSL that maps onto classical regex
  syntax (``Not`` and ``And`` require automata and raise
  :class:`UnsupportedConstructError`).
"""

from __future__ import annotations

import re as _re

from repro import caches
from repro.dsl import ast
from repro.dsl.charclass import CharClassKind


class UnsupportedConstructError(Exception):
    """Raised when a DSL construct has no classical-regex counterpart."""


#: Literal characters rendered with a readable name (kept in sync with the parser).
_NAMED_LITERAL_DISPLAY = {" ": "<space>", "\t": "<tab>"}

#: Rendered notation per interned node (weak keys: the cache follows the AST).
_DSL_STRING_CACHE: "caches.GuardedWeakKeyDictionary" = caches.register_cache(
    "repro.dsl.printer._DSL_STRING_CACHE", caches.GuardedWeakKeyDictionary()
)


def to_dsl_string(regex: ast.Regex) -> str:
    """Render a regex in the paper's DSL notation.

    Because nodes are hash-consed, the rendering is memoised per node (and
    therefore per shared subtree), which matters to result ranking and report
    serialisation on large candidate sets.
    """
    cached = _DSL_STRING_CACHE.get(regex)
    if cached is None:
        cached = caches.cache_insert(_DSL_STRING_CACHE, regex, _render_dsl_string(regex))
    return cached


def _render_dsl_string(regex: ast.Regex) -> str:
    if isinstance(regex, ast.CharClass):
        if isinstance(regex.kind, str) and regex.kind in _NAMED_LITERAL_DISPLAY:
            return _NAMED_LITERAL_DISPLAY[regex.kind]
        return regex.display
    if isinstance(regex, ast.Epsilon):
        return "<eps>"
    if isinstance(regex, ast.EmptySet):
        return "<null>"
    if isinstance(regex, ast.StartsWith):
        return f"StartsWith({to_dsl_string(regex.arg)})"
    if isinstance(regex, ast.EndsWith):
        return f"EndsWith({to_dsl_string(regex.arg)})"
    if isinstance(regex, ast.Contains):
        return f"Contains({to_dsl_string(regex.arg)})"
    if isinstance(regex, ast.Not):
        return f"Not({to_dsl_string(regex.arg)})"
    if isinstance(regex, ast.Optional):
        return f"Optional({to_dsl_string(regex.arg)})"
    if isinstance(regex, ast.KleeneStar):
        return f"KleeneStar({to_dsl_string(regex.arg)})"
    if isinstance(regex, ast.Concat):
        return f"Concat({to_dsl_string(regex.left)},{to_dsl_string(regex.right)})"
    if isinstance(regex, ast.Or):
        return f"Or({to_dsl_string(regex.left)},{to_dsl_string(regex.right)})"
    if isinstance(regex, ast.And):
        return f"And({to_dsl_string(regex.left)},{to_dsl_string(regex.right)})"
    if isinstance(regex, ast.Repeat):
        return f"Repeat({to_dsl_string(regex.arg)},{regex.count})"
    if isinstance(regex, ast.RepeatAtLeast):
        return f"RepeatAtLeast({to_dsl_string(regex.arg)},{regex.count})"
    if isinstance(regex, ast.RepeatRange):
        return f"RepeatRange({to_dsl_string(regex.arg)},{regex.low},{regex.high})"
    raise TypeError(f"unknown regex node: {regex!r}")


_CLASS_PATTERNS = {
    CharClassKind.NUM: "[0-9]",
    CharClassKind.LET: "[a-zA-Z]",
    CharClassKind.CAP: "[A-Z]",
    CharClassKind.LOW: "[a-z]",
    CharClassKind.ANY: ".",
    CharClassKind.ALPHANUM: "[0-9a-zA-Z]",
    CharClassKind.HEX: "[0-9a-fA-F]",
    CharClassKind.VOW: "[aeiouAEIOU]",
    CharClassKind.SPEC: r"[^0-9a-zA-Z \t]",
}


def to_python_regex(regex: ast.Regex) -> str:
    """Translate a DSL regex into a Python ``re`` pattern for ``re.fullmatch``.

    Raises :class:`UnsupportedConstructError` for ``Not`` and ``And``, which
    have no direct classical-regex counterpart (use :mod:`repro.automata`).
    """
    if isinstance(regex, ast.CharClass):
        if isinstance(regex.kind, CharClassKind):
            return _CLASS_PATTERNS[regex.kind]
        return _re.escape(regex.kind)
    if isinstance(regex, ast.Epsilon):
        return "(?:)"
    if isinstance(regex, ast.EmptySet):
        # A pattern that can never match any string.
        return "(?!)"
    if isinstance(regex, ast.StartsWith):
        return f"(?:{to_python_regex(regex.arg)}).*"
    if isinstance(regex, ast.EndsWith):
        return f".*(?:{to_python_regex(regex.arg)})"
    if isinstance(regex, ast.Contains):
        return f".*(?:{to_python_regex(regex.arg)}).*"
    if isinstance(regex, (ast.Not, ast.And)):
        raise UnsupportedConstructError(
            f"{type(regex).__name__} cannot be expressed as a classical regex pattern"
        )
    if isinstance(regex, ast.Optional):
        return f"(?:{to_python_regex(regex.arg)})?"
    if isinstance(regex, ast.KleeneStar):
        return f"(?:{to_python_regex(regex.arg)})*"
    if isinstance(regex, ast.Concat):
        return f"(?:{to_python_regex(regex.left)})(?:{to_python_regex(regex.right)})"
    if isinstance(regex, ast.Or):
        return f"(?:{to_python_regex(regex.left)}|{to_python_regex(regex.right)})"
    if isinstance(regex, ast.Repeat):
        return f"(?:{to_python_regex(regex.arg)}){{{regex.count}}}"
    if isinstance(regex, ast.RepeatAtLeast):
        return f"(?:{to_python_regex(regex.arg)}){{{regex.count},}}"
    if isinstance(regex, ast.RepeatRange):
        return f"(?:{to_python_regex(regex.arg)}){{{regex.low},{regex.high}}}"
    raise TypeError(f"unknown regex node: {regex!r}")
