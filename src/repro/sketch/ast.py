"""AST of the hierarchical sketch language (Figure 7 of the paper).

A sketch is one of:

* a **constrained hole** ``□{S1, .., Sm}`` (:class:`Hole`) — an unknown regex
  that must contain a completion of one of the component sketches as a leaf;
  the depth bound ``d`` is supplied by the synthesis engine (a configuration
  parameter, see the remark at the end of Section 3.2),
* an **operator applied to sketches** (:class:`OpSketch`), e.g.
  ``Concat(S1, S2)``,
* an **operator with integer arguments** (:class:`IntOpSketch`), whose integer
  arguments are either concrete or *symbolic integers* to be solved by the
  ``InferConstants`` procedure,
* a **concrete regex** (:class:`ConcreteRegexSketch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.dsl import ast as rast


#: Sketch-level operator names without integer arguments, keyed by arity.
UNARY_SKETCH_OPS = {
    "StartsWith": rast.StartsWith,
    "EndsWith": rast.EndsWith,
    "Contains": rast.Contains,
    "Not": rast.Not,
    "Optional": rast.Optional,
    "KleeneStar": rast.KleeneStar,
}
BINARY_SKETCH_OPS = {
    "Concat": rast.Concat,
    "Or": rast.Or,
    "And": rast.And,
}
#: Operator names with integer arguments -> (constructor, number of integers).
INT_SKETCH_OPS = {
    "Repeat": (rast.Repeat, 1),
    "RepeatAtLeast": (rast.RepeatAtLeast, 1),
    "RepeatRange": (rast.RepeatRange, 2),
}


class Sketch:
    """Base class of hierarchical sketches."""

    __slots__ = ()

    def __repr__(self) -> str:
        from repro.sketch.printer import sketch_to_string

        return sketch_to_string(self)


@dataclass(frozen=True, repr=False)
class Hole(Sketch):
    """A constrained hole ``□{S1, .., Sm}``.

    ``components`` may be empty, which denotes a completely unconstrained
    hole (this is how the pure-PBE baseline Regel-PBE starts its search).
    """

    components: tuple[Sketch, ...] = ()

    def __init__(self, components: Iterable[Sketch] = ()):
        object.__setattr__(self, "components", tuple(components))


@dataclass(frozen=True, repr=False)
class OpSketch(Sketch):
    """A DSL operator (without integer arguments) applied to sketches."""

    op: str
    args: tuple[Sketch, ...]

    def __init__(self, op: str, args: Iterable[Sketch]):
        args = tuple(args)
        if op in UNARY_SKETCH_OPS:
            expected = 1
        elif op in BINARY_SKETCH_OPS:
            expected = 2
        else:
            raise ValueError(f"unknown sketch operator {op!r}")
        if len(args) != expected:
            raise ValueError(f"{op} expects {expected} argument(s), got {len(args)}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)


@dataclass(frozen=True, repr=False)
class IntOpSketch(Sketch):
    """A Repeat-family operator applied to a sketch.

    ``ints`` holds the integer arguments; ``None`` entries are symbolic
    integers (the ``κ`` of the paper) to be solved during synthesis.
    """

    op: str
    arg: Sketch
    ints: tuple[Optional[int], ...]

    def __init__(self, op: str, arg: Sketch, ints: Optional[Sequence[Optional[int]]] = None):
        if op not in INT_SKETCH_OPS:
            raise ValueError(f"unknown integer-argument sketch operator {op!r}")
        _, count = INT_SKETCH_OPS[op]
        if ints is None:
            ints = (None,) * count
        ints = tuple(ints)
        if len(ints) != count:
            raise ValueError(f"{op} expects {count} integer argument(s), got {len(ints)}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "arg", arg)
        object.__setattr__(self, "ints", ints)


@dataclass(frozen=True, repr=False)
class ConcreteRegexSketch(Sketch):
    """A concrete regex used as a sketch component."""

    regex: rast.Regex


def concrete(regex: rast.Regex) -> ConcreteRegexSketch:
    """Wrap a concrete regex as a sketch."""
    return ConcreteRegexSketch(regex)


def hole(*components: "Sketch | rast.Regex") -> Hole:
    """Build a constrained hole, wrapping plain regexes as concrete sketches."""
    wrapped = tuple(
        component if isinstance(component, Sketch) else ConcreteRegexSketch(component)
        for component in components
    )
    return Hole(wrapped)
