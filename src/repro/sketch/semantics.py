"""Semantics of hierarchical sketches (Figure 8 of the paper).

``sketch_contains(sketch, regex, depth)`` decides whether a concrete regex
belongs to the language of an h-sketch.  The depth parameter bounds how deep
the completion of a constrained hole may be, mirroring the ``□^d`` annotation
of the paper (which Regel treats as a configuration parameter of the PBE
engine rather than part of the parser output).
"""

from __future__ import annotations

from repro.dsl import ast as rast
from repro.sketch import ast as sast


def sketch_contains(sketch: sast.Sketch, regex: rast.Regex, depth: int = 3) -> bool:
    """Return True iff ``regex`` is in the language of ``sketch``.

    ``depth`` is the bound ``d`` used for every constrained hole.
    """
    if isinstance(sketch, sast.ConcreteRegexSketch):
        return sketch.regex == regex
    if isinstance(sketch, sast.OpSketch):
        expected_type = (
            sast.UNARY_SKETCH_OPS.get(sketch.op) or sast.BINARY_SKETCH_OPS[sketch.op]
        )
        if type(regex) is not expected_type:
            return False
        children = regex.children()
        if len(children) != len(sketch.args):
            return False
        return all(
            sketch_contains(arg, child, depth)
            for arg, child in zip(sketch.args, children)
        )
    if isinstance(sketch, sast.IntOpSketch):
        ctor, _ = sast.INT_SKETCH_OPS[sketch.op]
        if type(regex) is not ctor:
            return False
        actual_ints = _int_args(regex)
        for expected, actual in zip(sketch.ints, actual_ints):
            if expected is not None and expected != actual:
                return False
        return sketch_contains(sketch.arg, regex.children()[0], depth)
    if isinstance(sketch, sast.Hole):
        return _hole_contains(sketch.components, regex, depth, allow_free_leaves=False)
    raise TypeError(f"unknown sketch node: {sketch!r}")


def _hole_contains(
    components: tuple[sast.Sketch, ...],
    regex: rast.Regex,
    depth: int,
    allow_free_leaves: bool,
) -> bool:
    """Membership in ``□^depth{components}`` per Figure 8.

    ``allow_free_leaves`` implements the ``□^{d-1}(C ∪ {S1..Sm})`` sets used
    for the sibling positions of the recursive case: in those positions a
    plain character class (or any regex built from character classes within
    the depth bound) is also acceptable.
    """
    # An unconstrained hole accepts any regex within the depth bound.
    if not components:
        return _depth_of(regex) <= depth

    # Case 1: the regex is a completion of one of the component sketches
    # (the component counts as a single "leaf" for the depth bound).
    if any(sketch_contains(component, regex, depth) for component in components):
        return True
    if allow_free_leaves and isinstance(regex, (rast.CharClass, rast.Epsilon)):
        return True
    if depth <= 1:
        return False

    # Case 2 (d > 1): the regex is an operator application where at least one
    # argument recursively satisfies the constrained hole and the remaining
    # arguments are built from character classes or hint components.
    children = regex.children()
    if not children:
        return False
    for index in range(len(children)):
        if not _hole_contains(components, children[index], depth - 1, allow_free_leaves=False):
            continue
        others_ok = all(
            _hole_contains(components, children[j], depth - 1, allow_free_leaves=True)
            for j in range(len(children))
            if j != index
        )
        if others_ok:
            return True
    return False


def _depth_of(regex: rast.Regex) -> int:
    children = regex.children()
    if not children:
        return 1
    return 1 + max(_depth_of(child) for child in children)


def _int_args(regex: rast.Regex) -> tuple[int, ...]:
    if isinstance(regex, rast.Repeat):
        return (regex.count,)
    if isinstance(regex, rast.RepeatAtLeast):
        return (regex.count,)
    if isinstance(regex, rast.RepeatRange):
        return (regex.low, regex.high)
    return ()


def sketch_components(sketch: sast.Sketch) -> list[sast.Sketch]:
    """All hole components appearing anywhere in the sketch (the "hints")."""
    out: list[sast.Sketch] = []
    if isinstance(sketch, sast.Hole):
        for component in sketch.components:
            out.append(component)
            out.extend(sketch_components(component))
    elif isinstance(sketch, sast.OpSketch):
        for arg in sketch.args:
            out.extend(sketch_components(arg))
    elif isinstance(sketch, sast.IntOpSketch):
        out.extend(sketch_components(sketch.arg))
    return out


def sketch_size(sketch: sast.Sketch) -> int:
    """Number of sketch nodes (concrete sub-regexes count their own size)."""
    from repro.dsl.simplify import size as regex_size

    if isinstance(sketch, sast.ConcreteRegexSketch):
        return regex_size(sketch.regex)
    if isinstance(sketch, sast.Hole):
        return 1 + sum(sketch_size(component) for component in sketch.components)
    if isinstance(sketch, sast.OpSketch):
        return 1 + sum(sketch_size(arg) for arg in sketch.args)
    if isinstance(sketch, sast.IntOpSketch):
        return 1 + sketch_size(sketch.arg)
    raise TypeError(f"unknown sketch node: {sketch!r}")
