"""Parser for the textual sketch notation.

Grammar (whitespace-insensitive):

.. code-block:: text

    sketch  := 'Hole' '(' [sketch (',' sketch)*] ')'
             | op '(' sketch (',' sketch)* [',' intarg]* ')'
             | regex                                    (concrete regex)
    intarg  := integer | '?'                            ('?' = symbolic)

Gold sketch labels in the datasets and the output of the semantic parser are
both serialised in this notation.
"""

from __future__ import annotations

from repro.dsl import ast as rast
from repro.dsl.parser import RegexParseError, parse_regex
from repro.sketch import ast as sast


class SketchParseError(ValueError):
    """Raised when a sketch string cannot be parsed."""


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> SketchParseError:
        return SketchParseError(f"{message} at position {self.pos} in {self.text!r}")

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return "" if self.eof() else self.text[self.pos]

    def skip_ws(self) -> None:
        while not self.eof() and self.text[self.pos] in " \n":
            self.pos += 1

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def parse(self) -> sast.Sketch:
        sketch = self.parse_sketch()
        self.skip_ws()
        if not self.eof():
            raise self.error("trailing input")
        return sketch

    def parse_sketch(self) -> sast.Sketch:
        self.skip_ws()
        if self.peek() == "<":
            return sast.ConcreteRegexSketch(self._parse_concrete_leaf())
        name = self._peek_name()
        if name == "Hole":
            return self._parse_hole()
        if name in sast.UNARY_SKETCH_OPS or name in sast.BINARY_SKETCH_OPS:
            return self._parse_op(name)
        if name in sast.INT_SKETCH_OPS:
            return self._parse_int_op(name)
        raise self.error(f"unknown sketch constructor {name!r}")

    # -- pieces -------------------------------------------------------------

    def _peek_name(self) -> str:
        self.skip_ws()
        end = self.pos
        while end < len(self.text) and self.text[end].isalpha():
            end += 1
        return self.text[self.pos:end]

    def _consume_name(self) -> str:
        name = self._peek_name()
        self.pos += len(name)
        return name

    def _parse_hole(self) -> sast.Hole:
        self._consume_name()
        self.expect("(")
        components: list[sast.Sketch] = []
        self.skip_ws()
        if self.peek() != ")":
            components.append(self.parse_sketch())
            self.skip_ws()
            while self.peek() == ",":
                self.pos += 1
                components.append(self.parse_sketch())
                self.skip_ws()
        self.expect(")")
        return sast.Hole(components)

    def _parse_op(self, name: str) -> sast.Sketch:
        self._consume_name()
        self.expect("(")
        args = [self.parse_sketch()]
        self.skip_ws()
        while self.peek() == ",":
            self.pos += 1
            args.append(self.parse_sketch())
            self.skip_ws()
        self.expect(")")
        collapsed = _collapse_concrete_op(name, args)
        if collapsed is not None:
            return collapsed
        return sast.OpSketch(name, args)

    def _parse_int_op(self, name: str) -> sast.Sketch:
        self._consume_name()
        self.expect("(")
        arg = self.parse_sketch()
        ints: list[int | None] = []
        self.skip_ws()
        while self.peek() == ",":
            self.pos += 1
            self.skip_ws()
            if self.peek() == "?":
                self.pos += 1
                ints.append(None)
            else:
                start = self.pos
                while not self.eof() and self.text[self.pos].isdigit():
                    self.pos += 1
                if start == self.pos:
                    raise self.error("expected an integer or '?'")
                ints.append(int(self.text[start:self.pos]))
            self.skip_ws()
        self.expect(")")
        _, count = sast.INT_SKETCH_OPS[name]
        if not ints:
            ints = [None] * count
        if len(ints) != count:
            raise self.error(f"{name} expects {count} integer argument(s)")
        if isinstance(arg, sast.ConcreteRegexSketch) and all(v is not None for v in ints):
            ctor, _ = sast.INT_SKETCH_OPS[name]
            try:
                return sast.ConcreteRegexSketch(ctor(arg.regex, *ints))  # type: ignore[arg-type]
            except ValueError as exc:
                raise self.error(str(exc)) from exc
        return sast.IntOpSketch(name, arg, tuple(ints))

    def _parse_concrete_leaf(self) -> rast.Regex:
        # Delegate the "<...>" token to the regex parser.
        end = self.text.find(">", self.pos + 2)
        if self.text[self.pos:self.pos + 3] in ("<<>", "<>>"):
            end = self.pos + 2
        if end == -1:
            raise self.error("unterminated character class")
        token = self.text[self.pos:end + 1]
        self.pos = end + 1
        try:
            return parse_regex(token)
        except RegexParseError as exc:
            raise self.error(str(exc)) from exc


def _collapse_concrete_op(name: str, args: list[sast.Sketch]) -> sast.Sketch | None:
    """If every argument is a concrete regex, build a concrete sketch."""
    if not all(isinstance(arg, sast.ConcreteRegexSketch) for arg in args):
        return None
    regex_args = [arg.regex for arg in args]  # type: ignore[union-attr]
    ctor = sast.UNARY_SKETCH_OPS.get(name) or sast.BINARY_SKETCH_OPS.get(name)
    if ctor is None:
        return None
    try:
        return sast.ConcreteRegexSketch(ctor(*regex_args))
    except (TypeError, ValueError):
        return None


def parse_sketch(text: str) -> sast.Sketch:
    """Parse the textual sketch notation into a :class:`repro.sketch.ast.Sketch`."""
    return _Parser(text).parse()
