"""Hierarchical sketch (h-sketch) language — Section 3.2 of the paper.

An h-sketch represents a family of regexes that share a high-level structure
and are built from particular components ("hints") extracted from the natural
language description.  The central construct is the *constrained hole*
``□^d{S1, .., Sm}``: an unknown regex of depth at most ``d`` that must contain
a regex from one of the component sketches ``Si`` as a leaf.
"""

from repro.sketch.ast import (
    Sketch,
    Hole,
    OpSketch,
    IntOpSketch,
    ConcreteRegexSketch,
    concrete,
    hole,
    UNARY_SKETCH_OPS,
    BINARY_SKETCH_OPS,
    INT_SKETCH_OPS,
)
from repro.sketch.semantics import sketch_contains, sketch_components, sketch_size
from repro.sketch.parser import parse_sketch, SketchParseError
from repro.sketch.printer import sketch_to_string

__all__ = [
    "Sketch",
    "Hole",
    "OpSketch",
    "IntOpSketch",
    "ConcreteRegexSketch",
    "concrete",
    "hole",
    "UNARY_SKETCH_OPS",
    "BINARY_SKETCH_OPS",
    "INT_SKETCH_OPS",
    "sketch_contains",
    "sketch_components",
    "sketch_size",
    "parse_sketch",
    "SketchParseError",
    "sketch_to_string",
]
