"""Printer for hierarchical sketches (round-trips with :mod:`repro.sketch.parser`)."""

from __future__ import annotations

from repro.dsl.printer import to_dsl_string
from repro.sketch import ast as sast


def sketch_to_string(sketch: sast.Sketch) -> str:
    """Render a sketch in textual notation.

    Constrained holes are written ``Hole(S1,..,Sm)`` (the paper's ``□{..}``);
    symbolic integers are written ``?``.
    """
    if isinstance(sketch, sast.Hole):
        inner = ",".join(sketch_to_string(component) for component in sketch.components)
        return f"Hole({inner})"
    if isinstance(sketch, sast.OpSketch):
        inner = ",".join(sketch_to_string(arg) for arg in sketch.args)
        return f"{sketch.op}({inner})"
    if isinstance(sketch, sast.IntOpSketch):
        ints = ",".join("?" if value is None else str(value) for value in sketch.ints)
        return f"{sketch.op}({sketch_to_string(sketch.arg)},{ints})"
    if isinstance(sketch, sast.ConcreteRegexSketch):
        return to_dsl_string(sketch.regex)
    raise TypeError(f"unknown sketch node: {sketch!r}")
