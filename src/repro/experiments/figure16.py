"""Figure 16: number of solved benchmarks over iterations, per tool and dataset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets import generate_deepregex_dataset, stackoverflow_dataset
from repro.datasets.benchmark import Benchmark
from repro.datasets.splits import train_test_split
from repro.experiments.metrics import solved_by_iteration
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    BenchmarkRun,
    ToolName,
    evaluate_tool,
    make_deepregex_solver,
    make_pbe_solver,
    make_regel_solver,
    trained_parser,
)
from repro.synthesis import SynthesisConfig


@dataclass
class Figure16Result:
    """Solved-benchmark counts per iteration for each tool (one dataset)."""

    dataset: str
    total: int
    series: Dict[str, List[int]] = field(default_factory=dict)
    runs: Dict[str, List[BenchmarkRun]] = field(default_factory=dict)

    def table(self, max_iterations: int = 4) -> str:
        headers = ["tool"] + [f"iter {i}" for i in range(max_iterations + 1)] + ["total"]
        rows = [
            [tool, *counts, self.total]
            for tool, counts in self.series.items()
        ]
        return format_table(headers, rows, title=f"Figure 16 ({self.dataset})")


def figure16(
    dataset: str = "stackoverflow",
    benchmarks: Optional[Sequence[Benchmark]] = None,
    num_benchmarks: Optional[int] = None,
    time_budget: float = 5.0,
    k: Optional[int] = None,
    max_iterations: int = 4,
    num_sketches: int = 25,
    config: Optional[SynthesisConfig] = None,
    train_parser: bool = True,
    tools: Sequence[ToolName] = (ToolName.REGEL, ToolName.REGEL_PBE, ToolName.DEEPREGEX),
) -> Figure16Result:
    """Regenerate Figure 16 for one dataset.

    The paper uses ``t=10s, k=1`` for the DeepRegex dataset and ``t=60s, k=5``
    for StackOverflow; ``time_budget``/``k`` default to scaled-down values so
    the experiment completes quickly (pass paper-scale values to match the
    original protocol).
    """
    if benchmarks is None:
        benchmarks = _load(dataset, num_benchmarks)
    else:
        benchmarks = list(benchmarks)
    if k is None:
        k = 5 if dataset == "stackoverflow" else 1
    config = config or SynthesisConfig(timeout=time_budget, hole_depth=3)

    if train_parser:
        train, _ = train_test_split(benchmarks, 0.6, seed=29)
        parser = trained_parser(train)
    else:
        parser = None

    solvers = {
        ToolName.REGEL: make_regel_solver(
            parser=parser, config=config, k=k, time_budget=time_budget, num_sketches=num_sketches
        ),
        ToolName.REGEL_PBE: make_pbe_solver(config=config, k=k, time_budget=time_budget),
        ToolName.DEEPREGEX: make_deepregex_solver(parser=parser),
    }

    result = Figure16Result(dataset=dataset, total=len(benchmarks))
    for tool in tools:
        runs = evaluate_tool(tool, benchmarks, solvers[tool], max_iterations=max_iterations)
        result.runs[tool.value] = runs
        result.series[tool.value] = solved_by_iteration(runs, max_iterations)
    return result


def _load(dataset: str, num_benchmarks: Optional[int]) -> List[Benchmark]:
    if dataset == "stackoverflow":
        data = stackoverflow_dataset()
    elif dataset == "deepregex":
        data = generate_deepregex_dataset(count=num_benchmarks or 200)
    else:
        raise ValueError(f"unknown dataset {dataset!r}")
    if num_benchmarks is not None:
        data = data[:num_benchmarks]
    return data
