"""Structural analyses: DSL coverage (footnote 9) and dataset statistics (Section 7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.datasets import generate_deepregex_dataset, stackoverflow_dataset
from repro.datasets.benchmark import Benchmark
from repro.dsl.simplify import expressible_in_fidex, expressible_in_flashfill
from repro.experiments.reporting import format_table


@dataclass
class DslCoverage:
    """How many benchmark regexes fall inside the FlashFill / Fidex fragments."""

    total: int
    flashfill: int
    fidex: int

    def table(self) -> str:
        headers = ["DSL", "expressible", "total"]
        rows = [["FlashFill", self.flashfill, self.total], ["Fidex", self.fidex, self.total]]
        return format_table(headers, rows, title="DSL coverage of the StackOverflow corpus")


def dsl_coverage(benchmarks: Optional[Sequence[Benchmark]] = None) -> DslCoverage:
    """Footnote 9: FlashFill expresses 3/62 and Fidex 7/62 of the corpus."""
    if benchmarks is None:
        benchmarks = stackoverflow_dataset(with_examples=False)
    regexes = [benchmark.regex for benchmark in benchmarks]
    return DslCoverage(
        total=len(regexes),
        flashfill=sum(1 for regex in regexes if expressible_in_flashfill(regex)),
        fidex=sum(1 for regex in regexes if expressible_in_fidex(regex)),
    )


@dataclass
class DatasetStatistics:
    """The corpus statistics reported in Section 7 / footnote 10."""

    name: str
    size: int
    avg_words: float
    avg_regex_size: float
    avg_positive: float
    avg_negative: float

    def row(self) -> list:
        return [
            self.name,
            self.size,
            self.avg_words,
            self.avg_regex_size,
            self.avg_positive,
            self.avg_negative,
        ]


def dataset_statistics(
    deepregex_count: int = 50,
    stackoverflow_benchmarks: Optional[Sequence[Benchmark]] = None,
) -> Dict[str, DatasetStatistics]:
    """Compute the dataset statistics for both corpora."""
    corpora = {
        "deepregex": generate_deepregex_dataset(count=deepregex_count),
        "stackoverflow": list(stackoverflow_benchmarks)
        if stackoverflow_benchmarks is not None
        else stackoverflow_dataset(),
    }
    stats = {}
    for name, benchmarks in corpora.items():
        stats[name] = DatasetStatistics(
            name=name,
            size=len(benchmarks),
            avg_words=_mean([b.word_count() for b in benchmarks]),
            avg_regex_size=_mean([b.regex_size() for b in benchmarks]),
            avg_positive=_mean([len(b.positive) for b in benchmarks]),
            avg_negative=_mean([len(b.negative) for b in benchmarks]),
        )
    return stats


def statistics_table(stats: Dict[str, DatasetStatistics]) -> str:
    headers = ["dataset", "size", "avg words", "avg regex size", "avg pos", "avg neg"]
    return format_table(headers, [s.row() for s in stats.values()], title="Dataset statistics")


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
