"""Figure 18: PBE-engine ablation — solved sketches vs. cumulative time.

For every StackOverflow benchmark the semantic parser's top-25 sketches are
collected; each engine variant (Regel-Enum, Regel-Approx, Regel) then tries to
complete every sketch against the benchmark's examples within a per-sketch
budget.  The figure plots, for each variant, the cumulative running time
against the number of sketches solved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets import stackoverflow_dataset
from repro.datasets.benchmark import Benchmark
from repro.experiments.reporting import format_table
from repro.nlp.sketch_gen import SemanticParser
from repro.sketch.ast import Sketch
from repro.synthesis import Examples, EngineVariant, SynthesisConfig, Synthesizer


@dataclass
class AblationResult:
    """Per-variant solve times over the sketch pool."""

    total_sketches: int
    #: Per variant: sorted list of times (seconds) of *solved* sketches.
    solve_times: Dict[str, List[float]] = field(default_factory=dict)
    #: Per variant: total time spent (solved + unsolved sketches).
    total_time: Dict[str, float] = field(default_factory=dict)

    def solved_counts(self) -> Dict[str, int]:
        return {variant: len(times) for variant, times in self.solve_times.items()}

    def cumulative_curve(self, variant: str) -> List[tuple[int, float]]:
        """Points (number of solved sketches, cumulative time) for one variant."""
        curve = []
        total = 0.0
        for index, elapsed in enumerate(sorted(self.solve_times[variant]), start=1):
            total += elapsed
            curve.append((index, total))
        return curve

    def table(self) -> str:
        headers = ["variant", "solved sketches", "total sketches", "cumulative time (s)"]
        rows = []
        for variant, times in self.solve_times.items():
            rows.append([variant, len(times), self.total_sketches, sum(times)])
        return format_table(headers, rows, title="Figure 18 (ablation)")


def figure18(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    num_benchmarks: int = 8,
    sketches_per_benchmark: int = 25,
    per_sketch_timeout: float = 1.0,
    config: Optional[SynthesisConfig] = None,
    parser: Optional[SemanticParser] = None,
    variants: Sequence[EngineVariant] = (
        EngineVariant.ENUM,
        EngineVariant.APPROX,
        EngineVariant.FULL,
    ),
) -> AblationResult:
    """Run the ablation.  Paper scale: all 62 benchmarks × top-25 sketches."""
    if benchmarks is None:
        benchmarks = stackoverflow_dataset()[:num_benchmarks]
    parser = parser or SemanticParser()
    base_config = config or SynthesisConfig(hole_depth=3)

    pool: List[tuple[Sketch, Examples]] = []
    for benchmark in benchmarks:
        examples = Examples(benchmark.positive, benchmark.negative)
        for sketch in parser.sketches(benchmark.description, k=sketches_per_benchmark):
            pool.append((sketch, examples))

    result = AblationResult(total_sketches=len(pool))
    for variant in variants:
        variant_config = base_config.for_variant(variant)
        variant_config.timeout = per_sketch_timeout
        times: List[float] = []
        total = 0.0
        for sketch, examples in pool:
            engine = Synthesizer(variant_config)
            outcome = engine.synthesize(sketch, examples)
            total += outcome.elapsed
            if outcome.solved:
                times.append(outcome.elapsed)
        result.solve_times[variant.value] = times
        result.total_time[variant.value] = total
    return result
