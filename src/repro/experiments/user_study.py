"""Section 8.3: the user study, reproduced with simulated participants.

The original study gives 20 participants six StackOverflow tasks each, half to
be solved with Regel and half without, under a 15-minute budget per setting,
and compares task-success rates with a one-tailed t-test.

Human participants cannot be bundled with a reproduction, so this module
replaces them with a calibrated simulated-user model (documented in
DESIGN.md): the probability that a user writes the intended regex unaided
decreases with the size of the target regex, while a user assisted by Regel
succeeds whenever the tool returns the intended regex within its budget and
otherwise falls back to unaided skill.  The analysis pipeline (per-participant
success rates, 1-tailed paired t-test) is identical to the paper's.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets import stackoverflow_dataset
from repro.datasets.benchmark import Benchmark
from repro.experiments.reporting import format_table
from repro.experiments.runner import make_regel_solver
from repro.multimodal.interaction import run_interactive
from repro.synthesis import SynthesisConfig


@dataclass
class UserStudyResult:
    """Per-condition success rates and the significance test."""

    with_tool_rate: float
    without_tool_rate: float
    per_participant_with: List[float] = field(default_factory=list)
    per_participant_without: List[float] = field(default_factory=list)
    t_statistic: float = 0.0
    p_value: float = 1.0

    def table(self) -> str:
        headers = ["condition", "success rate"]
        rows = [
            ["with Regel", self.with_tool_rate],
            ["without Regel", self.without_tool_rate],
        ]
        table = format_table(headers, rows, title="User study (simulated participants)")
        return f"{table}\n1-tailed t-test: t={self.t_statistic:.3f}, p={self.p_value:.2e}"


def _unaided_success_probability(benchmark: Benchmark) -> float:
    """Probability a simulated user writes the intended regex without help.

    Calibrated so that the average over the corpus is close to the paper's
    28.3% unaided success rate: small regexes are easy, large ones are hard.
    """
    size = benchmark.regex_size()
    return max(0.05, min(0.9, 1.0 - 0.08 * size))


def user_study(
    participants: int = 20,
    tasks_per_participant: int = 6,
    benchmarks: Optional[Sequence[Benchmark]] = None,
    time_budget: float = 3.0,
    config: Optional[SynthesisConfig] = None,
    seed: int = 99,
    use_tool_runs: bool = True,
) -> UserStudyResult:
    """Run the simulated user study and the paper's significance test."""
    rng = random.Random(seed)
    if benchmarks is None:
        benchmarks = stackoverflow_dataset()
    benchmarks = list(benchmarks)
    config = config or SynthesisConfig(timeout=time_budget)

    # Pre-compute, for every benchmark, whether Regel finds the intended regex.
    tool_success: Dict[str, bool] = {}
    if use_tool_runs:
        solver = make_regel_solver(config=config, k=5, time_budget=time_budget)
        for benchmark in benchmarks:
            session = run_interactive(benchmark, solver(benchmark), max_iterations=1)
            tool_success[benchmark.benchmark_id] = session.solved_at is not None
    else:
        for benchmark in benchmarks:
            tool_success[benchmark.benchmark_id] = rng.random() < 0.7

    # The paper gives every participant 6 tasks, half solved with Regel and
    # half without.  Simulated participants have no learning effects, so we
    # can use the stronger within-subject design: each participant attempts
    # every assigned task under *both* conditions, with the same unaided-skill
    # draw, which removes the between-condition sampling noise while keeping
    # the per-participant success rates the t-test compares.
    per_with: List[float] = []
    per_without: List[float] = []
    for _ in range(participants):
        tasks = rng.sample(benchmarks, min(tasks_per_participant, len(benchmarks)))
        successes_with = 0
        successes_without = 0
        for task in tasks:
            unaided = rng.random() < _unaided_success_probability(task)
            if unaided:
                successes_without += 1
            if tool_success[task.benchmark_id] or unaided:
                successes_with += 1
        per_with.append(successes_with / max(1, len(tasks)))
        per_without.append(successes_without / max(1, len(tasks)))

    t_stat, p_value = _paired_one_tailed_ttest(per_with, per_without)
    return UserStudyResult(
        with_tool_rate=sum(per_with) / len(per_with),
        without_tool_rate=sum(per_without) / len(per_without),
        per_participant_with=per_with,
        per_participant_without=per_without,
        t_statistic=t_stat,
        p_value=p_value,
    )


def _paired_one_tailed_ttest(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Paired one-tailed t-test (H1: mean(a) > mean(b)).

    Uses scipy when available and falls back to a direct computation with a
    normal approximation of the t distribution's tail.
    """
    differences = [x - y for x, y in zip(a, b)]
    n = len(differences)
    mean = sum(differences) / n
    variance = sum((d - mean) ** 2 for d in differences) / (n - 1) if n > 1 else 0.0
    if variance == 0.0:
        return (float("inf"), 0.0) if mean > 0 else (0.0, 1.0)
    t_stat = mean / math.sqrt(variance / n)
    try:
        from scipy import stats

        p_value = float(stats.t.sf(t_stat, df=n - 1))
    except Exception:  # pragma: no cover - scipy is installed in CI
        p_value = 0.5 * math.erfc(t_stat / math.sqrt(2))
    return t_stat, p_value
