"""Figure 17: average running time per solved benchmark over iterations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets.benchmark import Benchmark
from repro.experiments.figure16 import Figure16Result, figure16
from repro.experiments.metrics import average_time_per_solved
from repro.experiments.reporting import format_table
from repro.experiments.runner import ToolName
from repro.synthesis import SynthesisConfig


@dataclass
class Figure17Result:
    """Average synthesis time (seconds) per solved benchmark, per iteration."""

    dataset: str
    series: Dict[str, List[float]] = field(default_factory=dict)

    def table(self, max_iterations: int = 4) -> str:
        headers = ["tool"] + [f"iter {i}" for i in range(max_iterations + 1)]
        rows = [[tool, *values] for tool, values in self.series.items()]
        return format_table(headers, rows, title=f"Figure 17 ({self.dataset})")


def figure17(
    dataset: str = "stackoverflow",
    benchmarks: Optional[Sequence[Benchmark]] = None,
    num_benchmarks: Optional[int] = None,
    time_budget: float = 5.0,
    max_iterations: int = 4,
    config: Optional[SynthesisConfig] = None,
    from_figure16: Optional[Figure16Result] = None,
) -> Figure17Result:
    """Regenerate Figure 17.

    DeepRegex is omitted, as in the paper ("the prediction time of the seq2seq
    model is negligible").  If a :class:`Figure16Result` is supplied its runs
    are reused instead of re-running the tools.
    """
    if from_figure16 is None:
        from_figure16 = figure16(
            dataset=dataset,
            benchmarks=benchmarks,
            num_benchmarks=num_benchmarks,
            time_budget=time_budget,
            max_iterations=max_iterations,
            config=config,
            tools=(ToolName.REGEL, ToolName.REGEL_PBE),
        )
    result = Figure17Result(dataset=from_figure16.dataset)
    for tool, runs in from_figure16.runs.items():
        if tool == ToolName.DEEPREGEX.value:
            continue
        result.series[tool] = average_time_per_solved(runs, max_iterations)
    return result
