"""Aggregation of interactive-protocol runs into the figures' series."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.runner import BenchmarkRun


def solved_by_iteration(runs: Sequence[BenchmarkRun], max_iterations: int = 4) -> List[int]:
    """Number of benchmarks solved by each iteration (cumulative) — Figure 16's y-axis."""
    return [
        sum(1 for run in runs if run.session.solved_by(iteration))
        for iteration in range(max_iterations + 1)
    ]


def average_time_per_solved(
    runs: Sequence[BenchmarkRun], max_iterations: int = 4
) -> List[float]:
    """Average synthesis time per *solved* benchmark at each iteration — Figure 17.

    For each iteration we average the per-iteration running time over the
    benchmarks solved by that iteration (0.0 when nothing is solved yet).
    """
    averages: List[float] = []
    for iteration in range(max_iterations + 1):
        times: List[float] = []
        for run in runs:
            if not run.session.solved_by(iteration):
                continue
            solved_at = run.session.solved_at or 0
            elapsed = run.session.time_at(min(iteration, solved_at))
            if elapsed is not None:
                times.append(elapsed)
        averages.append(sum(times) / len(times) if times else 0.0)
    return averages


def accuracy(runs: Sequence[BenchmarkRun], iteration: int = 0) -> float:
    """Fraction of benchmarks solved by the given iteration."""
    if not runs:
        return 0.0
    return solved_by_iteration(runs, iteration)[iteration] / len(runs)


def summarize(runs_by_tool: Dict[str, Sequence[BenchmarkRun]], max_iterations: int = 4) -> Dict:
    """Aggregate every tool's runs into the numbers Section 8.1 reports."""
    summary: Dict[str, Dict] = {}
    for tool, runs in runs_by_tool.items():
        summary[tool] = {
            "solved_by_iteration": solved_by_iteration(runs, max_iterations),
            "avg_time_per_solved": average_time_per_solved(runs, max_iterations),
            "initial_accuracy": accuracy(runs, 0),
            "final_accuracy": accuracy(runs, max_iterations),
            "total": len(runs),
        }
    return summary
