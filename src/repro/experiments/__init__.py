"""Experiment harness reproducing every table and figure of the evaluation.

Each module regenerates one artefact of Section 8 (see DESIGN.md for the
per-experiment index):

* :mod:`repro.experiments.figure16` — # solved benchmarks vs. iteration,
* :mod:`repro.experiments.figure17` — average time per solved benchmark,
* :mod:`repro.experiments.figure18` — PBE-engine ablation over sketches,
* :mod:`repro.experiments.user_study` — the (simulated) user study + t-test,
* :mod:`repro.experiments.ablation` — DSL-coverage (footnote 9) and dataset
  statistics (Section 7).

The full paper-scale runs take hours; every entry point therefore takes a
``scale`` argument (number of benchmarks, time budgets) so the benchmark
suite can exercise the complete pipeline quickly while the shapes of the
results remain interpretable.
"""

from repro.experiments.runner import (
    ToolName,
    BenchmarkRun,
    evaluate_tool,
    make_regel_solver,
    make_pbe_solver,
    make_deepregex_solver,
)
from repro.experiments.metrics import solved_by_iteration, average_time_per_solved
from repro.experiments.figure16 import figure16
from repro.experiments.figure17 import figure17
from repro.experiments.figure18 import figure18
from repro.experiments.user_study import user_study
from repro.experiments.ablation import dsl_coverage, dataset_statistics
from repro.experiments.reporting import format_table

__all__ = [
    "ToolName",
    "BenchmarkRun",
    "evaluate_tool",
    "make_regel_solver",
    "make_pbe_solver",
    "make_deepregex_solver",
    "solved_by_iteration",
    "average_time_per_solved",
    "figure16",
    "figure17",
    "figure18",
    "user_study",
    "dsl_coverage",
    "dataset_statistics",
    "format_table",
]
