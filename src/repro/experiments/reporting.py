"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width table (the benchmark harness prints these)."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
