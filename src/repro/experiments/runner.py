"""Shared evaluation runner: tools × benchmarks × the interactive protocol."""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.api import (
    NlSketchProvider,
    PbeOnlyProvider,
    Problem,
    Scheduler,
    SequentialScheduler,
    Session,
)
from repro.baselines.deepregex import DeepRegexBaseline
from repro.datasets.benchmark import Benchmark
from repro.datasets.splits import training_pairs
from repro.multimodal.interaction import InteractiveSession, run_interactive
from repro.nlp.sketch_gen import SemanticParser
from repro.synthesis import SynthesisConfig


class ToolName(str, enum.Enum):
    REGEL = "regel"
    REGEL_PBE = "regel-pbe"
    DEEPREGEX = "deepregex"


@dataclass
class BenchmarkRun:
    """Interactive-protocol result for one (tool, benchmark) pair."""

    tool: ToolName
    benchmark_id: str
    session: InteractiveSession


Solver = Callable[[Benchmark], Callable[[Sequence[str], Sequence[str]], tuple[list, float]]]


def trained_parser(train_benchmarks: Sequence[Benchmark], epochs: int = 2) -> SemanticParser:
    """A semantic parser trained on the gold sketch labels of the training set."""
    parser = SemanticParser()
    pairs = training_pairs(train_benchmarks)
    if pairs:
        parser.train(pairs, epochs=epochs)
    return parser


def make_regel_solver(
    parser: Optional[SemanticParser] = None,
    config: Optional[SynthesisConfig] = None,
    k: int = 1,
    time_budget: float = 10.0,
    num_sketches: int = 25,
    scheduler: Optional[Scheduler] = None,
) -> Solver:
    """Solver factory for the full Regel tool.

    ``scheduler`` selects the portfolio policy (default: fair-sequential);
    pass e.g. :class:`repro.api.InterleavedScheduler` to reproduce the
    paper's run-engines-in-parallel deployment in-process.
    """
    session = Session(
        provider=NlSketchProvider(parser, num_sketches=num_sketches),
        scheduler=scheduler if scheduler is not None else SequentialScheduler(),
        config=config,
    )

    def for_benchmark(benchmark: Benchmark):
        def solve(positive: Sequence[str], negative: Sequence[str]):
            report = session.solve(
                Problem(
                    description=benchmark.description,
                    positive=positive,
                    negative=negative,
                    k=k,
                    budget=time_budget,
                )
            )
            return [solution.ast() for solution in report.solutions], report.elapsed

        return solve

    return for_benchmark


def make_pbe_solver(
    config: Optional[SynthesisConfig] = None,
    k: int = 1,
    time_budget: float = 10.0,
    scheduler: Optional[Scheduler] = None,
) -> Solver:
    """Solver factory for the examples-only Regel-PBE baseline."""
    session = Session(
        provider=PbeOnlyProvider(),
        scheduler=scheduler if scheduler is not None else SequentialScheduler(),
        config=config,
    )

    def for_benchmark(benchmark: Benchmark):
        def solve(positive: Sequence[str], negative: Sequence[str]):
            report = session.solve(
                Problem(
                    description="",
                    positive=positive,
                    negative=negative,
                    k=k,
                    budget=time_budget,
                )
            )
            return [solution.ast() for solution in report.solutions], report.elapsed

        return solve

    return for_benchmark


def make_deepregex_solver(parser: Optional[SemanticParser] = None) -> Solver:
    """Solver factory for the NL-only DeepRegex-style baseline."""
    baseline = DeepRegexBaseline(parser=parser)

    def for_benchmark(benchmark: Benchmark):
        def solve(positive: Sequence[str], negative: Sequence[str]):
            start = time.monotonic()
            regexes = baseline.solve(benchmark.description, positive, negative)
            return regexes, time.monotonic() - start

        return solve

    return for_benchmark


def evaluate_tool(
    tool: ToolName,
    benchmarks: Sequence[Benchmark],
    solver: Solver,
    max_iterations: int = 4,
) -> List[BenchmarkRun]:
    """Run one tool over a benchmark set with the interactive protocol."""
    runs: List[BenchmarkRun] = []
    for benchmark in benchmarks:
        session = run_interactive(
            benchmark, solver(benchmark), max_iterations=max_iterations
        )
        runs.append(BenchmarkRun(tool=tool, benchmark_id=benchmark.benchmark_id, session=session))
    return runs
