"""Abstract-interpretation static analysis of sketches and partial regexes.

The analyzer computes cheap, sound :class:`~repro.analysis.facts.Facts`
(match-length intervals, first/last/required character sets, nullability,
emptiness/universality) per interned subtree and serves three consumers:

* **engine pruning** — :func:`~repro.analysis.check.partial_prune_reason`
  rejects provably-infeasible partials before the match-set evaluator runs
  (counted as ``static_prune_hits``/``static_prune_misses`` in reports);
* **diagnostics** — :func:`~repro.analysis.diagnostics.lint_problem` and
  friends power the ``regel lint`` CLI subcommand;
* **the service boundary** — ``POST /v1/lint`` and the pre-queue 422
  rejection of statically-unsatisfiable problems
  (:func:`~repro.analysis.diagnostics.problem_unsatisfiable`).

Soundness is the package-wide contract: the analysis may answer "maybe", it
never produces a wrong "no" (pinned by the differential tests in
``tests/test_analysis.py``).
"""

from repro.analysis.analyzer import (
    ANALYSIS_CACHE_STATS,
    facts_of_partial,
    facts_of_regex,
    facts_of_sketch,
)
from repro.analysis.check import partial_prune_reason, static_infeasible
from repro.analysis.diagnostics import (
    Diagnostic,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    has_errors,
    lint_examples,
    lint_problem,
    lint_regex,
    lint_sketch,
    problem_unsatisfiable,
)
from repro.analysis.facts import EMPTY_FACTS, EPSILON_FACTS, TOP_FACTS, Facts

__all__ = [
    "ANALYSIS_CACHE_STATS",
    "Diagnostic",
    "EMPTY_FACTS",
    "EPSILON_FACTS",
    "Facts",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "TOP_FACTS",
    "facts_of_partial",
    "facts_of_regex",
    "facts_of_sketch",
    "has_errors",
    "lint_examples",
    "lint_problem",
    "lint_regex",
    "lint_sketch",
    "partial_prune_reason",
    "problem_unsatisfiable",
    "static_infeasible",
]
