"""User-facing diagnostics derived from the static analyzer.

A :class:`Diagnostic` is a structured finding — code, severity, node path,
message — produced by the lint entry points below and surfaced through the
``regel lint`` CLI subcommand and the service's ``POST /v1/lint`` endpoint.

Severities:

* ``error`` — the problem/sketch is statically unsatisfiable; submitting it
  to the engine can only burn budget (the service rejects these with a 422);
* ``warning`` — a construct is provably useless (vacuous subtree, dead ``Or``
  alternative, sketch that rejects a positive example) but the search may
  still succeed around it;
* ``info`` — stylistic or redundancy notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.analyzer import facts_of_regex, facts_of_sketch
from repro.dsl import ast as rast
from repro.dsl.charclass import PRINTABLE_ALPHABET
from repro.sketch import ast as sast

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the analyzer, addressable by node path."""

    code: str
    severity: str
    path: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnostic":
        return cls(
            code=str(data["code"]),
            severity=str(data.get("severity", SEVERITY_WARNING)),
            path=str(data.get("path", "")),
            message=str(data.get("message", "")),
        )


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == SEVERITY_ERROR for d in diagnostics)


# ---------------------------------------------------------------------------
# Regex / sketch lint
# ---------------------------------------------------------------------------

def lint_regex(regex: rast.Regex, path: str = "root") -> List[Diagnostic]:
    """Statically-provable findings about a concrete regex."""
    out: List[Diagnostic] = []
    _lint_regex(regex, path, out, root=True)
    return out


def _lint_regex(
    regex: rast.Regex, path: str, out: List[Diagnostic], root: bool = False
) -> None:
    facts = facts_of_regex(regex)
    if facts.empty and not isinstance(regex, rast.EmptySet):
        out.append(
            Diagnostic(
                code="vacuous-subtree",
                severity=SEVERITY_ERROR if root else SEVERITY_WARNING,
                path=path,
                message=f"`{regex!r}` provably matches no string",
            )
        )
        return  # findings inside a vacuous subtree are noise
    if isinstance(regex, rast.Or):
        for side, child in (("left", regex.left), ("right", regex.right)):
            if facts_of_regex(child).empty:
                out.append(
                    Diagnostic(
                        code="dead-or-branch",
                        severity=SEVERITY_WARNING,
                        path=f"{path}.{side}",
                        message=f"`Or` alternative `{child!r}` matches no string",
                    )
                )
    if isinstance(regex, rast.Optional) and facts_of_regex(regex.arg).must_empty:
        out.append(
            Diagnostic(
                code="redundant-optional",
                severity=SEVERITY_INFO,
                path=path,
                message=f"`{regex.arg!r}` already matches the empty string",
            )
        )
    for index, child in enumerate(regex.children()):
        _lint_regex(child, _child_path(path, regex, index), out)


def _child_path(path: str, regex: rast.Regex, index: int) -> str:
    if isinstance(regex, (rast.Concat, rast.Or, rast.And)):
        return f"{path}.{'left' if index == 0 else 'right'}"
    return f"{path}.arg"


def lint_sketch(
    sketch: sast.Sketch, hole_depth: int = 3, path: str = "root"
) -> List[Diagnostic]:
    """Statically-provable findings about an h-sketch."""
    out: List[Diagnostic] = []
    _lint_sketch(sketch, hole_depth, path, out, root=True)
    return out


def _lint_sketch(
    sketch: sast.Sketch,
    hole_depth: int,
    path: str,
    out: List[Diagnostic],
    root: bool = False,
) -> None:
    facts = facts_of_sketch(sketch, hole_depth)
    if facts.empty:
        out.append(
            Diagnostic(
                code="unsatisfiable-sketch" if root else "vacuous-subtree",
                severity=SEVERITY_ERROR if root else SEVERITY_WARNING,
                path=path,
                message=f"no completion of `{sketch!r}` matches any string",
            )
        )
        return
    if isinstance(sketch, sast.ConcreteRegexSketch):
        _lint_regex(sketch.regex, path, out)
        return
    if isinstance(sketch, sast.OpSketch):
        if sketch.op == "Or":
            for index, arg in enumerate(sketch.args):
                if facts_of_sketch(arg, hole_depth).empty:
                    out.append(
                        Diagnostic(
                            code="dead-or-branch",
                            severity=SEVERITY_WARNING,
                            path=f"{path}.args[{index}]",
                            message=f"`Or` alternative `{arg!r}` matches no string",
                        )
                    )
        for index, arg in enumerate(sketch.args):
            _lint_sketch(arg, hole_depth, f"{path}.args[{index}]", out)
    elif isinstance(sketch, sast.IntOpSketch):
        _lint_sketch(sketch.arg, hole_depth, f"{path}.arg", out)
    elif isinstance(sketch, sast.Hole):
        for index, component in enumerate(sketch.components):
            _lint_sketch(component, hole_depth, f"{path}.components[{index}]", out)


# ---------------------------------------------------------------------------
# Problem lint
# ---------------------------------------------------------------------------

def lint_examples(
    positive: Sequence[str], negative: Sequence[str]
) -> List[Diagnostic]:
    """Findings about an example set, independent of any sketch."""
    out: List[Diagnostic] = []
    conflicts = sorted(set(positive) & set(negative))
    for example in conflicts:
        out.append(
            Diagnostic(
                code="conflicting-examples",
                severity=SEVERITY_ERROR,
                path="examples",
                message=f"{example!r} is listed as both positive and negative; "
                "no regex can satisfy both",
            )
        )
    for kind, values in (("positive", positive), ("negative", negative)):
        seen = set()
        for index, example in enumerate(values):
            if example in seen:
                out.append(
                    Diagnostic(
                        code="duplicate-example",
                        severity=SEVERITY_INFO,
                        path=f"examples.{kind}[{index}]",
                        message=f"duplicate {kind} example {example!r}",
                    )
                )
            seen.add(example)
    alphabet = frozenset(PRINTABLE_ALPHABET)
    for index, example in enumerate(positive):
        foreign = sorted(set(example) - alphabet)
        if foreign:
            out.append(
                Diagnostic(
                    code="alphabet-escape",
                    severity=SEVERITY_WARNING,
                    path=f"examples.positive[{index}]",
                    message=f"positive example {example!r} uses characters outside "
                    f"the DSL alphabet ({foreign!r}); no character class can "
                    "match them",
                )
            )
    return out


def lint_problem(
    problem: Any,
    sketches: Sequence[Tuple[str, sast.Sketch]] = (),
    hole_depth: int = 3,
) -> List[Diagnostic]:
    """Findings about a synthesis problem and (optionally) its sketches.

    ``problem`` is anything with ``positive``/``negative`` sequences (the
    pipeline's :class:`repro.api.problem.Problem`, kept duck-typed to avoid an
    import cycle through the engine).  ``sketches`` pairs a display name with
    a parsed sketch.
    """
    out = lint_examples(tuple(problem.positive), tuple(problem.negative))
    negatives = tuple(problem.negative)
    for name, sketch in sketches:
        prefix = f"sketch[{name}]"
        out.extend(lint_sketch(sketch, hole_depth, path=prefix))
        facts = facts_of_sketch(sketch, hole_depth)
        for index, example in enumerate(tuple(problem.positive)):
            reason = facts.reject_reason(example)
            if reason is not None:
                out.append(
                    Diagnostic(
                        code="sketch-rejects-positive",
                        severity=SEVERITY_WARNING,
                        path=f"{prefix}/examples.positive[{index}]",
                        message=f"no completion can match positive example "
                        f"{example!r} ({reason})",
                    )
                )
        if negatives and facts.universal:
            out.append(
                Diagnostic(
                    code="sketch-matches-negative",
                    severity=SEVERITY_WARNING,
                    path=prefix,
                    message="every completion matches every string, including "
                    "all negative examples",
                )
            )
    return out


def problem_unsatisfiable(problem: Any) -> Optional[Diagnostic]:
    """The sound problem-level rejection check used at the service boundary.

    Only example conflicts are reported: any two *disjoint* finite example
    sets are separable in the DSL (an ``Or`` of string literals), so the
    presence of the same string on both sides is the one problem-level fact
    that proves unsatisfiability outright.
    """
    conflicts = sorted(set(problem.positive) & set(problem.negative))
    if not conflicts:
        return None
    return Diagnostic(
        code="unsatisfiable",
        severity=SEVERITY_ERROR,
        path="examples",
        message="problem is statically unsatisfiable: "
        + ", ".join(repr(example) for example in conflicts)
        + " appear(s) in both the positive and negative example sets",
    )
