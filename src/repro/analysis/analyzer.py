"""Computation of :class:`~repro.analysis.facts.Facts` per (partial) program.

One transfer per node kind, memoised per interned subtree in the same style
as :mod:`repro.synthesis.approximate` / :mod:`repro.synthesis.encode`: the
engine rebuilds only the spine from an expanded node to the root, so every
off-spine subtree of a successor hits the cache and analysis is incremental
in the depth of the expanded node.

The partial-regex entry point has two modes:

* ``kmax=None`` mirrors Figures 11–12 exactly — a symbolic integer widens to
  "at least one repetition" with an empty under side, so every fact here is
  also a fact about :func:`repro.synthesis.approximate.approximate_partial`'s
  over-/under-regexes (the property the differential suite pins);
* ``kmax=K`` additionally exploits that the engine only ever instantiates a
  symbolic integer ``κ`` within ``[1, K]`` (:mod:`repro.synthesis.encode`
  bounds it, ``InferConstants`` enumerates models of those bounds), giving
  sound-for-the-engine length intervals that are strictly tighter.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro import caches
from repro.dsl import ast as rast
from repro.dsl.charclass import chars_of
from repro.sketch import ast as sast
from repro.synthesis.partial import (
    FreeLabel,
    HoleLabel,
    PartialRegex,
    PLeaf,
    POp,
    POpen,
    SymInt,
)

from repro.analysis.facts import (
    EMPTY_FACTS,
    EPSILON_FACTS,
    TOP_FACTS,
    Facts,
    and_facts,
    char_class_facts,
    concat_facts,
    contains_facts,
    drop_under,
    ends_with_facts,
    not_facts,
    optional_facts,
    or_facts,
    repeat_facts,
    star_facts,
    starts_with_facts,
)

_REGEX_FACTS: "caches.GuardedWeakKeyDictionary" = caches.register_cache(
    "repro.analysis.analyzer._REGEX_FACTS", caches.GuardedWeakKeyDictionary()
)
#: Sketches are not interned, but they are hashable and weak-referenceable;
#: structural keying still shares entries across equal sketches.
_SKETCH_FACTS: "caches.GuardedWeakKeyDictionary" = caches.register_cache(
    "repro.analysis.analyzer._SKETCH_FACTS", caches.GuardedWeakKeyDictionary()
)
_UNARY_FACTS = {
    "StartsWith": starts_with_facts,
    "EndsWith": ends_with_facts,
    "Contains": contains_facts,
    "Optional": optional_facts,
    "KleeneStar": star_facts,
}
_BINARY_FACTS = {
    "Concat": concat_facts,
    "Or": or_facts,
    "And": and_facts,
}
#: Operators handled by :func:`_transfer_op` (everything but the Repeat family).
_TRANSFER_OPS = frozenset(_UNARY_FACTS) | frozenset(_BINARY_FACTS) | {"Not"}

#: Value-keyed memo over the transfer step itself: the engine rebuilds only
#: the spine of each successor, and across successors those spine steps apply
#: the *same* operator to the *same* child-facts values over and over.  The
#: per-node caches cannot see that (fresh spine nodes are new objects); this
#: one turns a spine recomputation into one dict hit per level.  Bounded and
#: simply dropped when full — it is a pure memo.
_TRANSFER_MEMO: "caches.GuardedDict" = caches.register_cache(
    "repro.analysis.analyzer._TRANSFER_MEMO", caches.GuardedDict()
)
_TRANSFER_MEMO_LIMIT = 1 << 16


def _transfer_op(op: str, child_facts: "tuple[Facts, ...]") -> Facts:
    key = (op, child_facts)
    cached = _TRANSFER_MEMO.get(key)
    if cached is not None:
        return cached
    result = _apply_op(op, list(child_facts))
    if len(_TRANSFER_MEMO) >= _TRANSFER_MEMO_LIMIT:
        with caches.CACHE_LOCK:
            _TRANSFER_MEMO.clear()
    return caches.cache_insert(_TRANSFER_MEMO, key, result)


def _transfer_repeat(
    arg_facts: Facts, low: int, high: Optional[int], drop: bool
) -> Facts:
    key = (arg_facts, low, high, drop)
    cached = _TRANSFER_MEMO.get(key)
    if cached is not None:
        return cached
    result = repeat_facts(arg_facts, low, high)
    if drop:
        result = drop_under(result)
    if len(_TRANSFER_MEMO) >= _TRANSFER_MEMO_LIMIT:
        with caches.CACHE_LOCK:
            _TRANSFER_MEMO.clear()
    return caches.cache_insert(_TRANSFER_MEMO, key, result)


class AnalysisCacheStats:
    """Global hit/miss counters for the per-subtree facts caches."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> Tuple[int, int]:
        return self.hits, self.misses


ANALYSIS_CACHE_STATS = AnalysisCacheStats()


# ---------------------------------------------------------------------------
# Concrete regexes
# ---------------------------------------------------------------------------

def facts_of_regex(regex: rast.Regex) -> Facts:
    """Facts about a concrete regex (``O = U = L(regex)``)."""
    cached = _REGEX_FACTS.get(regex)
    if cached is not None:
        ANALYSIS_CACHE_STATS.hits += 1
        return cached
    ANALYSIS_CACHE_STATS.misses += 1
    facts = _regex_facts_uncached(regex)
    return caches.cache_insert(_REGEX_FACTS, regex, facts)


def _regex_facts_uncached(regex: rast.Regex) -> Facts:
    if isinstance(regex, rast.CharClass):
        return char_class_facts(chars_of(regex.kind))
    if isinstance(regex, rast.Epsilon):
        return EPSILON_FACTS
    if isinstance(regex, rast.EmptySet):
        return EMPTY_FACTS
    if isinstance(regex, rast.StartsWith):
        return starts_with_facts(facts_of_regex(regex.arg))
    if isinstance(regex, rast.EndsWith):
        return ends_with_facts(facts_of_regex(regex.arg))
    if isinstance(regex, rast.Contains):
        return contains_facts(facts_of_regex(regex.arg))
    if isinstance(regex, rast.Not):
        return not_facts(facts_of_regex(regex.arg))
    if isinstance(regex, rast.Optional):
        return optional_facts(facts_of_regex(regex.arg))
    if isinstance(regex, rast.KleeneStar):
        return star_facts(facts_of_regex(regex.arg))
    if isinstance(regex, rast.Concat):
        return concat_facts(facts_of_regex(regex.left), facts_of_regex(regex.right))
    if isinstance(regex, rast.Or):
        return or_facts(facts_of_regex(regex.left), facts_of_regex(regex.right))
    if isinstance(regex, rast.And):
        return and_facts(facts_of_regex(regex.left), facts_of_regex(regex.right))
    if isinstance(regex, rast.Repeat):
        return repeat_facts(facts_of_regex(regex.arg), regex.count, regex.count)
    if isinstance(regex, rast.RepeatAtLeast):
        return repeat_facts(facts_of_regex(regex.arg), regex.count, None)
    if isinstance(regex, rast.RepeatRange):
        return repeat_facts(facts_of_regex(regex.arg), regex.low, regex.high)
    raise TypeError(f"unknown regex node: {regex!r}")


# ---------------------------------------------------------------------------
# Sketches
# ---------------------------------------------------------------------------

def facts_of_sketch(sketch: sast.Sketch, hole_depth: int = 3) -> Facts:
    """Facts bracketing every depth-bounded completion of an h-sketch."""
    per_depth = _SKETCH_FACTS.get(sketch)
    if per_depth is not None:
        cached = per_depth.get(hole_depth)
        if cached is not None:
            ANALYSIS_CACHE_STATS.hits += 1
            return cached
    ANALYSIS_CACHE_STATS.misses += 1
    facts = _sketch_facts_uncached(sketch, hole_depth)
    with caches.CACHE_LOCK:
        per_depth = _SKETCH_FACTS.get(sketch)
        if per_depth is None:
            per_depth = caches.GuardedDict()
            _SKETCH_FACTS[sketch] = per_depth
        existing = per_depth.get(hole_depth)
        if existing is not None:
            return existing
        per_depth[hole_depth] = facts
    return facts


def _sketch_facts_uncached(sketch: sast.Sketch, hole_depth: int) -> Facts:
    if isinstance(sketch, sast.ConcreteRegexSketch):
        return facts_of_regex(sketch.regex)
    if isinstance(sketch, sast.OpSketch):
        child_facts = [facts_of_sketch(arg, hole_depth) for arg in sketch.args]
        return _apply_op(sketch.op, child_facts)
    if isinstance(sketch, sast.IntOpSketch):
        arg_facts = facts_of_sketch(sketch.arg, hole_depth)
        if all(value is not None for value in sketch.ints):
            low, high = _concrete_bounds(sketch.op, sketch.ints)
            return repeat_facts(arg_facts, low, high)
        # Figure 12, rule 6: unknown integers widen to "at least once" and
        # forfeit the under side.
        return drop_under(repeat_facts(arg_facts, 1, None))
    if isinstance(sketch, sast.Hole):
        return _hole_facts(sketch.components, hole_depth)
    raise TypeError(f"unknown sketch node: {sketch!r}")


def _hole_facts(components: Tuple[sast.Sketch, ...], depth: int) -> Facts:
    """Rules 1–3 of Figure 12: holes beyond the precision bound are ⊤."""
    if not components or depth > 1:
        return TOP_FACTS
    combined = facts_of_sketch(components[0], depth)
    for component in components[1:]:
        other = facts_of_sketch(component, depth)
        # A completion embeds *one* component: over side is the union, but
        # the under side only keeps what every alternative guarantees.
        merged = or_facts(combined, other)
        combined = Facts(
            min_len=merged.min_len,
            max_len=merged.max_len,
            first=merged.first,
            last=merged.last,
            allowed=merged.allowed,
            required=merged.required,
            empty=merged.empty,
            universal=combined.universal and other.universal,
            must_empty=combined.must_empty and other.must_empty,
        )
    return combined


def _apply_op(op: str, child_facts: "list[Facts]") -> Facts:
    if op == "Not":
        return not_facts(child_facts[0])
    unary = _UNARY_FACTS.get(op)
    if unary is not None:
        return unary(child_facts[0])
    return _BINARY_FACTS[op](*child_facts)


def _concrete_bounds(
    op: str, ints: Tuple[Optional[int], ...]
) -> Tuple[int, Optional[int]]:
    if op == "Repeat":
        (n,) = ints
        assert n is not None
        return n, n
    if op == "RepeatAtLeast":
        (n,) = ints
        assert n is not None
        return n, None
    low, high = ints
    assert low is not None and high is not None
    return low, high


# ---------------------------------------------------------------------------
# Partial regexes
# ---------------------------------------------------------------------------

def facts_of_partial(
    partial: PartialRegex, hole_depth: int = 3, kmax: Optional[int] = None
) -> Facts:
    """Facts bracketing every completion of a partial regex (cached).

    With ``kmax=None`` the result abstracts the Figure-11 approximation pair
    exactly; with ``kmax=K`` symbolic repetition counts are assumed to lie in
    ``[1, K]`` (sound for the engine, which never instantiates beyond
    ``SynthesisConfig.max_kappa``).
    """
    # The memo lives *on* the interned node (the `_hash` precedent): an
    # attribute read is an order of magnitude cheaper than a weak-dict
    # lookup, and the entry dies with the node exactly like a weak-keyed
    # one would.  Mutations are single atomic bytecodes on a plain dict, so
    # a racing thread can at worst overwrite an equal entry (the function is
    # pure) — a benign lost update, recomputed on the next call.
    key = (hole_depth, kmax)
    per_key = getattr(partial, "_facts", None)
    if per_key is not None:
        cached = per_key.get(key)
        if cached is not None:
            ANALYSIS_CACHE_STATS.hits += 1
            return cached
    ANALYSIS_CACHE_STATS.misses += 1
    facts = _partial_facts_uncached(partial, hole_depth, kmax)
    if per_key is None:
        per_key = {}
        object.__setattr__(partial, "_facts", per_key)
    per_key[key] = facts
    return facts


def _partial_facts_uncached(
    partial: PartialRegex, hole_depth: int, kmax: Optional[int]
) -> Facts:
    if isinstance(partial, PLeaf):
        return facts_of_regex(partial.regex)
    if isinstance(partial, POpen):
        label = partial.label
        if isinstance(label, HoleLabel):
            return _hole_facts(label.components, label.depth)
        if isinstance(label, FreeLabel):
            return TOP_FACTS
        return facts_of_sketch(label, hole_depth)
    if isinstance(partial, POp):
        child_facts = tuple(
            [facts_of_partial(child, hole_depth, kmax) for child in partial.children]
        )
        if partial.op in _TRANSFER_OPS:
            return _transfer_op(partial.op, child_facts)
        # Repeat family.
        arg_facts = child_facts[0]
        if any(isinstance(value, SymInt) for value in partial.ints):
            low, high = _symbolic_bounds(partial.op, partial.ints, kmax)
            return _transfer_repeat(arg_facts, low, high, drop=True)
        low, high = _concrete_bounds(partial.op, partial.ints)
        return _transfer_repeat(arg_facts, low, high, drop=False)
    raise TypeError(f"unknown partial regex node: {partial!r}")


def _symbolic_bounds(
    op: str,
    ints: Tuple[Union[int, SymInt], ...],
    kmax: Optional[int],
) -> Tuple[int, Optional[int]]:
    """Repetition bounds for a Repeat-family node with symbolic integers.

    ``kmax=None`` reproduces Figure 11, rule 5 (``RepeatAtLeast(·, 1)``)
    regardless of the operator, keeping facts in lock-step with
    :func:`~repro.synthesis.approximate.approximate_partial`.  ``kmax=K``
    instead bounds each symbolic integer by ``[1, K]``.
    """
    if kmax is None:
        return 1, None

    def _low(value: Union[int, SymInt]) -> int:
        return 1 if isinstance(value, SymInt) else value

    def _high(value: Union[int, SymInt]) -> int:
        return kmax if isinstance(value, SymInt) else value

    if op == "Repeat":
        (n,) = ints
        return _low(n), _high(n)
    if op == "RepeatAtLeast":
        (n,) = ints
        return _low(n), None
    low, high = ints
    return _low(low), _high(high)
