"""Example checks — the engine-facing side of the static analyzer.

:func:`partial_prune_reason` is the cheap pre-filter that
:meth:`repro.synthesis.engine.SynthesisRun.step` runs on every successor
before the match-set evaluator: when the facts of a partial prove some
positive example unmatchable, or some negative example unavoidably matched,
no completion can be consistent and the successor is pruned without a single
membership query.

Soundness contract: a non-``None`` reason is a *proof* of infeasibility with
respect to the completions the engine can reach (symbolic integers bounded by
``SynthesisConfig.max_kappa``); ``None`` just means "maybe".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.analyzer import facts_of_partial
from repro.analysis.facts import Facts
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.examples import Examples
from repro.synthesis.partial import PartialRegex

#: Sentinel distinguishing "memoized None" from "not memoized" (dict.get).
_UNKNOWN = "?"


def _verdict(facts: Facts, examples: Examples) -> Optional[str]:
    for positive in examples.positive:
        reason = facts.reject_reason(positive)
        if reason is not None:
            return f"positive:{reason}"
    for negative in examples.negative:
        if facts.must_match(negative):
            return "negative:unavoidable"
    return None


def partial_prune_reason(
    partial: PartialRegex,
    examples: Examples,
    config: SynthesisConfig,
    memo: Optional[Dict[Facts, Optional[str]]] = None,
) -> Optional[str]:
    """Why ``partial`` provably cannot satisfy ``examples``, or ``None``.

    Reasons are ``"positive:<fact>"`` (some positive example cannot be in any
    completion's language) or ``"negative:unavoidable"`` (some negative
    example is in every completion's language).

    ``memo`` is an optional facts→verdict cache for a *fixed* example set:
    distinct successors overwhelmingly share facts values, so a caller in a
    loop (the engine) skips the per-example checks after the first sighting
    of each facts record.  The caller owns the dict and must not reuse it
    across example sets.
    """
    if not config.use_approximation or not config.use_static_analysis:
        return None
    kmax = config.max_kappa if config.use_symbolic_ints else None
    facts = facts_of_partial(partial, config.hole_depth, kmax)
    if memo is None:
        return _verdict(facts, examples)
    reason = memo.get(facts, _UNKNOWN)
    if reason is _UNKNOWN:
        reason = memo[facts] = _verdict(facts, examples)
    return reason


def static_infeasible(
    partial: PartialRegex,
    examples: Examples,
    config: SynthesisConfig,
    memo: Optional[Dict[Facts, Optional[str]]] = None,
) -> bool:
    """Boolean form of :func:`partial_prune_reason`."""
    return partial_prune_reason(partial, examples, config, memo) is not None


def prune_checker(examples: Examples, config: SynthesisConfig):
    """A ``partial -> reason | None`` callable specialised to one run.

    Semantically identical to calling :func:`partial_prune_reason` with a
    caller-owned memo, but the configuration flags, ``kmax``, and the
    facts→verdict memo are resolved once instead of per successor — the
    engine calls this in its innermost expansion loop.
    """
    if not config.use_approximation or not config.use_static_analysis:
        return lambda partial: None
    kmax = config.max_kappa if config.use_symbolic_ints else None
    hole_depth = config.hole_depth
    memo: Dict[Facts, Optional[str]] = {}

    def check(partial: PartialRegex) -> Optional[str]:
        facts = facts_of_partial(partial, hole_depth, kmax)
        reason = memo.get(facts, _UNKNOWN)
        if reason is _UNKNOWN:
            reason = memo[facts] = _verdict(facts, examples)
        return reason

    return check
