"""The abstract domain of the static analyzer.

A :class:`Facts` value describes a *pair* of languages ``(O, U)`` with
``U ⊆ L ⊆ O`` for every language ``L`` an analyzed (partial) program can
denote — the same over-/under-approximation contract as Figures 11–12, but
abstracted further into cheap, decidable facts:

* the **over side** (``min_len``/``max_len``, ``first``/``last``/``allowed``
  character sets, ``required`` groups, ``empty``) holds for ``O`` and is used
  to prove a *positive* example unmatchable — a string outside ``O`` is
  outside every completion's language;
* the **under side** (``universal``, ``must_empty``) holds for ``U`` and is
  used to prove a *negative* example unavoidably matched — a string inside
  ``U`` is inside every completion's language.

Soundness is one-directional by design: the analysis may answer "maybe", it
must never produce a wrong "no".  Every combinator below therefore rounds
towards ⊤ (``None`` character sets, ``max_len=None``, empty ``required``)
whenever precision would cost soundness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

CharSet = FrozenSet[str]

#: Cap on the number of ``required`` groups kept per node.  ``required`` is a
#: conjunction, so dropping groups only loses precision, never soundness.
MAX_REQUIRED_GROUPS = 8


@dataclass(frozen=True)
class Facts:
    """Abstract facts about a (partial) regex's possible languages.

    The default value is ⊤: over side "any string may match", under side
    "no string provably matches" — the correct abstraction of a hole.
    """

    #: Every string of ``O`` has length at least ``min_len``.
    min_len: int = 0
    #: Every string of ``O`` has length at most ``max_len`` (``None`` = ∞).
    max_len: Optional[int] = None
    #: Every *non-empty* string of ``O`` starts with a character from
    #: ``first`` (``None`` = unknown/any).
    first: Optional[CharSet] = None
    #: Every non-empty string of ``O`` ends with a character from ``last``.
    last: Optional[CharSet] = None
    #: Every character of every string of ``O`` belongs to ``allowed``.
    allowed: Optional[CharSet] = None
    #: Conjunction of groups: every string of ``O`` contains at least one
    #: character from *each* group.
    required: FrozenSet[CharSet] = frozenset()
    #: ``O`` is provably the empty language (no completion matches anything).
    empty: bool = False
    #: ``U`` provably contains **every** string — over the full (unbounded)
    #: alphabet, not merely the printable one; only truly-universal
    #: constructions (e.g. ``Not(<null>)``) may set this.
    universal: bool = False
    #: ``U`` provably contains the empty string.
    must_empty: bool = False

    def may_match(self, subject: str) -> bool:
        """Whether ``subject`` may be in ``O`` (False is a *proof* of absence)."""
        return self.reject_reason(subject) is None

    def reject_reason(self, subject: str) -> Optional[str]:
        """The first fact proving ``subject ∉ O``, or None when it may match."""
        if self.empty:
            return "empty-language"
        n = len(subject)
        if n < self.min_len:
            return "too-short"
        if self.max_len is not None and n > self.max_len:
            return "too-long"
        if n == 0:
            return None
        if self.first is not None and subject[0] not in self.first:
            return "first-char"
        if self.last is not None and subject[-1] not in self.last:
            return "last-char"
        if self.allowed is not None and not self.allowed.issuperset(subject):
            return "foreign-char"
        if self.required:
            chars = frozenset(subject)
            for group in self.required:
                if chars.isdisjoint(group):
                    return "missing-required-char"
        return None

    def must_match(self, subject: str) -> bool:
        """Whether ``subject`` is provably in ``U`` (True is a proof of presence)."""
        if self.universal:
            return True
        return self.must_empty and not subject


#: ⊤ — a hole: anything may match, nothing must.
TOP_FACTS = Facts()

#: The empty language.  The inconsistent interval ``[1, 0]`` makes the
#: emptiness visible to interval arithmetic too.
EMPTY_FACTS = Facts(
    min_len=1,
    max_len=0,
    first=frozenset(),
    last=frozenset(),
    allowed=frozenset(),
    empty=True,
)

#: Exactly the empty string (on both sides).
EPSILON_FACTS = Facts(
    min_len=0,
    max_len=0,
    first=frozenset(),
    last=frozenset(),
    allowed=frozenset(),
    must_empty=True,
)


def _union(a: Optional[CharSet], b: Optional[CharSet]) -> Optional[CharSet]:
    if a is None or b is None:
        return None
    return a | b


def _inter(a: Optional[CharSet], b: Optional[CharSet]) -> Optional[CharSet]:
    if a is None:
        return b
    if b is None:
        return a
    return a & b


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


def _scale(a: Optional[int], n: Optional[int]) -> Optional[int]:
    if a is None or n is None:
        return None
    return a * n


def _min_opt(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _group_key(group: CharSet) -> Tuple[int, Tuple[str, ...]]:
    return len(group), tuple(sorted(group))


def _norm(facts: Facts) -> Facts:
    """Derive implied emptiness, tighten sets, and canonicalise.

    * an inconsistent interval, or a mandatory character drawn from an empty
      set, proves emptiness;
    * ``first``/``last`` characters are characters of the match, so they can
      be intersected with ``allowed``;
    * a non-trivial ``required`` group implies a non-empty match.
    """
    empty = facts.empty
    if facts.max_len is not None and facts.min_len > facts.max_len:
        empty = True
    first = _inter(facts.first, facts.allowed)
    if first is not facts.first and first == facts.first:
        first = facts.first  # preserve identity so the no-op fast path fires
    last = _inter(facts.last, facts.allowed)
    if last is not facts.last and last == facts.last:
        last = facts.last
    required = facts.required
    if required:
        tightened = []
        changed = False
        for group in required:
            narrowed = group if facts.allowed is None else (group & facts.allowed)
            if not narrowed:
                empty = True
                break
            if narrowed != group:
                changed = True
                tightened.append(narrowed)
            else:
                tightened.append(group)
        else:
            if len(tightened) > MAX_REQUIRED_GROUPS:
                tightened = sorted(tightened, key=_group_key)[:MAX_REQUIRED_GROUPS]
                changed = True
            if changed:
                required = frozenset(tightened)
    min_len = facts.min_len
    if required and min_len < 1:
        min_len = 1
    if min_len > 0 and not empty:
        for charset in (first, last, facts.allowed):
            if charset is not None and not charset:
                empty = True
                break
    if empty:
        return EMPTY_FACTS
    if (
        min_len == facts.min_len
        and first is facts.first
        and last is facts.last
        and required is facts.required
    ):
        # Already normal (the common case on warm transfer chains — ``_inter``
        # and the group loop preserve identity when nothing tightens).
        return facts
    return replace(
        facts, min_len=min_len, first=first, last=last, required=required
    )


# ---------------------------------------------------------------------------
# Transfer functions, one per DSL operator
# ---------------------------------------------------------------------------

def char_class_facts(chars: CharSet) -> Facts:
    """``O = U =`` the single-character strings over ``chars``."""
    return Facts(
        min_len=1,
        max_len=1,
        first=chars,
        last=chars,
        allowed=chars,
        required=frozenset((chars,)),
    )


def concat_facts(a: Facts, b: Facts) -> Facts:
    if a.empty or b.empty:
        return EMPTY_FACTS
    return _norm(
        Facts(
            min_len=a.min_len + b.min_len,
            max_len=_add(a.max_len, b.max_len),
            first=a.first if a.min_len > 0 else _union(a.first, b.first),
            last=b.last if b.min_len > 0 else _union(a.last, b.last),
            allowed=_union(a.allowed, b.allowed),
            required=a.required | b.required,
            universal=a.universal and b.universal,
            must_empty=a.must_empty and b.must_empty,
        )
    )


def or_facts(a: Facts, b: Facts) -> Facts:
    # The under side is a union, so an empty branch still contributes nothing
    # and the other branch's guarantees survive.
    universal = a.universal or b.universal
    must_empty = a.must_empty or b.must_empty
    if a.empty:
        return _norm(replace(b, universal=universal, must_empty=must_empty))
    if b.empty:
        return _norm(replace(a, universal=universal, must_empty=must_empty))
    # A group required by every match of the union must cover both branches:
    # the pairwise unions of the branches' groups do exactly that.
    required = frozenset(
        group_a | group_b for group_a in a.required for group_b in b.required
    )
    return _norm(
        Facts(
            min_len=min(a.min_len, b.min_len),
            max_len=None
            if a.max_len is None or b.max_len is None
            else max(a.max_len, b.max_len),
            first=_union(a.first, b.first),
            last=_union(a.last, b.last),
            allowed=_union(a.allowed, b.allowed),
            required=required,
            universal=universal,
            must_empty=must_empty,
        )
    )


def and_facts(a: Facts, b: Facts) -> Facts:
    if a.empty or b.empty:
        return EMPTY_FACTS
    return _norm(
        Facts(
            min_len=max(a.min_len, b.min_len),
            max_len=_min_opt(a.max_len, b.max_len),
            first=_inter(a.first, b.first),
            last=_inter(a.last, b.last),
            allowed=_inter(a.allowed, b.allowed),
            required=a.required | b.required,
            universal=a.universal and b.universal,
            must_empty=a.must_empty and b.must_empty,
        )
    )


def not_facts(a: Facts) -> Facts:
    # Negation swaps the sides: O(¬r) = complement of U(r) and vice versa, so
    # each side of the result is derived from the *other* side of the child.
    return _norm(
        Facts(
            min_len=1 if a.must_empty else 0,
            empty=a.universal,
            universal=a.empty,
            must_empty=a.min_len > 0,
        )
    )


def starts_with_facts(a: Facts) -> Facts:
    if a.empty:
        return EMPTY_FACTS
    return _norm(
        Facts(
            min_len=a.min_len,
            first=a.first if a.min_len > 0 else None,
            required=a.required,
            # An ε prefix matches any string, so ε ∈ U(r) makes StartsWith(r)
            # universal on the under side.
            universal=a.must_empty,
            must_empty=a.must_empty,
        )
    )


def ends_with_facts(a: Facts) -> Facts:
    if a.empty:
        return EMPTY_FACTS
    return _norm(
        Facts(
            min_len=a.min_len,
            last=a.last if a.min_len > 0 else None,
            required=a.required,
            universal=a.must_empty,
            must_empty=a.must_empty,
        )
    )


def contains_facts(a: Facts) -> Facts:
    if a.empty:
        return EMPTY_FACTS
    return _norm(
        Facts(
            min_len=a.min_len,
            required=a.required,
            universal=a.must_empty,
            must_empty=a.must_empty,
        )
    )


def optional_facts(a: Facts) -> Facts:
    if a.empty:
        return EPSILON_FACTS
    return _norm(
        Facts(
            min_len=0,
            max_len=a.max_len,
            first=a.first,
            last=a.last,
            allowed=a.allowed,
            # ε is a match and contains no character, so nothing is required.
            required=frozenset(),
            universal=a.universal,
            must_empty=True,
        )
    )


def star_facts(a: Facts) -> Facts:
    if a.empty or a.max_len == 0:
        return EPSILON_FACTS
    return _norm(
        Facts(
            min_len=0,
            first=a.first,
            last=a.last,
            allowed=a.allowed,
            required=frozenset(),
            universal=a.universal,
            must_empty=True,
        )
    )


def repeat_facts(a: Facts, low: int, high: Optional[int]) -> Facts:
    """``low..high`` repetitions (``high=None`` = unbounded), with ``low ≥ 1``.

    Covers ``Repeat`` (``low == high``), ``RepeatAtLeast`` (``high=None``)
    and ``RepeatRange``.  With at least one repetition guaranteed, the
    child's character facts carry over unchanged: the first block supplies
    ``first``/``required``, the last supplies ``last``.
    """
    if a.empty:
        return EMPTY_FACTS
    max_len = 0 if a.max_len == 0 else _scale(a.max_len, high)
    return _norm(
        Facts(
            min_len=a.min_len * low,
            max_len=max_len,
            first=a.first,
            last=a.last,
            allowed=a.allowed,
            required=a.required,
            universal=a.universal,
            must_empty=a.must_empty,
        )
    )


def drop_under(facts: Facts) -> Facts:
    """Forget the under side (``U = ∅``) — the Figure-11/12 symbolic-integer rule."""
    if not facts.universal and not facts.must_empty:
        return facts
    return replace(facts, universal=False, must_empty=False)
