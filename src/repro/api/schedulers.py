"""Portfolio schedulers: how engine instances share the wall-clock budget.

The paper's tool runs one PBE engine *per sketch in parallel* and takes
results as they arrive.  A :class:`Scheduler` reproduces that portfolio
semantics under an explicit policy; each is a generator that yields
:class:`Found` events (a consistent regex, as soon as it is discovered) and
:class:`Finished` events (per-sketch telemetry), so consumers can stream
results before the budget elapses:

* :class:`SequentialScheduler` — one engine after another.  By default each
  sketch gets a *fair* slice ``min(per_sketch_cap, remaining)`` of the shared
  budget; ``fair=False`` restores the historical greedy behaviour in which a
  pathological first sketch can eat nearly the whole budget,
* :class:`InterleavedScheduler` — round-robin time slices over resumable
  :class:`~repro.synthesis.engine.SynthesisRun` instances: the paper's
  parallel semantics in a single process, with anytime behaviour,
* :class:`ProcessPoolScheduler` — a true multi-core portfolio via
  :mod:`concurrent.futures`; problems and results cross the process boundary
  in their textual notation, so nothing non-picklable is shipped.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Iterator, List, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.dsl import ast as rast
from repro.sketch.ast import Sketch
from repro.sketch.printer import sketch_to_string
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.engine import SynthesisResult, Synthesizer
from repro.synthesis.examples import Examples


@dataclass(frozen=True)
class Found:
    """A consistent regex discovered by the engine running sketch ``index``."""

    index: int
    regex: rast.Regex


@dataclass(frozen=True)
class Finished:
    """Sketch ``index`` will receive no more engine time; ``result`` is final."""

    index: int
    sketch: str
    result: SynthesisResult


SchedulerEvent = Union[Found, Finished]


class CancelToken:
    """Cooperative cancellation flag shared between a caller and a scheduler."""

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


@runtime_checkable
class Scheduler(Protocol):
    """Policy for spending one shared wall-clock budget across many sketches."""

    name: str

    def run(
        self,
        sketches: Sequence[Sketch],
        examples: Examples,
        config: SynthesisConfig,
        budget: float,
        cancel: CancelToken,
    ) -> Iterator[SchedulerEvent]:
        """Yield :class:`Found`/:class:`Finished` events until budget or cancellation."""
        ...


class SequentialScheduler:
    """Run one engine per sketch, in rank order, against the shared budget.

    ``fair=True`` (the default) gives each sketch the slice
    ``min(per_sketch_cap, remaining)``; unused time flows to later sketches
    because the cap is recomputed as ``remaining / sketches_left``.  An
    explicit ``per_sketch_cap`` fixes the cap instead.  ``fair=False``
    restores the historical behaviour (``min(engine_timeout, remaining)``),
    in which one pathological sketch can consume nearly the whole budget.
    """

    name = "sequential"

    def __init__(self, fair: bool = True, per_sketch_cap: Optional[float] = None):
        self.fair = fair
        self.per_sketch_cap = per_sketch_cap

    def run(
        self,
        sketches: Sequence[Sketch],
        examples: Examples,
        config: SynthesisConfig,
        budget: float,
        cancel: CancelToken,
    ) -> Iterator[SchedulerEvent]:
        deadline = time.monotonic() + budget
        total = len(sketches)
        for position, sketch in enumerate(sketches):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or cancel.cancelled:
                break
            if self.fair:
                cap = (
                    self.per_sketch_cap
                    if self.per_sketch_cap is not None
                    else remaining / (total - position)
                )
                slice_budget = min(cap, remaining, config.timeout)
            else:
                slice_budget = min(config.timeout, remaining)
            run = Synthesizer(config).start(sketch, examples)
            result = run.step(slice_budget)
            if not run.done:
                result.timed_out = True
            for regex in result.regexes:
                yield Found(position, regex)
            yield Finished(position, sketch_to_string(sketch), result)


class InterleavedScheduler:
    """Round-robin time slices across all sketches' engines, in one process.

    This matches the paper's run-everything-in-parallel semantics without
    processes: every sketch makes progress early, so an easy sketch ranked
    behind a pathological one still gets engine time long before the budget
    runs out — the portfolio's anytime behaviour.  ``slice_seconds`` bounds
    each turn's wall-clock slice and ``slice_expansions`` (optional) bounds it
    deterministically in worklist pops.
    """

    name = "interleaved"

    def __init__(
        self, slice_seconds: float = 0.2, slice_expansions: Optional[int] = None
    ):
        if slice_seconds <= 0:
            raise ValueError("slice_seconds must be positive")
        self.slice_seconds = slice_seconds
        self.slice_expansions = slice_expansions

    def run(
        self,
        sketches: Sequence[Sketch],
        examples: Examples,
        config: SynthesisConfig,
        budget: float,
        cancel: CancelToken,
    ) -> Iterator[SchedulerEvent]:
        deadline = time.monotonic() + budget
        queue: deque = deque(
            [index, sketch, Synthesizer(config).start(sketch, examples), False]
            for index, sketch in enumerate(sketches)
        )
        while queue and not cancel.cancelled:
            slice_budget = min(self.slice_seconds, deadline - time.monotonic())
            if slice_budget <= 0:
                break
            entry = queue.popleft()
            index, sketch, run, _ = entry
            entry[3] = True  # this sketch has now received engine time
            before = len(run.result.regexes)
            run.step(slice_budget, self.slice_expansions)
            for regex in run.result.regexes[before:]:
                yield Found(index, regex)
            if run.done:
                yield Finished(index, sketch_to_string(sketch), run.result)
            else:
                queue.append(entry)
        # Sketches that received at least one slice were attempted but ran out
        # of budget (or the caller cancelled); never-started sketches are not
        # reported, so telemetry counts genuine attempts only.  Not reached
        # when the consumer closes the generator — a closed stream cannot
        # accept further telemetry anyway.
        while queue:
            index, sketch, run, started = queue.popleft()
            if not started:
                continue
            run.result.timed_out = True
            yield Finished(index, sketch_to_string(sketch), run.result)


def _solve_sketch_worker(
    sketch_text: str,
    positive: List[str],
    negative: List[str],
    config_dict: dict,
    deadline: float,
) -> dict:
    """Worker entry point: everything crossing the boundary is plain data.

    ``deadline`` is a ``time.monotonic`` timestamp; CLOCK_MONOTONIC is
    system-wide on the supported platforms, so a worker that starts late (a
    second wave behind a full pool) sees only the remaining portfolio budget
    instead of restarting the clock.
    """
    from repro.dsl.printer import to_dsl_string
    from repro.sketch.parser import parse_sketch

    config = SynthesisConfig(**config_dict)
    config.timeout = max(0.05, min(config.timeout, deadline - time.monotonic()))
    engine = Synthesizer(config)
    result = engine.synthesize(
        parse_sketch(sketch_text),
        Examples(positive, negative, evaluator=config.evaluator),
    )
    return {
        "regexes": [to_dsl_string(regex) for regex in result.regexes],
        "timed_out": result.timed_out,
        "expansions": result.expansions,
        "pruned": result.pruned,
        "elapsed": result.elapsed,
        "eval_cache_hits": result.eval_cache_hits,
        "eval_cache_misses": result.eval_cache_misses,
        "approx_cache_hits": result.approx_cache_hits,
        "solver_propagations": result.solver_propagations,
        "solver_conflicts": result.solver_conflicts,
        "encode_cache_hits": result.encode_cache_hits,
        "static_prune_hits": result.static_prune_hits,
        "static_prune_misses": result.static_prune_misses,
        "dfa_cache_hits": result.dfa_cache_hits,
        "dfa_compiled": result.dfa_compiled,
        "dfa_compile_ms": result.dfa_compile_ms,
    }


class ProcessPoolScheduler:
    """True multi-core portfolio: one worker process per sketch.

    Each worker gets the whole remaining budget (the workers run
    concurrently, as in the paper's parallel deployment).  Sketches and
    regexes are shipped across the process boundary in their textual
    notation, which round-trips exactly and keeps the futures picklable.
    """

    name = "process-pool"

    #: Extra seconds allowed for workers to notice their own deadline.
    grace = 2.0

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers

    def run(
        self,
        sketches: Sequence[Sketch],
        examples: Examples,
        config: SynthesisConfig,
        budget: float,
        cancel: CancelToken,
    ) -> Iterator[SchedulerEvent]:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

        from repro.dsl.parser import parse_regex

        deadline = time.monotonic() + budget
        config_dict = asdict(config)
        positive = list(examples.positive)
        negative = list(examples.negative)
        max_workers = self.max_workers or min(8, max(1, len(sketches)))
        pool = ProcessPoolExecutor(max_workers=max_workers)
        try:
            futures = {
                pool.submit(
                    _solve_sketch_worker,
                    sketch_to_string(sketch),
                    positive,
                    negative,
                    config_dict,
                    deadline,
                ): (index, sketch)
                for index, sketch in enumerate(sketches)
            }
            pending = set(futures)
            while pending and not cancel.cancelled:
                overtime = time.monotonic() - deadline
                if overtime > self.grace:
                    break
                done, pending = wait(pending, timeout=0.1, return_when=FIRST_COMPLETED)
                for future in done:
                    index, sketch = futures[future]
                    try:
                        payload = future.result()
                    except Exception:
                        # A worker crash counts as an unsolved, exhausted sketch.
                        yield Finished(
                            index, sketch_to_string(sketch), SynthesisResult(timed_out=True)
                        )
                        continue
                    result = SynthesisResult(
                        regexes=[parse_regex(text) for text in payload["regexes"]],
                        timed_out=payload["timed_out"],
                        expansions=payload["expansions"],
                        pruned=payload["pruned"],
                        elapsed=payload["elapsed"],
                        eval_cache_hits=payload.get("eval_cache_hits", 0),
                        eval_cache_misses=payload.get("eval_cache_misses", 0),
                        approx_cache_hits=payload.get("approx_cache_hits", 0),
                        solver_propagations=payload.get("solver_propagations", 0),
                        solver_conflicts=payload.get("solver_conflicts", 0),
                        encode_cache_hits=payload.get("encode_cache_hits", 0),
                        static_prune_hits=payload.get("static_prune_hits", 0),
                        static_prune_misses=payload.get("static_prune_misses", 0),
                        dfa_cache_hits=payload.get("dfa_cache_hits", 0),
                        dfa_compiled=payload.get("dfa_compiled", 0),
                        dfa_compile_ms=payload.get("dfa_compile_ms", 0.0),
                    )
                    for regex in result.regexes:
                        yield Found(index, regex)
                    yield Finished(index, sketch_to_string(sketch), result)
            for future in pending:
                index, sketch = futures[future]
                if future.cancel():
                    # Never started: not an attempt, so no telemetry entry.
                    continue
                yield Finished(
                    index, sketch_to_string(sketch), SynthesisResult(timed_out=True)
                )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


#: Registry used by the CLI's ``--scheduler`` flag.
SCHEDULERS = {
    "sequential": SequentialScheduler,
    "interleaved": InterleavedScheduler,
    "process-pool": ProcessPoolScheduler,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by registry name (see :data:`SCHEDULERS`)."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
    return factory(**kwargs)
