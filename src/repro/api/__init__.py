"""Pipeline-style synthesis API (the service-oriented face of the tool).

The pipeline decomposes one synthesis request into independently schedulable
per-sketch subproblems, mirroring the paper's run-one-engine-per-sketch
deployment:

.. code-block:: text

    Problem ──▶ SketchProvider ──▶ Scheduler ──▶ Session ──▶ RunReport
    (frozen     (NL parser /       (sequential /  (solve /    (solutions +
     spec)       static list /      interleaved /  streaming)  per-sketch
                 single hole)       process pool)              telemetry)

Quick example::

    from repro.api import Problem, Session

    session = Session()
    report = session.solve(Problem("3 digits", positive=["123"], negative=["12"]))
    print(report.best.regex)

Everything in a :class:`Problem`, :class:`Solution`, and :class:`RunReport`
round-trips through JSON, so requests and results can be queued, batched,
and shipped across processes or services.
"""

from repro.api.problem import Problem
from repro.api.providers import (
    NlSketchProvider,
    PbeOnlyProvider,
    SketchProvider,
    StaticSketchProvider,
)
from repro.api.results import RunReport, SketchReport, Solution
from repro.api.schedulers import (
    SCHEDULERS,
    CancelToken,
    Finished,
    Found,
    InterleavedScheduler,
    ProcessPoolScheduler,
    Scheduler,
    SequentialScheduler,
    make_scheduler,
)
from repro.api.session import Session

__all__ = [
    "Problem",
    "Solution",
    "SketchReport",
    "RunReport",
    "SketchProvider",
    "NlSketchProvider",
    "StaticSketchProvider",
    "PbeOnlyProvider",
    "Scheduler",
    "SequentialScheduler",
    "InterleavedScheduler",
    "ProcessPoolScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "CancelToken",
    "Found",
    "Finished",
    "Session",
]
