"""The :class:`Session` facade: provider + scheduler + engine configuration.

A session is the long-lived object an application holds on to (it owns the
trained semantic parser and the scheduling policy); individual requests are
immutable :class:`~repro.api.problem.Problem` values.  Two consumption
styles are offered:

* :meth:`Session.solve` — run to completion, return a full
  :class:`~repro.api.results.RunReport`,
* :meth:`Session.iter_solutions` — a generator that yields each
  :class:`~repro.api.results.Solution` the moment it is discovered
  (anytime/streaming behaviour); closing the generator cancels the
  underlying scheduler cooperatively, and the aggregated report for the
  partial run is available as :attr:`Session.last_report`.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

from repro.api.problem import Problem
from repro.api.providers import NlSketchProvider, SketchProvider
from repro.api.results import RunReport, SketchReport, Solution
from repro.api.schedulers import CancelToken, Found, Scheduler, SequentialScheduler
from repro.dsl.printer import to_dsl_string
from repro.dsl.simplify import size
from repro.synthesis.config import SynthesisConfig


class Session:
    """Reusable synthesis pipeline: sketch provider → scheduler → results."""

    def __init__(
        self,
        provider: Optional[SketchProvider] = None,
        scheduler: Optional[Scheduler] = None,
        config: Optional[SynthesisConfig] = None,
    ):
        self.provider = provider if provider is not None else NlSketchProvider()
        self.scheduler = scheduler if scheduler is not None else SequentialScheduler()
        self.config = config or SynthesisConfig()
        #: Report of the most recent (possibly cancelled) run.
        self.last_report: Optional[RunReport] = None

    def solve(self, problem: Problem, cancel: Optional[CancelToken] = None) -> RunReport:
        """Solve ``problem`` to completion and return the aggregated report."""
        report = RunReport(problem=problem, scheduler=self.scheduler.name)
        self.last_report = report
        for _ in self._stream(problem, cancel, report):
            pass
        return report

    def iter_solutions(
        self, problem: Problem, cancel: Optional[CancelToken] = None
    ) -> Iterator[Solution]:
        """Yield distinct solutions as they are discovered.

        Stops after ``problem.k`` distinct regexes, when the budget elapses,
        or when ``cancel`` fires.  Closing the generator early (or an
        exception in the consumer) cancels the scheduler cooperatively; the
        report of whatever was accomplished is kept in :attr:`last_report`
        (a convenience for single-consumer use — concurrent runs on one
        session should keep their own handle on the stream's report).
        Solutions are yielded in discovery order; in the final report they
        are re-ranked smallest-first (the paper's ordering).
        """
        report = RunReport(problem=problem, scheduler=self.scheduler.name)
        self.last_report = report
        yield from self._stream(problem, cancel, report)

    def _stream(
        self, problem: Problem, cancel: Optional[CancelToken], report: RunReport
    ) -> Iterator[Solution]:
        cancel = cancel or CancelToken()
        config = self.config.for_variant(problem.variant)
        start = time.monotonic()
        if problem.sketches:
            # Problem-pinned sketches (corpus-generated problems ship their
            # hole-punched sketches inline) take precedence over the provider.
            from repro.sketch.parser import parse_sketch

            sketches = [parse_sketch(text) for text in problem.sketches]
        else:
            sketches = self.provider.sketches(problem)
        events = self.scheduler.run(
            sketches, problem.examples(config.evaluator), config, problem.budget, cancel
        )
        seen: set[str] = set()
        try:
            for event in events:
                if isinstance(event, Found):
                    key = to_dsl_string(event.regex)
                    if key in seen or len(report.solutions) >= problem.k:
                        continue
                    seen.add(key)
                    solution = Solution(
                        regex=key,
                        size=size(event.regex),
                        sketch_index=event.index,
                        elapsed=time.monotonic() - start,
                    )
                    report.solutions.append(solution)
                    yield solution
                    if len(report.solutions) >= problem.k:
                        # Enough solutions: ask the scheduler to wind down (it
                        # still reports telemetry for in-flight sketches).
                        cancel.cancel()
                else:
                    result = event.result
                    report.sketches.append(
                        SketchReport(
                            index=event.index,
                            sketch=event.sketch,
                            expansions=result.expansions,
                            pruned=result.pruned,
                            elapsed=result.elapsed,
                            solved=result.solved,
                            timed_out=result.timed_out,
                            eval_cache_hits=result.eval_cache_hits,
                            eval_cache_misses=result.eval_cache_misses,
                            approx_cache_hits=result.approx_cache_hits,
                            solver_propagations=result.solver_propagations,
                            solver_conflicts=result.solver_conflicts,
                            encode_cache_hits=result.encode_cache_hits,
                            static_prune_hits=result.static_prune_hits,
                            static_prune_misses=result.static_prune_misses,
                            dfa_cache_hits=result.dfa_cache_hits,
                            dfa_compiled=result.dfa_compiled,
                            dfa_compile_ms=result.dfa_compile_ms,
                        )
                    )
        except GeneratorExit:
            # The consumer closed the stream: cancel cooperatively.
            cancel.cancel()
            report.cancelled = True
            raise
        finally:
            events.close()
            report.elapsed = time.monotonic() - start
            report.solutions.sort(key=lambda solution: (solution.size, solution.regex))
