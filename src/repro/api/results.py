"""Result types of the pipeline API: :class:`Solution` and :class:`RunReport`.

Solutions carry the regex in the paper's DSL notation (which round-trips
through :func:`repro.dsl.parser.parse_regex`), so a :class:`RunReport` is a
pure-data record that serialises to JSON and back without loss — suitable for
batch outputs, service responses, and offline analysis of per-sketch
telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.api.problem import Problem
from repro.dsl import ast as rast


@dataclass(frozen=True)
class Solution:
    """One consistent regex, as discovered during a run."""

    #: The regex in DSL notation (parse back with :meth:`ast`).
    regex: str
    #: AST size (the ranking key — smaller is better).
    size: int
    #: Index of the sketch whose engine instance found this regex.
    sketch_index: int
    #: Seconds since the start of the run when the regex was found.
    elapsed: float

    def ast(self) -> rast.Regex:
        """Parse the DSL string back into a regex AST."""
        from repro.dsl.parser import parse_regex

        return parse_regex(self.regex)

    def python_regex(self) -> Optional[str]:
        """The equivalent Python ``re`` pattern, or None outside the classical subset."""
        from repro.dsl.printer import UnsupportedConstructError, to_python_regex

        try:
            return to_python_regex(self.ast())
        except UnsupportedConstructError:
            return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "regex": self.regex,
            "size": self.size,
            "sketch_index": self.sketch_index,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Solution":
        return cls(
            regex=data["regex"],
            size=data["size"],
            sketch_index=data["sketch_index"],
            elapsed=data["elapsed"],
        )


@dataclass(frozen=True)
class SketchReport:
    """Per-sketch engine telemetry, recorded for every *attempted* sketch."""

    #: Position of the sketch in the provider's ranked list.
    index: int
    #: The sketch in textual notation.
    sketch: str
    #: Worklist expansions performed by this sketch's engine instance.
    expansions: int
    #: Candidates discarded by the approximation check.
    pruned: int
    #: Engine time spent on this sketch, in seconds.
    elapsed: float
    #: Whether this sketch's engine found at least one consistent regex.
    solved: bool
    #: Whether the engine was stopped by a budget or expansion cap.
    timed_out: bool
    #: Match-set evaluation cache hits/misses during this sketch's search
    #: (zero when the engine ran with the recursive reference evaluator, and
    #: in reports produced before these counters existed).
    eval_cache_hits: int = 0
    eval_cache_misses: int = 0
    #: Per-subtree approximation cache hits during this sketch's search.
    approx_cache_hits: int = 0
    #: Solver propagation/conflict counts during this sketch's search (zero
    #: in reports produced before the propagation-based solver existed).
    solver_propagations: int = 0
    solver_conflicts: int = 0
    #: Figure-13 encoding-cache hits during this sketch's search.
    encode_cache_hits: int = 0
    #: Successors rejected by the static analyzer before any membership query
    #: (hits) and successors it could not rule out (misses); zero in reports
    #: produced before the analyzer existed.
    static_prune_hits: int = 0
    static_prune_misses: int = 0
    #: Compiled-membership (DFA) cache hits during this sketch's search,
    #: automata compiled by it, and milliseconds spent compiling — zero in
    #: reports produced before the automata-backed evaluator existed and
    #: when the engine ran with a non-compiled evaluator.
    dfa_cache_hits: int = 0
    dfa_compiled: int = 0
    dfa_compile_ms: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "sketch": self.sketch,
            "expansions": self.expansions,
            "pruned": self.pruned,
            "elapsed": self.elapsed,
            "solved": self.solved,
            "timed_out": self.timed_out,
            "eval_cache_hits": self.eval_cache_hits,
            "eval_cache_misses": self.eval_cache_misses,
            "approx_cache_hits": self.approx_cache_hits,
            "solver_propagations": self.solver_propagations,
            "solver_conflicts": self.solver_conflicts,
            "encode_cache_hits": self.encode_cache_hits,
            "static_prune_hits": self.static_prune_hits,
            "static_prune_misses": self.static_prune_misses,
            "dfa_cache_hits": self.dfa_cache_hits,
            "dfa_compiled": self.dfa_compiled,
            "dfa_compile_ms": self.dfa_compile_ms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SketchReport":
        return cls(
            index=data["index"],
            sketch=data["sketch"],
            expansions=data["expansions"],
            pruned=data["pruned"],
            elapsed=data["elapsed"],
            solved=data["solved"],
            timed_out=data["timed_out"],
            eval_cache_hits=data.get("eval_cache_hits", 0),
            eval_cache_misses=data.get("eval_cache_misses", 0),
            approx_cache_hits=data.get("approx_cache_hits", 0),
            solver_propagations=data.get("solver_propagations", 0),
            solver_conflicts=data.get("solver_conflicts", 0),
            encode_cache_hits=data.get("encode_cache_hits", 0),
            static_prune_hits=data.get("static_prune_hits", 0),
            static_prune_misses=data.get("static_prune_misses", 0),
            dfa_cache_hits=data.get("dfa_cache_hits", 0),
            dfa_compiled=data.get("dfa_compiled", 0),
            dfa_compile_ms=data.get("dfa_compile_ms", 0.0),
        )


@dataclass
class RunReport:
    """Aggregate outcome of solving one :class:`Problem`."""

    #: The problem this report answers.
    problem: Problem
    #: Name of the scheduler that produced the report.
    scheduler: str = "sequential"
    #: Distinct consistent regexes, smallest first (at most ``problem.k``).
    solutions: List[Solution] = field(default_factory=list)
    #: Telemetry for every sketch that was attempted.
    sketches: List[SketchReport] = field(default_factory=list)
    #: Total wall-clock time of the run, in seconds.
    elapsed: float = 0.0
    #: True when the run was cancelled before its budget elapsed.
    cancelled: bool = False
    #: Where the report came from: ``"engine"`` for a fresh synthesis run,
    #: ``"cache"`` when the service answered from its persistent result store.
    provenance: str = "engine"
    #: Canonical problem hash (set by the service; empty outside of it).
    cache_key: str = ""

    @property
    def solved(self) -> bool:
        return bool(self.solutions)

    @property
    def best(self) -> Optional[Solution]:
        return self.solutions[0] if self.solutions else None

    @property
    def sketches_tried(self) -> int:
        return len(self.sketches)

    @property
    def total_expansions(self) -> int:
        return sum(report.expansions for report in self.sketches)

    @property
    def total_pruned(self) -> int:
        return sum(report.pruned for report in self.sketches)

    @property
    def total_eval_cache_hits(self) -> int:
        return sum(report.eval_cache_hits for report in self.sketches)

    @property
    def total_static_prune_hits(self) -> int:
        return sum(report.static_prune_hits for report in self.sketches)

    @property
    def static_prune_rate(self) -> float:
        """Fraction of analyzer-checked successors that were pruned statically."""
        hits = self.total_static_prune_hits
        total = hits + sum(report.static_prune_misses for report in self.sketches)
        return hits / total if total else 0.0

    @property
    def total_solver_propagations(self) -> int:
        return sum(report.solver_propagations for report in self.sketches)

    @property
    def total_solver_conflicts(self) -> int:
        return sum(report.solver_conflicts for report in self.sketches)

    @property
    def total_dfa_cache_hits(self) -> int:
        return sum(report.dfa_cache_hits for report in self.sketches)

    @property
    def total_dfa_compiled(self) -> int:
        return sum(report.dfa_compiled for report in self.sketches)

    @property
    def total_dfa_compile_ms(self) -> float:
        return sum(report.dfa_compile_ms for report in self.sketches)

    @property
    def eval_cache_hit_rate(self) -> float:
        """Fraction of evaluation-cache lookups that hit, across all sketches."""
        hits = self.total_eval_cache_hits
        misses = sum(report.eval_cache_misses for report in self.sketches)
        total = hits + misses
        return hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "problem": self.problem.to_dict(),
            "scheduler": self.scheduler,
            "solutions": [solution.to_dict() for solution in self.solutions],
            "sketches": [report.to_dict() for report in self.sketches],
            "elapsed": self.elapsed,
            "cancelled": self.cancelled,
            "solved": self.solved,
            "provenance": self.provenance,
            "cache_key": self.cache_key,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        return cls(
            problem=Problem.from_dict(data["problem"]),
            scheduler=data.get("scheduler", "sequential"),
            solutions=[Solution.from_dict(entry) for entry in data.get("solutions", [])],
            sketches=[SketchReport.from_dict(entry) for entry in data.get("sketches", [])],
            elapsed=data.get("elapsed", 0.0),
            cancelled=data.get("cancelled", False),
            provenance=data.get("provenance", "engine"),
            cache_key=data.get("cache_key", ""),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))
