"""Pluggable sketch providers.

A :class:`SketchProvider` turns a :class:`~repro.api.problem.Problem` into the
ranked list of hierarchical sketches the schedulers run PBE engines over.
The three implementations cover the tool's three modes:

* :class:`NlSketchProvider` — the full Regel front end: the semantic parser
  maps the English description to ranked h-sketches (Figure 1),
* :class:`StaticSketchProvider` — user-supplied sketches in the textual
  notation (what the ablations and gold-sketch experiments need, replacing
  the old ``sketches=`` keyword override),
* :class:`PbeOnlyProvider` — a single unconstrained hole, i.e. the
  examples-only Regel-PBE baseline of Section 8.1.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, runtime_checkable

from repro.api.problem import Problem
from repro.sketch.ast import Hole, Sketch
from repro.sketch.parser import parse_sketch


@runtime_checkable
class SketchProvider(Protocol):
    """Anything that maps a problem to a ranked list of sketches."""

    def sketches(self, problem: Problem) -> List[Sketch]:
        """Ranked sketches for ``problem``, best first."""
        ...


class NlSketchProvider:
    """Sketches from the semantic parser (English description → h-sketches)."""

    def __init__(self, parser: Optional["SemanticParser"] = None, num_sketches: int = 25):
        from repro.nlp.sketch_gen import SemanticParser

        self.parser = parser or SemanticParser()
        self.num_sketches = num_sketches

    def sketches(self, problem: Problem) -> List[Sketch]:
        if not problem.description.strip():
            # No description to parse: fall back to examples-only synthesis.
            return [Hole(())]
        return self.parser.sketches(problem.description, k=self.num_sketches)


class StaticSketchProvider:
    """A fixed sketch list, given as ASTs or strings in the textual notation."""

    def __init__(self, sketches: Sequence["Sketch | str"]):
        self._sketches: List[Sketch] = [
            sketch if isinstance(sketch, Sketch) else parse_sketch(sketch)
            for sketch in sketches
        ]
        if not self._sketches:
            raise ValueError("StaticSketchProvider needs at least one sketch")

    def sketches(self, problem: Problem) -> List[Sketch]:
        return list(self._sketches)


class PbeOnlyProvider:
    """A single unconstrained hole: synthesis from examples only (Regel-PBE)."""

    def sketches(self, problem: Problem) -> List[Sketch]:
        return [Hole(())]
