"""The frozen :class:`Problem` specification.

A :class:`Problem` is a complete, immutable, serialisable description of one
synthesis request: the English description, the positive/negative string
examples, how many regexes to return (``k``), the wall-clock budget, and the
engine variant.  Because problems are plain frozen dataclasses that
round-trip through JSON (:meth:`Problem.to_dict` / :meth:`Problem.from_dict`),
they can be queued, batched, logged, shipped to worker processes, and
replayed — the prerequisites for running synthesis as a service.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping

from repro.synthesis.config import EngineVariant
from repro.synthesis.examples import Examples


@dataclass(frozen=True)
class Problem:
    """One synthesis request (immutable and JSON-round-trippable)."""

    #: Natural-language description of the target regex (may be empty for
    #: examples-only synthesis).
    description: str = ""
    #: Strings the regex must accept.
    positive: tuple[str, ...] = ()
    #: Strings the regex must reject.
    negative: tuple[str, ...] = ()
    #: Number of distinct consistent regexes requested.
    k: int = 1
    #: Total wall-clock budget in seconds, shared across all sketches.
    budget: float = 20.0
    #: Engine variant (full Regel or one of the Figure-18 ablations).
    variant: EngineVariant = EngineVariant.FULL
    #: Optional *pinned* sketches in the textual notation.  When non-empty,
    #: the session runs exactly these instead of asking its sketch provider —
    #: this is how corpus-generated problems carry their hole-punched
    #: sketches through the wire, and why the sketches are part of the
    #: problem (and hence of :meth:`cache_key`): the same examples under
    #: different sketches are different search problems.
    sketches: tuple[str, ...] = ()

    def __init__(
        self,
        description: str = "",
        positive: Iterable[str] = (),
        negative: Iterable[str] = (),
        k: int = 1,
        budget: float = 20.0,
        variant: EngineVariant | str = EngineVariant.FULL,
        sketches: Iterable[str] = (),
    ):
        object.__setattr__(self, "description", description)
        object.__setattr__(self, "positive", tuple(positive))
        object.__setattr__(self, "negative", tuple(negative))
        object.__setattr__(self, "k", int(k))
        object.__setattr__(self, "budget", float(budget))
        if isinstance(variant, str):
            variant = EngineVariant(variant)
        object.__setattr__(self, "variant", variant)
        object.__setattr__(self, "sketches", tuple(sketches))
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if not all(isinstance(sketch, str) for sketch in self.sketches):
            raise ValueError("sketches must be strings in the textual notation")

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "description": self.description,
            "positive": list(self.positive),
            "negative": list(self.negative),
            "k": self.k,
            "budget": self.budget,
            "variant": self.variant.value,
        }
        # Emitted only when present: sketch-less problems keep the exact wire
        # form (and therefore cache_key) they had before this field existed.
        if self.sketches:
            data["sketches"] = list(self.sketches)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Problem":
        return cls(
            description=data.get("description", ""),
            positive=data.get("positive", ()),
            negative=data.get("negative", ()),
            k=data.get("k", 1),
            budget=data.get("budget", 20.0),
            variant=data.get("variant", EngineVariant.FULL),
            sketches=data.get("sketches", ()),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def canonical_json(self) -> str:
        """Deterministic JSON rendering: the service's canonical wire form.

        Keys are sorted, separators are compact, and non-ASCII is escaped, so
        two problems with equal field values always render byte-identically —
        the property :meth:`cache_key` depends on.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )

    def cache_key(self) -> str:
        """Content-addressed identity of this problem (SHA-256 hex digest).

        Equal problems hash equally regardless of field order or how the
        problem was constructed (kwargs, ``from_dict``, ``from_json``), which
        is what lets the service deduplicate identical requests across users.
        """
        return hashlib.sha256(self.canonical_json().encode("ascii")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "Problem":
        return cls.from_dict(json.loads(text))

    # -- helpers -------------------------------------------------------------

    def examples(self, evaluator: str | None = None) -> Examples:
        """The example set as consumed by the PBE engine.

        ``evaluator`` selects the membership evaluation strategy (see
        :data:`repro.synthesis.examples.EVALUATORS`); None keeps the
        engine default.
        """
        if evaluator is None:
            return Examples(self.positive, self.negative)
        return Examples(self.positive, self.negative, evaluator=evaluator)
