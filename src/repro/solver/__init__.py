"""Bounded-integer constraint solver (the reproduction's Z3 substitute).

The paper feeds the length constraints of Figure 13 to the Z3 SMT solver to
prune symbolic regexes and to enumerate candidate values for symbolic
integers.  Those constraints live in a small fragment: conjunctions and
disjunctions of (in)equalities over non-negative bounded integers, with
bilinear products introduced by the ``Repeat`` family.  This package
implements a complete solver for exactly that fragment:

* :mod:`repro.solver.terms` — the term/formula AST (variables, constants,
  sums, products, comparisons, boolean connectives, existential quantifiers),
* :mod:`repro.solver.solver` — interval propagation + connected-component
  decomposition + backtracking search, returning models and supporting the
  assumption/blocking-clause workflow of the ``InferConstants`` loop
  (Figure 14).
"""

from repro.solver.terms import (
    Term,
    Const,
    Var,
    Add,
    Mul,
    Cmp,
    BoolConst,
    AndF,
    OrF,
    NotF,
    Exists,
    Formula,
    TRUE,
    FALSE,
    conjoin,
    disjoin,
    var_names,
)
from repro.solver.solver import Solver, Interval, UNKNOWN

__all__ = [
    "Term",
    "Const",
    "Var",
    "Add",
    "Mul",
    "Cmp",
    "BoolConst",
    "AndF",
    "OrF",
    "NotF",
    "Exists",
    "Formula",
    "TRUE",
    "FALSE",
    "conjoin",
    "disjoin",
    "var_names",
    "Solver",
    "Interval",
    "UNKNOWN",
]
