"""Bounded-integer constraint solver (the reproduction's Z3 substitute).

The paper feeds the length constraints of Figure 13 to the Z3 SMT solver to
prune symbolic regexes and to enumerate candidate values for symbolic
integers.  Those constraints live in a small fragment: conjunctions and
disjunctions of (in)equalities over non-negative bounded integers, with
bilinear products introduced by the ``Repeat`` family.  This package
implements a complete solver for exactly that fragment:

* :mod:`repro.solver.terms` — the term/formula AST (variables, constants,
  sums, products, comparisons, boolean connectives, existential quantifiers),
* :mod:`repro.solver.store` — a formula compiled once into an indexed
  constraint store: flattened conjuncts, per-conjunct variable sets, a
  variable→conjunct index, and connected components (with the shared
  symbolic integers removed) computed once per formula,
* :mod:`repro.solver.propagate` — interval/bounds propagation to fixpoint
  (HC4-style narrowing through sums and products, constructive disjunction),
* :mod:`repro.solver.solver` — the :class:`Solver` facade plus the
  incremental :class:`SolverInstance` (``solve(assumptions)`` and
  ``push``/``pop`` of clause frames), which is what the ``InferConstants``
  loop (Figure 14) uses so blocking clauses are assumption literals over the
  already-compiled store,
* :mod:`repro.solver.legacy` — the original recompute-everything
  backtracker, kept as the reference oracle for differential tests.
"""

from repro.solver.terms import (
    Term,
    Const,
    Var,
    Add,
    Mul,
    Cmp,
    BoolConst,
    AndF,
    OrF,
    NotF,
    Exists,
    Formula,
    TRUE,
    FALSE,
    conjoin,
    disjoin,
    var_names,
)
from repro.solver.solver import Solver, SolverInstance
from repro.solver.store import CompiledStore, Interval, SolverStats, UNKNOWN
from repro.solver.legacy import LegacySolver

__all__ = [
    "Term",
    "Const",
    "Var",
    "Add",
    "Mul",
    "Cmp",
    "BoolConst",
    "AndF",
    "OrF",
    "NotF",
    "Exists",
    "Formula",
    "TRUE",
    "FALSE",
    "conjoin",
    "disjoin",
    "var_names",
    "Solver",
    "SolverInstance",
    "CompiledStore",
    "SolverStats",
    "LegacySolver",
    "Interval",
    "UNKNOWN",
]
