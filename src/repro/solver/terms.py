"""Term and formula language of the bounded-integer constraint solver.

The language mirrors what the Figure 13 encoding produces:

* terms: integer constants, variables, sums, and products (products appear
  when ``Repeat``-family operators multiply a sub-regex length by a symbolic
  integer),
* atoms: comparisons between terms,
* formulas: boolean combinations and existential quantification (every
  variable is ultimately existential, so the solver simply flattens
  :class:`Exists` nodes, but keeping them in the AST preserves the paper's
  presentation and documents which variables are "temporary").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

class Term:
    """Base class of arithmetic terms."""

    __slots__ = ()

    def __add__(self, other: "Term | int") -> "Term":
        return Add((self, _coerce(other)))

    def __mul__(self, other: "Term | int") -> "Term":
        return Mul((self, _coerce(other)))


def _coerce(value: Union["Term", int]) -> "Term":
    if isinstance(value, Term):
        return value
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot use {value!r} as a term")


@dataclass(frozen=True)
class Const(Term):
    """An integer constant."""

    value: int


@dataclass(frozen=True)
class Var(Term):
    """A named integer variable."""

    name: str


@dataclass(frozen=True)
class Add(Term):
    """Sum of terms."""

    terms: tuple[Term, ...]

    def __init__(self, terms: Iterable[Term]):
        object.__setattr__(self, "terms", tuple(terms))


@dataclass(frozen=True)
class Mul(Term):
    """Product of terms."""

    terms: tuple[Term, ...]

    def __init__(self, terms: Iterable[Term]):
        object.__setattr__(self, "terms", tuple(terms))


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------

class Formula:
    """Base class of formulas."""

    __slots__ = ()


@dataclass(frozen=True)
class BoolConst(Formula):
    value: bool


TRUE = BoolConst(True)
FALSE = BoolConst(False)

_OPS = ("<=", "<", ">=", ">", "==", "!=")


@dataclass(frozen=True)
class Cmp(Formula):
    """Comparison atom ``lhs op rhs``."""

    op: str
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class AndF(Formula):
    parts: tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]):
        object.__setattr__(self, "parts", tuple(parts))


@dataclass(frozen=True)
class OrF(Formula):
    parts: tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]):
        object.__setattr__(self, "parts", tuple(parts))


@dataclass(frozen=True)
class NotF(Formula):
    arg: Formula


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over "temporary" length variables."""

    variables: tuple[str, ...]
    body: Formula

    def __init__(self, variables: Iterable[str], body: Formula):
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "body", body)


# ---------------------------------------------------------------------------
# Convenience constructors and queries
# ---------------------------------------------------------------------------

def conjoin(parts: Sequence[Formula]) -> Formula:
    """Conjunction with the obvious simplifications."""
    flattened: list[Formula] = []
    for part in parts:
        if part == TRUE:
            continue
        if part == FALSE:
            return FALSE
        if isinstance(part, AndF):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    return AndF(flattened)


def disjoin(parts: Sequence[Formula]) -> Formula:
    """Disjunction with the obvious simplifications."""
    flattened: list[Formula] = []
    for part in parts:
        if part == FALSE:
            continue
        if part == TRUE:
            return TRUE
        if isinstance(part, OrF):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    if not flattened:
        return FALSE
    if len(flattened) == 1:
        return flattened[0]
    return OrF(flattened)


def term_vars(term: Term) -> set[str]:
    """Variable names occurring in a term."""
    if isinstance(term, Var):
        return {term.name}
    if isinstance(term, Const):
        return set()
    if isinstance(term, (Add, Mul)):
        out: set[str] = set()
        for sub in term.terms:
            out |= term_vars(sub)
        return out
    raise TypeError(f"unknown term: {term!r}")


def var_names(formula: Formula) -> set[str]:
    """All variable names occurring (free or bound) in a formula."""
    if isinstance(formula, BoolConst):
        return set()
    if isinstance(formula, Cmp):
        return term_vars(formula.lhs) | term_vars(formula.rhs)
    if isinstance(formula, (AndF, OrF)):
        out: set[str] = set()
        for part in formula.parts:
            out |= var_names(part)
        return out
    if isinstance(formula, NotF):
        return var_names(formula.arg)
    if isinstance(formula, Exists):
        return set(formula.variables) | var_names(formula.body)
    raise TypeError(f"unknown formula: {formula!r}")


def substitute(formula: Formula, assignment: dict[str, int]) -> Formula:
    """Substitute integer constants for variables throughout a formula."""

    def sub_term(term: Term) -> Term:
        if isinstance(term, Var):
            if term.name in assignment:
                return Const(assignment[term.name])
            return term
        if isinstance(term, Const):
            return term
        if isinstance(term, Add):
            return Add(tuple(sub_term(t) for t in term.terms))
        if isinstance(term, Mul):
            return Mul(tuple(sub_term(t) for t in term.terms))
        raise TypeError(f"unknown term: {term!r}")

    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Cmp):
        return Cmp(formula.op, sub_term(formula.lhs), sub_term(formula.rhs))
    if isinstance(formula, AndF):
        return AndF(tuple(substitute(p, assignment) for p in formula.parts))
    if isinstance(formula, OrF):
        return OrF(tuple(substitute(p, assignment) for p in formula.parts))
    if isinstance(formula, NotF):
        return NotF(substitute(formula.arg, assignment))
    if isinstance(formula, Exists):
        inner = {k: v for k, v in assignment.items() if k not in formula.variables}
        return Exists(formula.variables, substitute(formula.body, inner))
    raise TypeError(f"unknown formula: {formula!r}")
