"""Compiled constraint store: a ``T.Formula`` indexed once for many solves.

The Figure-14 loop solves the *same* conjunction over and over, each time
with one more blocking clause.  The legacy solver re-derived everything —
variable sets, connected components, sub-term intervals — at every search
node of every solve.  :func:`compile_store` does that work exactly once:

* the formula is flattened (``Exists`` dropped, negation pushed to the atoms)
  into a list of **conjuncts** — linear atoms over integer monomials, or
  disjunctive groups thereof,
* every conjunct carries its precomputed variable tuple, and a
  variable→conjunct index supports propagation worklists,
* the conjunct graph's **connected components** are computed once, with the
  *shared* variables (the symbolic integers ``κ``, branched first) removed —
  after the shared variables are fixed, each component (in practice: one per
  positive example) is an independent subproblem.

The store itself is immutable per frame; all per-solve state (interval
domains, trails) lives in :mod:`repro.solver.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.solver import terms as T


#: Three-valued logic "don't know yet" marker.
UNKNOWN = object()


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (possibly empty if lo > hi)."""

    lo: int
    hi: int

    def is_empty(self) -> bool:
        return self.lo > self.hi

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi


def _interval_add(a: Interval, b: Interval) -> Interval:
    return Interval(a.lo + b.lo, a.hi + b.hi)


def _interval_mul(a: Interval, b: Interval) -> Interval:
    products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return Interval(min(products), max(products))


def _term_interval(
    term: T.Term, assignment: Dict[str, int], domains: Dict[str, Interval]
) -> Interval:
    if isinstance(term, T.Const):
        return Interval(term.value, term.value)
    if isinstance(term, T.Var):
        if term.name in assignment:
            value = assignment[term.name]
            return Interval(value, value)
        return domains.get(term.name, Interval(0, 10**9))
    if isinstance(term, T.Add):
        result = Interval(0, 0)
        for sub in term.terms:
            result = _interval_add(result, _term_interval(sub, assignment, domains))
        return result
    if isinstance(term, T.Mul):
        result = Interval(1, 1)
        for sub in term.terms:
            result = _interval_mul(result, _term_interval(sub, assignment, domains))
        return result
    raise TypeError(f"unknown term: {term!r}")


def _compare(op: str, lhs: Interval, rhs: Interval):
    """Three-valued comparison of two intervals."""
    if op == "<=":
        if lhs.hi <= rhs.lo:
            return True
        if lhs.lo > rhs.hi:
            return False
        return UNKNOWN
    if op == "<":
        if lhs.hi < rhs.lo:
            return True
        if lhs.lo >= rhs.hi:
            return False
        return UNKNOWN
    if op == ">=":
        return _compare("<=", rhs, lhs)
    if op == ">":
        return _compare("<", rhs, lhs)
    if op == "==":
        if lhs.lo == lhs.hi == rhs.lo == rhs.hi:
            return True
        if lhs.hi < rhs.lo or lhs.lo > rhs.hi:
            return False
        return UNKNOWN
    if op == "!=":
        result = _compare("==", lhs, rhs)
        if result is UNKNOWN:
            return UNKNOWN
        return not result
    raise ValueError(f"unknown comparison operator {op!r}")


def _evaluate(
    formula: T.Formula, assignment: Dict[str, int], domains: Dict[str, Interval]
):
    """Three-valued evaluation of a formula under a partial assignment."""
    if isinstance(formula, T.BoolConst):
        return formula.value
    if isinstance(formula, T.Cmp):
        return _compare(
            formula.op,
            _term_interval(formula.lhs, assignment, domains),
            _term_interval(formula.rhs, assignment, domains),
        )
    if isinstance(formula, T.AndF):
        result = True
        for part in formula.parts:
            value = _evaluate(part, assignment, domains)
            if value is False:
                return False
            if value is UNKNOWN:
                result = UNKNOWN
        return result
    if isinstance(formula, T.OrF):
        result = False
        for part in formula.parts:
            value = _evaluate(part, assignment, domains)
            if value is True:
                return True
            if value is UNKNOWN:
                result = UNKNOWN
        return result
    if isinstance(formula, T.NotF):
        value = _evaluate(formula.arg, assignment, domains)
        if value is UNKNOWN:
            return UNKNOWN
        return not value
    if isinstance(formula, T.Exists):
        return _evaluate(formula.body, assignment, domains)
    raise TypeError(f"unknown formula: {formula!r}")


NEG_INF = float("-inf")
POS_INF = float("inf")

#: Negation of each comparison operator (strictness flips around equality).
NEGATED_OP = {"<=": ">", "<": ">=", ">=": "<", ">": "<=", "==": "!=", "!=": "=="}


@dataclass
class SolverStats:
    """Counters accumulated across every solve of a :class:`~repro.solver.solver.Solver`."""

    #: Conjunct revisions that narrowed at least one variable domain.
    propagations: int = 0
    #: Domain wipe-outs detected during propagation (dead branches cut early).
    conflicts: int = 0
    #: Models returned (successful solves).
    models: int = 0


# ---------------------------------------------------------------------------
# Polynomial normalisation
# ---------------------------------------------------------------------------

Monomial = Tuple[int, Tuple[str, ...]]


def _term_poly(term: T.Term) -> Dict[Tuple[str, ...], int]:
    """Expand a term into ``{sorted-var-tuple: coefficient}`` monomials."""
    if isinstance(term, T.Const):
        return {(): term.value}
    if isinstance(term, T.Var):
        return {(term.name,): 1}
    if isinstance(term, T.Add):
        out: Dict[Tuple[str, ...], int] = {}
        for sub in term.terms:
            for names, coef in _term_poly(sub).items():
                out[names] = out.get(names, 0) + coef
        return out
    if isinstance(term, T.Mul):
        acc: Dict[Tuple[str, ...], int] = {(): 1}
        for sub in term.terms:
            sub_poly = _term_poly(sub)
            nxt: Dict[Tuple[str, ...], int] = {}
            for names_a, coef_a in acc.items():
                for names_b, coef_b in sub_poly.items():
                    key = tuple(sorted(names_a + names_b))
                    nxt[key] = nxt.get(key, 0) + coef_a * coef_b
            acc = nxt
        return acc
    raise TypeError(f"unknown term: {term!r}")


def _monomial_interval(
    coef: int, names: Tuple[str, ...], domains: Dict[str, Interval]
) -> Tuple[int, int]:
    """Interval of ``coef * Π names`` under the current domains."""
    lo, hi = 1, 1
    for name in names:
        iv = domains[name]
        products = (lo * iv.lo, lo * iv.hi, hi * iv.lo, hi * iv.hi)
        lo, hi = min(products), max(products)
    if coef >= 0:
        return coef * lo, coef * hi
    return coef * hi, coef * lo


@dataclass(frozen=True)
class LinearAtom:
    """``lo <= Σ monomials <= hi`` (or ``Σ monomials != neq``) over integers.

    A comparison atom ``lhs op rhs`` is normalised by moving everything to one
    side; strict inequalities become non-strict by integrality.  ``!=`` atoms
    (from negated blocking clauses) carry the forbidden value in ``neq``.
    """

    monomials: Tuple[Monomial, ...]
    lo: float  # int or -inf
    hi: float  # int or +inf
    neq: Optional[int] = None
    vars: Tuple[str, ...] = ()

    def interval(self, domains: Dict[str, Interval]) -> Tuple[int, int]:
        lo = hi = 0
        for coef, names in self.monomials:
            mlo, mhi = _monomial_interval(coef, names, domains)
            lo += mlo
            hi += mhi
        return lo, hi

    def evaluate(self, domains: Dict[str, Interval]):
        """Three-valued truth under interval domains."""
        plo, phi = self.interval(domains)
        if self.neq is not None:
            if plo == phi == self.neq:
                return False
            if self.neq < plo or self.neq > phi:
                return True
            return UNKNOWN
        if self.lo <= plo and phi <= self.hi:
            return True
        if phi < self.lo or plo > self.hi:
            return False
        return UNKNOWN


def atom_of_cmp(cmp: T.Cmp, negate: bool = False) -> LinearAtom:
    """Normalise ``lhs op rhs`` (or its negation) into a :class:`LinearAtom`."""
    op = NEGATED_OP[cmp.op] if negate else cmp.op
    poly = _term_poly(cmp.lhs)
    for names, coef in _term_poly(cmp.rhs).items():
        poly[names] = poly.get(names, 0) - coef
    const = poly.pop((), 0)
    monomials = tuple(
        (coef, names) for names, coef in sorted(poly.items()) if coef != 0
    )
    names = tuple(sorted({name for _, mono in monomials for name in mono}))
    if op == "<=":
        lo, hi = NEG_INF, -const
    elif op == "<":
        lo, hi = NEG_INF, -const - 1
    elif op == ">=":
        lo, hi = -const, POS_INF
    elif op == ">":
        lo, hi = -const + 1, POS_INF
    elif op == "==":
        lo, hi = -const, -const
    elif op == "!=":
        return LinearAtom(monomials, NEG_INF, POS_INF, neq=-const, vars=names)
    else:  # pragma: no cover - Cmp validates its operator
        raise ValueError(f"unknown comparison operator {op!r}")
    return LinearAtom(monomials, lo, hi, vars=names)


# ---------------------------------------------------------------------------
# Conjuncts
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OrPart:
    """One disjunct of an :class:`OrGroup`: a conjunction of linear atoms, or
    an arbitrary residual formula (evaluated three-valued, never narrowed)."""

    atoms: Optional[Tuple[LinearAtom, ...]]
    residual: Optional[T.Formula]
    vars: Tuple[str, ...]

    def evaluate(self, domains: Dict[str, Interval]):
        if self.atoms is not None:
            result = True
            for atom in self.atoms:
                value = atom.evaluate(domains)
                if value is False:
                    return False
                if value is UNKNOWN:
                    result = UNKNOWN
            return result
        return _evaluate(self.residual, {}, domains)


@dataclass(frozen=True)
class Conjunct:
    """One top-level conjunct: a single linear atom or a disjunctive group."""

    atom: Optional[LinearAtom]
    parts: Optional[Tuple[OrPart, ...]]
    vars: Tuple[str, ...]

    def evaluate(self, domains: Dict[str, Interval]):
        if self.atom is not None:
            return self.atom.evaluate(domains)
        result = False
        for part in self.parts:
            value = part.evaluate(domains)
            if value is True:
                return True
            if value is UNKNOWN:
                result = UNKNOWN
        return result


class UnsatStore(Exception):
    """Raised by compilation when the formula is trivially FALSE."""


def _strip_exists(formula: T.Formula) -> T.Formula:
    if isinstance(formula, T.Exists):
        return _strip_exists(formula.body)
    return formula


def _nnf_conjuncts(formula: T.Formula, negate: bool, out: List[T.Formula]) -> None:
    """Append the NNF conjuncts of ``formula`` (under optional negation)."""
    formula = _strip_exists(formula)
    if isinstance(formula, T.BoolConst):
        if formula.value == negate:  # FALSE conjunct
            raise UnsatStore()
        return
    if isinstance(formula, T.NotF):
        _nnf_conjuncts(formula.arg, not negate, out)
        return
    if isinstance(formula, T.Cmp):
        out.append(_negate_cmp(formula) if negate else formula)
        return
    if isinstance(formula, T.AndF) and not negate:
        for part in formula.parts:
            _nnf_conjuncts(part, False, out)
        return
    if isinstance(formula, T.OrF) and negate:
        for part in formula.parts:
            _nnf_conjuncts(part, True, out)
        return
    # A disjunction (or negated conjunction): one conjunct, NNF'd inside.
    parts = formula.parts if isinstance(formula, (T.AndF, T.OrF)) else (formula,)
    nnf_parts = []
    for part in parts:
        nnf_parts.append(_nnf(part, negate))
    out.append(T.disjoin(nnf_parts))


def _negate_cmp(cmp: T.Cmp) -> T.Cmp:
    return T.Cmp(NEGATED_OP[cmp.op], cmp.lhs, cmp.rhs)


def _nnf(formula: T.Formula, negate: bool) -> T.Formula:
    formula = _strip_exists(formula)
    if isinstance(formula, T.BoolConst):
        return T.BoolConst(formula.value != negate)
    if isinstance(formula, T.NotF):
        return _nnf(formula.arg, not negate)
    if isinstance(formula, T.Cmp):
        return _negate_cmp(formula) if negate else formula
    if isinstance(formula, T.AndF):
        parts = [_nnf(part, negate) for part in formula.parts]
        return T.disjoin(parts) if negate else T.conjoin(parts)
    if isinstance(formula, T.OrF):
        parts = [_nnf(part, negate) for part in formula.parts]
        return T.conjoin(parts) if negate else T.disjoin(parts)
    raise TypeError(f"unknown formula: {formula!r}")


def _compile_part(formula: T.Formula) -> OrPart:
    """Compile one disjunct; falls back to a residual formula when not a
    conjunction of comparison atoms."""
    atoms: List[LinearAtom] = []
    stack = [formula]
    linear = True
    while stack:
        node = stack.pop()
        node = _strip_exists(node)
        if isinstance(node, T.Cmp):
            atoms.append(atom_of_cmp(node))
        elif isinstance(node, T.AndF):
            stack.extend(node.parts)
        elif isinstance(node, T.BoolConst) and node.value:
            continue
        else:
            linear = False
            break
    names = tuple(sorted(T.var_names(formula)))
    if linear:
        return OrPart(atoms=tuple(atoms), residual=None, vars=names)
    return OrPart(atoms=None, residual=formula, vars=names)


def compile_conjuncts(formula: T.Formula) -> Optional[List[Conjunct]]:
    """Compile a whole formula into conjuncts; None when trivially FALSE."""
    try:
        parts: List[T.Formula] = []
        _nnf_conjuncts(formula, False, parts)
        compiled: List[Conjunct] = []
        for part in parts:
            conjunct = compile_conjunct(part)
            if conjunct is not None:
                compiled.append(conjunct)
        return compiled
    except UnsatStore:
        return None


def compile_conjunct(formula: T.Formula) -> Optional[Conjunct]:
    """Compile one NNF conjunct; None for a trivially-true conjunct."""
    formula = _strip_exists(formula)
    if isinstance(formula, T.BoolConst):
        if not formula.value:
            raise UnsatStore()
        return None
    if isinstance(formula, T.Cmp):
        atom = atom_of_cmp(formula)
        return Conjunct(atom=atom, parts=None, vars=atom.vars)
    if isinstance(formula, T.OrF):
        parts = tuple(_compile_part(part) for part in formula.parts)
        names = tuple(sorted({name for part in parts for name in part.vars}))
        return Conjunct(atom=None, parts=parts, vars=names)
    # NNF leaves only Cmp / Or / BoolConst at conjunct level, but be defensive:
    part = _compile_part(formula)
    return Conjunct(atom=None, parts=(part,), vars=part.vars)


# ---------------------------------------------------------------------------
# Indexes shared by the store and the incremental frames
# ---------------------------------------------------------------------------

def build_var_index(conjuncts: Sequence[Conjunct]) -> Dict[str, Tuple[int, ...]]:
    """Variable → indices of the conjuncts that mention it."""
    index: Dict[str, List[int]] = {}
    for ci, conjunct in enumerate(conjuncts):
        for name in conjunct.vars:
            index.setdefault(name, []).append(ci)
    return {name: tuple(cis) for name, cis in index.items()}


def compute_components(
    conjuncts: Sequence[Conjunct], shared: set
) -> List[Tuple[Tuple[int, ...], Tuple[str, ...]]]:
    """Union-find over the conjunct graph, ignoring shared variables.

    Returns ``[(conjunct indices, variables)]``; conjuncts mentioning only
    shared variables belong to no component (they are checked while the
    shared variables are branched).  Computed once per compile — the legacy
    solver re-ran this at every search node.
    """
    count = len(conjuncts)
    parent = list(range(count))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner: Dict[str, int] = {}
    conjunct_vars: List[List[str]] = []
    for ci, conjunct in enumerate(conjuncts):
        local = [name for name in conjunct.vars if name not in shared]
        conjunct_vars.append(local)
        for name in local:
            if name in owner:
                parent[find(ci)] = find(owner[name])
            else:
                owner[name] = ci

    groups: Dict[int, List[int]] = {}
    for ci in range(count):
        if conjunct_vars[ci]:
            groups.setdefault(find(ci), []).append(ci)
    components = []
    for indices in groups.values():
        names = sorted({name for ci in indices for name in conjunct_vars[ci]})
        components.append((tuple(indices), tuple(names)))
    components.sort(key=lambda entry: entry[0][0])
    return components


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class CompiledStore:
    """Indexed conjuncts + base domains + once-per-formula decomposition."""

    def __init__(
        self,
        formula: T.Formula,
        domains: Dict[str, Tuple[int, int]],
        shared: Iterable[str] = (),
    ):
        self.shared: tuple[str, ...] = tuple(sorted(set(shared)))
        formula_vars: set = set()
        try:
            parts: List[T.Formula] = []
            _nnf_conjuncts(formula, False, parts)
            self.unsat = False
            self.conjuncts: List[Conjunct] = []
            for part in parts:
                # Collect variables from the *formulas*, not the compiled
                # atoms: normalisation drops cancelled monomials (x == x), but
                # the model contract is a full assignment over every variable
                # the formula mentions, like the legacy solver's.
                formula_vars |= T.var_names(part)
                conjunct = compile_conjunct(part)
                if conjunct is not None:
                    self.conjuncts.append(conjunct)
        except UnsatStore:
            self.unsat = True
            self.conjuncts = []
            formula_vars = set()

        names = sorted(formula_vars)
        self.variables: tuple[str, ...] = tuple(names)
        default_hi = max((hi for _, hi in domains.values()), default=30)
        self.default_domain = (0, default_hi)
        self.given_domains: Dict[str, Tuple[int, int]] = dict(domains)
        self.base_domains: Dict[str, Interval] = {
            name: Interval(*domains.get(name, self.default_domain)) for name in names
        }
        self.var_to_conjuncts = build_var_index(self.conjuncts)
        self.components = compute_components(self.conjuncts, set(self.shared))
