"""Interval/bounds propagation over a compiled constraint store.

This is the solver's inference engine, in the spirit of finite-domain
constraint propagation: instead of enumerating ``range(lo, hi + 1)`` blindly,
every branching decision first narrows the interval domains of all affected
variables to a fixpoint.  Linear atoms propagate HC4-style — forward interval
evaluation of the monomials, then backward narrowing of each variable through
sums and (strictly positive) products; disjunctive conjuncts propagate by
constructive disjunction (the hull of the per-disjunct narrowings, dead
disjuncts dropped).

All mutation happens through a :class:`Trail`, so the search in
:mod:`repro.solver.solver` can undo a branch in O(narrowings).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.solver.store import (
    NEG_INF,
    POS_INF,
    Conjunct,
    Interval,
    LinearAtom,
    OrPart,
    SolverStats,
    _monomial_interval,
)


class Conflict(Exception):
    """A variable domain was wiped out: the current branch is dead."""


class Trail:
    """Undo log of domain narrowings (one entry per change, newest last)."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple[str, Interval]] = []

    def mark(self) -> int:
        return len(self.entries)

    def undo_to(self, mark: int, domains: Dict[str, Interval]) -> None:
        while len(self.entries) > mark:
            name, old = self.entries.pop()
            domains[name] = old


def narrow_to(
    name: str,
    lo: float,
    hi: float,
    domains: Dict[str, Interval],
    trail: Trail,
    changed: Set[str],
) -> None:
    """Intersect ``name``'s domain with ``[lo, hi]``; record and report changes."""
    old = domains[name]
    new_lo = old.lo if lo == NEG_INF else max(old.lo, int(lo))
    new_hi = old.hi if hi == POS_INF else min(old.hi, int(hi))
    if new_lo == old.lo and new_hi == old.hi:
        return
    if new_lo > new_hi:
        raise Conflict()
    trail.entries.append((name, old))
    domains[name] = Interval(new_lo, new_hi)
    changed.add(name)


def _narrow_atom(
    atom: LinearAtom,
    domains: Dict[str, Interval],
    trail: Trail,
    changed: Set[str],
) -> None:
    """One HC4 revision of a linear atom.  Raises :class:`Conflict` when the
    atom cannot be satisfied under the current domains."""
    if atom.neq is not None:
        _shave_neq(atom, domains, trail, changed)
        return

    contribs = [
        _monomial_interval(coef, names, domains) for coef, names in atom.monomials
    ]
    total_lo = sum(c[0] for c in contribs)
    total_hi = sum(c[1] for c in contribs)
    if total_hi < atom.lo or total_lo > atom.hi:
        raise Conflict()

    for j, (coef, names) in enumerate(atom.monomials):
        rest_lo = total_lo - contribs[j][0]
        rest_hi = total_hi - contribs[j][1]
        # Required range for this monomial's contribution coef * Π names.
        t_lo = NEG_INF if atom.lo == NEG_INF else atom.lo - rest_hi
        t_hi = POS_INF if atom.hi == POS_INF else atom.hi - rest_lo
        # Required range for the bare product Π names.
        if coef > 0:
            p_lo = NEG_INF if t_lo == NEG_INF else math.ceil(t_lo / coef)
            p_hi = POS_INF if t_hi == POS_INF else math.floor(t_hi / coef)
        else:
            p_lo = NEG_INF if t_hi == POS_INF else math.ceil(t_hi / coef)
            p_hi = POS_INF if t_lo == NEG_INF else math.floor(t_lo / coef)
        for pos, name in enumerate(names):
            if names.count(name) > 1:
                continue  # squared variables: skip (sound, just no narrowing)
            others_lo, others_hi = 1, 1
            for other_pos, other in enumerate(names):
                if other_pos == pos:
                    continue
                iv = domains[other]
                products = (
                    others_lo * iv.lo,
                    others_lo * iv.hi,
                    others_hi * iv.lo,
                    others_hi * iv.hi,
                )
                others_lo, others_hi = min(products), max(products)
            if others_lo < 1 or domains[name].lo < 0:
                continue  # only the strictly-positive, non-negative case narrows
            new_hi = POS_INF if p_hi == POS_INF else math.floor(p_hi / others_lo)
            new_lo = NEG_INF
            if p_lo != NEG_INF and p_lo > 0:
                new_lo = math.ceil(p_lo / others_hi)
            narrow_to(name, new_lo, new_hi, domains, trail, changed)


def _shave_neq(
    atom: LinearAtom,
    domains: Dict[str, Interval],
    trail: Trail,
    changed: Set[str],
) -> None:
    """Propagation for ``Σ != v``: conflict when forced, endpoint shaving for
    the single-variable case (the shape every blocking clause takes)."""
    plo, phi = atom.interval(domains)
    if plo == phi == atom.neq:
        raise Conflict()
    if len(atom.monomials) == 1:
        coef, names = atom.monomials[0]
        if len(names) == 1 and atom.neq % coef == 0:
            forbidden = atom.neq // coef
            name = names[0]
            iv = domains[name]
            if iv.lo == iv.hi == forbidden:
                raise Conflict()
            if iv.lo == forbidden:
                narrow_to(name, iv.lo + 1, POS_INF, domains, trail, changed)
            elif iv.hi == forbidden:
                narrow_to(name, NEG_INF, iv.hi - 1, domains, trail, changed)


def _narrow_or_group(
    conjunct: Conjunct,
    domains: Dict[str, Interval],
    trail: Trail,
    changed: Set[str],
) -> None:
    """Constructive disjunction: drop dead disjuncts, take the hull of the
    alive ones' narrowings."""
    alive: List[OrPart] = []
    for part in conjunct.parts:
        if part.evaluate(domains) is not False:
            alive.append(part)
    if not alive:
        raise Conflict()
    if len(alive) == 1 and alive[0].atoms is not None:
        for atom in alive[0].atoms:
            _narrow_atom(atom, domains, trail, changed)
        return
    # Hull: narrow a local overlay per alive disjunct; a variable's new domain
    # is the union (hull) of its per-disjunct domains.
    overlays: List[Optional[Dict[str, Interval]]] = []
    for part in alive:
        if part.atoms is None:
            overlays.append(None)  # cannot narrow through a residual formula
            continue
        overlays.append(_local_overlay(part.atoms, domains))
    survivors = [
        (part, overlay)
        for part, overlay in zip(alive, overlays)
        if overlay is not None or part.atoms is None
    ]
    if not survivors:
        raise Conflict()
    for name in conjunct.vars:
        base = domains[name]
        hull_lo, hull_hi = None, None
        opaque = False
        for part, overlay in survivors:
            if part.atoms is None:
                opaque = True
                break
            iv = overlay.get(name, base) if overlay is not None else base
            hull_lo = iv.lo if hull_lo is None else min(hull_lo, iv.lo)
            hull_hi = iv.hi if hull_hi is None else max(hull_hi, iv.hi)
        if opaque or hull_lo is None:
            continue
        narrow_to(name, hull_lo, hull_hi, domains, trail, changed)


def _local_overlay(
    atoms: Tuple[LinearAtom, ...], domains: Dict[str, Interval]
) -> Optional[Dict[str, Interval]]:
    """Narrow a copy-on-write overlay under one disjunct; None when the
    disjunct is infeasible (and can be dropped from the hull)."""
    local: Dict[str, Interval] = {}
    view = _OverlayView(local, domains)
    local_trail = Trail()
    local_changed: Set[str] = set()
    try:
        for _ in range(2):  # two rounds are enough for the small disjuncts
            for atom in atoms:
                _narrow_atom(atom, view, local_trail, local_changed)
    except Conflict:
        return None
    return local


class _OverlayView(dict):
    """Dict view writing to an overlay while reading through to a base."""

    def __init__(self, overlay: Dict[str, Interval], base: Dict[str, Interval]):
        super().__init__()
        self._overlay = overlay
        self._base = base

    def __getitem__(self, name: str) -> Interval:
        try:
            return self._overlay[name]
        except KeyError:
            return self._base[name]

    def __setitem__(self, name: str, value: Interval) -> None:
        self._overlay[name] = value


def revise(
    conjunct: Conjunct,
    domains: Dict[str, Interval],
    trail: Trail,
    changed: Set[str],
) -> None:
    """Narrow every variable of one conjunct (raises :class:`Conflict`)."""
    if conjunct.atom is not None:
        _narrow_atom(conjunct.atom, domains, trail, changed)
    else:
        _narrow_or_group(conjunct, domains, trail, changed)


def propagate(
    conjunct_ids: Iterable[int],
    conjuncts: List[Conjunct],
    var_to_conjuncts: Dict[str, Tuple[int, ...]],
    domains: Dict[str, Interval],
    trail: Trail,
    stats: SolverStats,
) -> bool:
    """AC-3-style fixpoint over ``conjunct_ids`` and everything they wake.

    Returns False (after counting a conflict) when a domain is wiped out;
    the caller is responsible for undoing the trail.
    """
    queue = deque(conjunct_ids)
    in_queue = set(queue)
    try:
        while queue:
            ci = queue.popleft()
            in_queue.discard(ci)
            changed: Set[str] = set()
            revise(conjuncts[ci], domains, trail, changed)
            if changed:
                stats.propagations += 1
                for name in changed:
                    for cj in var_to_conjuncts.get(name, ()):
                        # The revising conjunct may wake itself: HC4 narrows
                        # each monomial against totals computed *before* the
                        # narrowing, so its own revision can be stale too.
                        if cj not in in_queue:
                            queue.append(cj)
                            in_queue.add(cj)
    except Conflict:
        stats.conflicts += 1
        return False
    return True
