"""Backtracking solver with interval propagation for bounded integer constraints.

The solver is complete over finite variable domains.  It is deliberately
simple — the constraints coming out of the Figure 13 encoding are small — but
it includes the two optimisations that matter for the synthesis workload:

* **three-valued interval evaluation** of the formula under a partial
  assignment, which prunes hopeless branches early, and
* **connected-component decomposition**: once the shared symbolic integers are
  assigned, the remaining temporary length variables of different examples are
  independent, and each component is solved separately instead of multiplying
  the search spaces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.solver import terms as T


#: Three-valued logic "don't know yet" marker.
UNKNOWN = object()


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (possibly empty if lo > hi)."""

    lo: int
    hi: int

    def is_empty(self) -> bool:
        return self.lo > self.hi

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi


def _interval_add(a: Interval, b: Interval) -> Interval:
    return Interval(a.lo + b.lo, a.hi + b.hi)


def _interval_mul(a: Interval, b: Interval) -> Interval:
    products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return Interval(min(products), max(products))


class Solver:
    """Finite-domain solver for the formula language of :mod:`repro.solver.terms`."""

    def __init__(self, max_steps: int = 2_000_000):
        self.max_steps = max_steps
        self._steps = 0
        self._deadline: Optional[float] = None

    # -- public API ---------------------------------------------------------

    def solve(
        self,
        formula: T.Formula,
        domains: Dict[str, Tuple[int, int]],
        prefer: Optional[Iterable[str]] = None,
        deadline: Optional[float] = None,
    ) -> Optional[Dict[str, int]]:
        """Return a model (full assignment) of ``formula`` or None if UNSAT.

        ``domains`` maps every variable to an inclusive ``(lo, hi)`` range;
        variables appearing in the formula but not in ``domains`` get the
        widest range seen (a defensive default).  ``prefer`` lists variables
        to branch on first (the symbolic integers of the regex), which both
        finds "small" models first and enables component decomposition for
        the rest.  ``deadline`` (a ``time.monotonic`` timestamp) aborts the
        search with :class:`RuntimeError`, like the step budget — it is what
        keeps a single solver call from blowing through a scheduler's time
        slice.
        """
        self._steps = 0
        self._deadline = deadline
        flat = _flatten(formula)
        names = sorted(T.var_names(flat))
        if not names:
            value = _evaluate(flat, {}, {})
            return {} if value is True else None
        default_domain = (0, max((hi for _, hi in domains.values()), default=30))
        full_domains = {
            name: Interval(*domains.get(name, default_domain)) for name in names
        }
        order = list(dict.fromkeys([*(prefer or []), *names]))
        order = [name for name in order if name in full_domains]
        assignment: Dict[str, int] = {}
        result = self._search(flat, order, full_domains, assignment)
        return result

    def satisfiable(
        self, formula: T.Formula, domains: Dict[str, Tuple[int, int]]
    ) -> bool:
        """Convenience wrapper: is the formula satisfiable at all?"""
        return self.solve(formula, domains) is not None

    # -- search -------------------------------------------------------------

    def _search(
        self,
        formula: T.Formula,
        order: list[str],
        domains: Dict[str, Interval],
        assignment: Dict[str, int],
    ) -> Optional[Dict[str, int]]:
        status = _evaluate(formula, assignment, domains)
        if status is False:
            return None
        unassigned = [name for name in order if name not in assignment]
        if not unassigned:
            return dict(assignment) if status is True else None
        if status is True:
            # Remaining variables are unconstrained; fix them to their lower bound.
            model = dict(assignment)
            for name in unassigned:
                model[name] = domains[name].lo
            return model

        # Component decomposition: solve independent variable groups separately.
        components = _components(formula, set(unassigned), assignment)
        if len(components) > 1:
            model = dict(assignment)
            for component_vars, component_formula in components:
                sub_order = [n for n in order if n in component_vars]
                sub = self._search(component_formula, sub_order, domains, dict(assignment))
                if sub is None:
                    return None
                for name in component_vars:
                    model[name] = sub[name]
            # Variables in no component are unconstrained.
            for name in unassigned:
                model.setdefault(name, domains[name].lo)
            return model

        # Branch on a variable that actually constrains the formula, preferring
        # the caller-supplied order (symbolic integers first).
        constrained = components[0][0] if components else set(unassigned)
        name = next((n for n in unassigned if n in constrained), unassigned[0])
        domain = domains[name]
        for value in range(domain.lo, domain.hi + 1):
            self._steps += 1
            if self._steps > self.max_steps:
                raise RuntimeError("solver step budget exceeded")
            if (
                self._deadline is not None
                and self._steps % 2048 == 0
                and time.monotonic() > self._deadline
            ):
                raise RuntimeError("solver deadline exceeded")
            assignment[name] = value
            result = self._search(formula, order, domains, assignment)
            if result is not None:
                return result
            del assignment[name]
        return None


# ---------------------------------------------------------------------------
# Formula utilities
# ---------------------------------------------------------------------------

def _flatten(formula: T.Formula) -> T.Formula:
    """Drop Exists binders (every variable is existential for satisfiability)."""
    if isinstance(formula, T.Exists):
        return _flatten(formula.body)
    if isinstance(formula, T.AndF):
        return T.conjoin([_flatten(p) for p in formula.parts])
    if isinstance(formula, T.OrF):
        return T.disjoin([_flatten(p) for p in formula.parts])
    if isinstance(formula, T.NotF):
        return T.NotF(_flatten(formula.arg))
    return formula


def _term_interval(
    term: T.Term, assignment: Dict[str, int], domains: Dict[str, Interval]
) -> Interval:
    if isinstance(term, T.Const):
        return Interval(term.value, term.value)
    if isinstance(term, T.Var):
        if term.name in assignment:
            value = assignment[term.name]
            return Interval(value, value)
        return domains.get(term.name, Interval(0, 10**9))
    if isinstance(term, T.Add):
        result = Interval(0, 0)
        for sub in term.terms:
            result = _interval_add(result, _term_interval(sub, assignment, domains))
        return result
    if isinstance(term, T.Mul):
        result = Interval(1, 1)
        for sub in term.terms:
            result = _interval_mul(result, _term_interval(sub, assignment, domains))
        return result
    raise TypeError(f"unknown term: {term!r}")


def _compare(op: str, lhs: Interval, rhs: Interval):
    """Three-valued comparison of two intervals."""
    if op == "<=":
        if lhs.hi <= rhs.lo:
            return True
        if lhs.lo > rhs.hi:
            return False
        return UNKNOWN
    if op == "<":
        if lhs.hi < rhs.lo:
            return True
        if lhs.lo >= rhs.hi:
            return False
        return UNKNOWN
    if op == ">=":
        return _compare("<=", rhs, lhs)
    if op == ">":
        return _compare("<", rhs, lhs)
    if op == "==":
        if lhs.lo == lhs.hi == rhs.lo == rhs.hi:
            return True
        if lhs.hi < rhs.lo or lhs.lo > rhs.hi:
            return False
        return UNKNOWN
    if op == "!=":
        result = _compare("==", lhs, rhs)
        if result is UNKNOWN:
            return UNKNOWN
        return not result
    raise ValueError(f"unknown comparison operator {op!r}")


def _evaluate(
    formula: T.Formula, assignment: Dict[str, int], domains: Dict[str, Interval]
):
    """Three-valued evaluation of a formula under a partial assignment."""
    if isinstance(formula, T.BoolConst):
        return formula.value
    if isinstance(formula, T.Cmp):
        return _compare(
            formula.op,
            _term_interval(formula.lhs, assignment, domains),
            _term_interval(formula.rhs, assignment, domains),
        )
    if isinstance(formula, T.AndF):
        result = True
        for part in formula.parts:
            value = _evaluate(part, assignment, domains)
            if value is False:
                return False
            if value is UNKNOWN:
                result = UNKNOWN
        return result
    if isinstance(formula, T.OrF):
        result = False
        for part in formula.parts:
            value = _evaluate(part, assignment, domains)
            if value is True:
                return True
            if value is UNKNOWN:
                result = UNKNOWN
        return result
    if isinstance(formula, T.NotF):
        value = _evaluate(formula.arg, assignment, domains)
        if value is UNKNOWN:
            return UNKNOWN
        return not value
    if isinstance(formula, T.Exists):
        return _evaluate(formula.body, assignment, domains)
    raise TypeError(f"unknown formula: {formula!r}")


def _components(
    formula: T.Formula, unassigned: set[str], assignment: Dict[str, int]
) -> list[tuple[set[str], T.Formula]]:
    """Split a top-level conjunction into variable-connected components.

    Only conjunctions can be decomposed; any other shape yields a single
    component.  Conjuncts whose unassigned variables overlap are merged via
    union-find.
    """
    if not isinstance(formula, T.AndF):
        return [(set(T.var_names(formula)) & unassigned, formula)]

    parts = list(formula.parts)
    part_vars = [set(T.var_names(part)) & unassigned for part in parts]

    parent = list(range(len(parts)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    owner: dict[str, int] = {}
    for index, variables in enumerate(part_vars):
        for name in variables:
            if name in owner:
                union(index, owner[name])
            else:
                owner[name] = index

    groups: dict[int, list[int]] = {}
    for index in range(len(parts)):
        groups.setdefault(find(index), []).append(index)

    components: list[tuple[set[str], T.Formula]] = []
    for indices in groups.values():
        variables = set().union(*(part_vars[i] for i in indices)) if indices else set()
        if not variables:
            continue  # fully assigned conjuncts were already checked by _evaluate
        component_formula = T.conjoin([parts[i] for i in indices])
        components.append((variables, component_formula))
    if not components:
        return [(set(), formula)]
    return components
