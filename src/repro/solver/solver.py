"""Propagation-based incremental solver for bounded integer constraints.

The public surface is unchanged from the legacy backtracker —
``Solver.solve(formula, domains, prefer=…, deadline=…)`` returns a model or
None — but the implementation is rebuilt around a compiled constraint store
(:mod:`repro.solver.store`) with interval/bounds propagation
(:mod:`repro.solver.propagate`):

* the formula is compiled **once** into indexed conjuncts with precomputed
  variable sets and connected components (the legacy solver re-ran
  ``var_names`` and union-find at every search node),
* every branching decision first narrows all affected domains to a fixpoint,
  so ``range(lo, hi + 1)`` enumeration only happens inside already-tight
  intervals, with ascending value order (small models first),
* :class:`SolverInstance` exposes an **incremental API** —
  ``solve(assumptions)`` plus ``push``/``pop`` of clauses — so the Figure-14
  enumeration re-solves the same compiled store under cheap assumption
  literals instead of rebuilding a quadratically growing conjunction.

The legacy implementation survives unchanged in :mod:`repro.solver.legacy`
as the reference oracle for differential tests.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.solver import terms as T
from repro.solver.propagate import Conflict, Trail, narrow_to, propagate
from repro.solver.store import (
    CompiledStore,
    _evaluate,  # noqa: F401  (re-exported: oracles/tests import it from here)
    Conjunct,
    Interval,
    NEGATED_OP,
    SolverStats,
    UNKNOWN,
    build_var_index,
    compile_conjuncts,
    compute_components,
)


#: An assumption literal: ``(variable, op, value)`` with op in {==,!=,<=,>=,<,>}.
Literal = Tuple[str, str, int]

Assumption = Union[Literal, T.Formula]

_LITERAL_OPS = frozenset(("==", "!=", "<=", ">=", "<", ">"))


def as_literal(assumption: Assumption) -> Literal:
    """Coerce a ``Cmp``/``NotF(Cmp)`` over (Var, Const) into a literal triple."""
    if isinstance(assumption, tuple):
        name, op, value = assumption
        if op not in _LITERAL_OPS:
            raise ValueError(f"unknown assumption operator {op!r}")
        return name, op, value
    if isinstance(assumption, T.NotF) and isinstance(assumption.arg, T.Cmp):
        name, op, value = as_literal(assumption.arg)
        return name, NEGATED_OP[op], value
    if isinstance(assumption, T.Cmp):
        lhs, rhs = assumption.lhs, assumption.rhs
        if isinstance(lhs, T.Var) and isinstance(rhs, T.Const):
            return lhs.name, assumption.op, rhs.value
        if isinstance(lhs, T.Const) and isinstance(rhs, T.Var):
            flipped = {"<=": ">=", ">=": "<=", "<": ">", ">": "<", "==": "==", "!=": "!="}
            return rhs.name, flipped[assumption.op], lhs.value
    raise ValueError(f"cannot use {assumption!r} as an assumption literal")


class SolverInstance:
    """One compiled formula, solvable many times under varying assumptions.

    Created through :meth:`Solver.compile`.  The store (conjunct index,
    components, base domains) is built once; each :meth:`solve` call only
    copies the domain table, applies the assumption literals, and searches
    with propagation.  :meth:`push`/:meth:`pop` add/remove whole clause
    frames for constraints that do not fit a literal.
    """

    def __init__(self, solver: "Solver", store: CompiledStore):
        self._solver = solver
        self.stats = solver.stats
        self._store = store
        self._frames: List[List[Conjunct]] = []
        self._combined: Optional[tuple] = None
        #: Assumption-free propagation fixpoint of the current view, computed
        #: once and reused by every solve: (domains-at-fixpoint, satisfiable).
        self._fixpoint: Optional[tuple] = None
        # Per-solve state (reset by solve()).
        self._steps = 0
        self._deadline: Optional[float] = None

    # -- incremental clause frames ------------------------------------------

    def push(self, formula: T.Formula) -> None:
        """Add a clause frame; it participates in every solve until popped."""
        self._frames.append(compile_conjuncts(formula))
        self._combined = None
        self._fixpoint = None

    def pop(self) -> None:
        """Remove the most recent clause frame."""
        self._frames.pop()
        self._combined = None
        self._fixpoint = None

    # -- compiled view -------------------------------------------------------

    def _view(self) -> tuple:
        """(conjuncts, var_index, components, base_domains, variables, unsat)."""
        if self._combined is not None:
            return self._combined
        store = self._store
        if not self._frames:
            view = (
                store.conjuncts,
                store.var_to_conjuncts,
                store.components,
                store.base_domains,
                store.variables,
                store.unsat,
            )
        else:
            conjuncts = list(store.conjuncts)
            unsat = store.unsat
            for frame in self._frames:
                if frame is None:
                    unsat = True
                else:
                    conjuncts.extend(frame)
            var_index = build_var_index(conjuncts)
            components = compute_components(conjuncts, set(store.shared))
            base_domains = dict(store.base_domains)
            for name in var_index:
                if name not in base_domains:
                    base_domains[name] = Interval(
                        *store.given_domains.get(name, store.default_domain)
                    )
            view = (
                conjuncts,
                var_index,
                components,
                base_domains,
                tuple(sorted(var_index)),
                unsat,
            )
        self._combined = view
        return view

    # -- solving -------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[Assumption] = (),
        prefer: Optional[Iterable[str]] = None,
        deadline: Optional[float] = None,
    ) -> Optional[Dict[str, int]]:
        """Return a model of store ∧ assumptions, or None if UNSAT.

        The model covers the formula's variables plus any variables mentioned
        only by assumptions; assumption-only variables take the smallest
        value compatible with the literals (their bounds come from the
        ``domains`` mapping given at compile time, when present).
        """
        conjuncts, var_index, components, base_domains, variables, unsat = self._view()
        if unsat:
            return None
        self._steps = 0
        self._deadline = deadline
        if deadline is not None and time.monotonic() > deadline:
            raise RuntimeError("solver deadline exceeded")

        # Assumption-free fixpoint, computed once per compiled view: every
        # incremental solve starts from already-narrowed domains and only
        # re-propagates what its assumption literals actually touch.
        if self._fixpoint is None:
            fix_domains: Dict[str, Interval] = dict(base_domains)
            ok = propagate(
                range(len(conjuncts)), conjuncts, var_index, fix_domains, Trail(), self.stats
            )
            self._fixpoint = (fix_domains, ok)
        fix_domains, ok = self._fixpoint
        if not ok:
            return None

        domains: Dict[str, Interval] = dict(fix_domains)
        excluded: Dict[str, Set[int]] = {}
        extras: List[str] = []
        trail = Trail()
        changed: Set[str] = set()
        store = self._store
        try:
            for assumption in assumptions:
                name, op, value = as_literal(assumption)
                if name not in domains:
                    domains[name] = Interval(
                        *store.given_domains.get(name, store.default_domain)
                    )
                    extras.append(name)
                if op == "==":
                    narrow_to(name, value, value, domains, trail, changed)
                elif op == "<=":
                    narrow_to(name, float("-inf"), value, domains, trail, changed)
                elif op == "<":
                    narrow_to(name, float("-inf"), value - 1, domains, trail, changed)
                elif op == ">=":
                    narrow_to(name, value, float("inf"), domains, trail, changed)
                elif op == ">":
                    narrow_to(name, value + 1, float("inf"), domains, trail, changed)
                else:  # "!="
                    excluded.setdefault(name, set()).add(value)
            for name, values in excluded.items():
                iv = domains[name]
                lo, hi = iv.lo, iv.hi
                while lo in values and lo <= hi:
                    lo += 1
                while hi in values and lo <= hi:
                    hi -= 1
                narrow_to(name, lo, hi, domains, trail, changed)
        except Conflict:
            self.stats.conflicts += 1
            return None

        seed = sorted({ci for name in changed for ci in var_index.get(name, ())})
        if seed and not propagate(
            seed, conjuncts, var_index, domains, trail, self.stats
        ):
            return None
        if not self._excluded_ok(domains, excluded):
            self.stats.conflicts += 1
            return None

        order = list(dict.fromkeys([*(prefer or []), *self._store.shared]))
        order = [name for name in order if name in domains]
        model = self._branch_shared(
            0, order, conjuncts, var_index, components, domains, excluded, trail
        )
        if model is None:
            return None
        for name in variables:
            if name not in model:
                value = self._pick_value(name, domains, excluded)
                if value is None:
                    return None
                model[name] = value
        for name in extras:
            if name not in model:
                value = self._pick_value(name, domains, excluded)
                if value is None:
                    return None
                model[name] = value
        self.stats.models += 1
        return model

    # -- search --------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self._solver.max_steps:
            raise RuntimeError("solver step budget exceeded")
        if (
            self._deadline is not None
            and self._steps % 256 == 0
            and time.monotonic() > self._deadline
        ):
            raise RuntimeError("solver deadline exceeded")

    def _pick_value(
        self, name: str, domains: Dict[str, Interval], excluded: Dict[str, Set[int]]
    ) -> Optional[int]:
        iv = domains[name]
        values = excluded.get(name)
        if not values:
            return iv.lo if iv.lo <= iv.hi else None
        for value in range(iv.lo, iv.hi + 1):
            if value not in values:
                return value
        return None

    def _assign(
        self,
        name: str,
        value: int,
        conjuncts: List[Conjunct],
        var_index: Dict[str, Tuple[int, ...]],
        domains: Dict[str, Interval],
        excluded: Dict[str, Set[int]],
        trail: Trail,
    ) -> bool:
        changed: Set[str] = set()
        try:
            narrow_to(name, value, value, domains, trail, changed)
        except Conflict:
            self.stats.conflicts += 1
            return False
        if changed and not propagate(
            var_index.get(name, ()), conjuncts, var_index, domains, trail, self.stats
        ):
            return False
        if not self._excluded_ok(domains, excluded):
            self.stats.conflicts += 1
            return False
        return True

    def _excluded_ok(
        self, domains: Dict[str, Interval], excluded: Dict[str, Set[int]]
    ) -> bool:
        """Propagation may force an excluded value; reject such branches."""
        for name, values in excluded.items():
            iv = domains[name]
            if iv.lo == iv.hi and iv.lo in values:
                return False
        return True

    def _branch_shared(
        self,
        index: int,
        order: List[str],
        conjuncts: List[Conjunct],
        var_index: Dict[str, Tuple[int, ...]],
        components: List[Tuple[Tuple[int, ...], Tuple[str, ...]]],
        domains: Dict[str, Interval],
        excluded: Dict[str, Set[int]],
        trail: Trail,
    ) -> Optional[Dict[str, int]]:
        if index == len(order):
            return self._solve_components(
                conjuncts, var_index, components, domains, excluded, trail
            )
        name = order[index]
        iv = domains[name]
        skip = excluded.get(name, ())
        for value in range(iv.lo, iv.hi + 1):
            if value in skip:
                continue
            self._tick()
            mark = trail.mark()
            if self._assign(name, value, conjuncts, var_index, domains, excluded, trail):
                model = self._branch_shared(
                    index + 1, order, conjuncts, var_index, components, domains, excluded, trail
                )
                if model is not None:
                    return model
            trail.undo_to(mark, domains)
        return None

    def _solve_components(
        self,
        conjuncts: List[Conjunct],
        var_index: Dict[str, Tuple[int, ...]],
        components: List[Tuple[Tuple[int, ...], Tuple[str, ...]]],
        domains: Dict[str, Interval],
        excluded: Dict[str, Set[int]],
        trail: Trail,
    ) -> Optional[Dict[str, int]]:
        model: Dict[str, int] = {}
        for conjunct_ids, names in components:
            mark = trail.mark()
            sub = self._branch_component(
                conjunct_ids, names, conjuncts, var_index, domains, excluded, trail
            )
            trail.undo_to(mark, domains)
            if sub is None:
                return None
            model.update(sub)
        return model

    def _branch_component(
        self,
        conjunct_ids: Tuple[int, ...],
        names: Tuple[str, ...],
        conjuncts: List[Conjunct],
        var_index: Dict[str, Tuple[int, ...]],
        domains: Dict[str, Interval],
        excluded: Dict[str, Set[int]],
        trail: Trail,
    ) -> Optional[Dict[str, int]]:
        status = True
        for ci in conjunct_ids:
            value = conjuncts[ci].evaluate(domains)
            if value is False:
                return None
            if value is UNKNOWN:
                status = UNKNOWN
        if status is True:
            # Every remaining combination satisfies the component; take the
            # smallest value of each variable.
            sub: Dict[str, int] = {}
            for name in names:
                picked = self._pick_value(name, domains, excluded)
                if picked is None:
                    return None
                sub[name] = picked
            return sub
        target = next(
            (name for name in names if domains[name].lo != domains[name].hi), None
        )
        if target is None:
            return None
        iv = domains[target]
        skip = excluded.get(target, ())
        for value in range(iv.lo, iv.hi + 1):
            if value in skip:
                continue
            self._tick()
            mark = trail.mark()
            if self._assign(target, value, conjuncts, var_index, domains, excluded, trail):
                sub = self._branch_component(
                    conjunct_ids, names, conjuncts, var_index, domains, excluded, trail
                )
                if sub is not None:
                    return sub
            trail.undo_to(mark, domains)
        return None


class Solver:
    """Finite-domain solver for the formula language of :mod:`repro.solver.terms`."""

    def __init__(self, max_steps: int = 2_000_000):
        self.max_steps = max_steps
        #: Propagation/conflict/model counters, accumulated across all
        #: instances compiled by this solver (the engine reads deltas).
        self.stats = SolverStats()

    def compile(
        self,
        formula: T.Formula,
        domains: Dict[str, Tuple[int, int]],
        shared: Iterable[str] = (),
    ) -> SolverInstance:
        """Compile ``formula`` once for repeated solving under assumptions.

        ``shared`` names the variables that couple otherwise-independent
        parts of the formula (the symbolic integers κ); the store's
        connected components are computed once with them removed.
        """
        return SolverInstance(self, CompiledStore(formula, domains, shared=shared))

    def solve(
        self,
        formula: T.Formula,
        domains: Dict[str, Tuple[int, int]],
        prefer: Optional[Iterable[str]] = None,
        deadline: Optional[float] = None,
    ) -> Optional[Dict[str, int]]:
        """Return a model (full assignment) of ``formula`` or None if UNSAT.

        ``domains`` maps every variable to an inclusive ``(lo, hi)`` range;
        variables appearing in the formula but not in ``domains`` get the
        widest range seen (a defensive default).  ``prefer`` lists variables
        to branch on first (the symbolic integers of the regex), which both
        finds "small" models first and enables component decomposition for
        the rest.  ``deadline`` (a ``time.monotonic`` timestamp) aborts the
        search with :class:`RuntimeError`, like the step budget — it is what
        keeps a single solver call from blowing through a scheduler's time
        slice.
        """
        prefer = tuple(prefer or ())
        instance = self.compile(formula, domains, shared=prefer)
        return instance.solve((), prefer=prefer, deadline=deadline)

    def satisfiable(
        self,
        formula: T.Formula,
        domains: Dict[str, Tuple[int, int]],
        prefer: Optional[Iterable[str]] = None,
        deadline: Optional[float] = None,
    ) -> bool:
        """Convenience wrapper: is the formula satisfiable at all?

        ``prefer`` and ``deadline`` are forwarded to :meth:`solve`, so
        feasibility probes respect scheduler slices exactly like model
        enumeration does.
        """
        return self.solve(formula, domains, prefer=prefer, deadline=deadline) is not None
