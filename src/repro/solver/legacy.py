"""The original recompute-everything backtracking solver, kept as an oracle.

This is the solver that shipped before the compiled-store rewrite in
:mod:`repro.solver.solver`.  It re-derives everything (variable sets,
connected components, interval evaluation) at every search node, which made
``InferConstants`` the engine's dominant cost; it survives here, API-intact,
as the reference implementation for differential tests — the same role
``RecursiveMatcher`` plays for the match-set evaluator.

It is complete over finite variable domains and includes:

* **three-valued interval evaluation** of the formula under a partial
  assignment, which prunes hopeless branches early, and
* **connected-component decomposition**: once the shared symbolic integers are
  assigned, the remaining temporary length variables of different examples are
  independent, and each component is solved separately instead of multiplying
  the search spaces.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Tuple

from repro.solver import terms as T

# The shared three-valued interval primitives (Interval, UNKNOWN, interval
# arithmetic, formula evaluation) live in repro.solver.store; this module
# only keeps the original search strategy.
from repro.solver.store import (  # noqa: F401  (re-exported for back-compat)
    Interval,
    UNKNOWN,
    _compare,
    _evaluate,
    _interval_add,
    _interval_mul,
    _term_interval,
)


class LegacySolver:
    """Finite-domain solver for the formula language of :mod:`repro.solver.terms`."""

    def __init__(self, max_steps: int = 2_000_000):
        self.max_steps = max_steps
        self._steps = 0
        self._deadline: Optional[float] = None

    # -- public API ---------------------------------------------------------

    def solve(
        self,
        formula: T.Formula,
        domains: Dict[str, Tuple[int, int]],
        prefer: Optional[Iterable[str]] = None,
        deadline: Optional[float] = None,
    ) -> Optional[Dict[str, int]]:
        """Return a model (full assignment) of ``formula`` or None if UNSAT.

        ``domains`` maps every variable to an inclusive ``(lo, hi)`` range;
        variables appearing in the formula but not in ``domains`` get the
        widest range seen (a defensive default).  ``prefer`` lists variables
        to branch on first (the symbolic integers of the regex), which both
        finds "small" models first and enables component decomposition for
        the rest.  ``deadline`` (a ``time.monotonic`` timestamp) aborts the
        search with :class:`RuntimeError`, like the step budget — it is what
        keeps a single solver call from blowing through a scheduler's time
        slice.
        """
        self._steps = 0
        self._deadline = deadline
        flat = _flatten(formula)
        names = sorted(T.var_names(flat))
        if not names:
            value = _evaluate(flat, {}, {})
            return {} if value is True else None
        default_domain = (0, max((hi for _, hi in domains.values()), default=30))
        full_domains = {
            name: Interval(*domains.get(name, default_domain)) for name in names
        }
        order = list(dict.fromkeys([*(prefer or []), *names]))
        order = [name for name in order if name in full_domains]
        assignment: Dict[str, int] = {}
        result = self._search(flat, order, full_domains, assignment)
        return result

    def satisfiable(
        self,
        formula: T.Formula,
        domains: Dict[str, Tuple[int, int]],
        prefer: Optional[Iterable[str]] = None,
        deadline: Optional[float] = None,
    ) -> bool:
        """Convenience wrapper: is the formula satisfiable at all?

        ``prefer`` and ``deadline`` are forwarded to :meth:`solve`, so
        feasibility probes respect scheduler slices exactly like model
        enumeration does.
        """
        return self.solve(formula, domains, prefer=prefer, deadline=deadline) is not None

    # -- search -------------------------------------------------------------

    def _search(
        self,
        formula: T.Formula,
        order: list[str],
        domains: Dict[str, Interval],
        assignment: Dict[str, int],
    ) -> Optional[Dict[str, int]]:
        status = _evaluate(formula, assignment, domains)
        if status is False:
            return None
        unassigned = [name for name in order if name not in assignment]
        if not unassigned:
            return dict(assignment) if status is True else None
        if status is True:
            # Remaining variables are unconstrained; fix them to their lower bound.
            model = dict(assignment)
            for name in unassigned:
                model[name] = domains[name].lo
            return model

        # Component decomposition: solve independent variable groups separately.
        components = _components(formula, set(unassigned), assignment)
        if len(components) > 1:
            model = dict(assignment)
            for component_vars, component_formula in components:
                sub_order = [n for n in order if n in component_vars]
                sub = self._search(component_formula, sub_order, domains, dict(assignment))
                if sub is None:
                    return None
                for name in component_vars:
                    model[name] = sub[name]
            # Variables in no component are unconstrained.
            for name in unassigned:
                model.setdefault(name, domains[name].lo)
            return model

        # Branch on a variable that actually constrains the formula, preferring
        # the caller-supplied order (symbolic integers first).
        constrained = components[0][0] if components else set(unassigned)
        name = next((n for n in unassigned if n in constrained), unassigned[0])
        domain = domains[name]
        for value in range(domain.lo, domain.hi + 1):
            self._steps += 1
            if self._steps > self.max_steps:
                raise RuntimeError("solver step budget exceeded")
            if (
                self._deadline is not None
                and self._steps % 2048 == 0
                and time.monotonic() > self._deadline
            ):
                raise RuntimeError("solver deadline exceeded")
            assignment[name] = value
            result = self._search(formula, order, domains, assignment)
            if result is not None:
                return result
            del assignment[name]
        return None


# ---------------------------------------------------------------------------
# Formula utilities
# ---------------------------------------------------------------------------

def _flatten(formula: T.Formula) -> T.Formula:
    """Drop Exists binders (every variable is existential for satisfiability)."""
    if isinstance(formula, T.Exists):
        return _flatten(formula.body)
    if isinstance(formula, T.AndF):
        return T.conjoin([_flatten(p) for p in formula.parts])
    if isinstance(formula, T.OrF):
        return T.disjoin([_flatten(p) for p in formula.parts])
    if isinstance(formula, T.NotF):
        return T.NotF(_flatten(formula.arg))
    return formula



def _components(
    formula: T.Formula, unassigned: set[str], assignment: Dict[str, int]
) -> list[tuple[set[str], T.Formula]]:
    """Split a top-level conjunction into variable-connected components.

    Only conjunctions can be decomposed; any other shape yields a single
    component.  Conjuncts whose unassigned variables overlap are merged via
    union-find.
    """
    if not isinstance(formula, T.AndF):
        return [(set(T.var_names(formula)) & unassigned, formula)]

    parts = list(formula.parts)
    part_vars = [set(T.var_names(part)) & unassigned for part in parts]

    parent = list(range(len(parts)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    owner: dict[str, int] = {}
    for index, variables in enumerate(part_vars):
        for name in variables:
            if name in owner:
                union(index, owner[name])
            else:
                owner[name] = index

    groups: dict[int, list[int]] = {}
    for index in range(len(parts)):
        groups.setdefault(find(index), []).append(index)

    components: list[tuple[set[str], T.Formula]] = []
    for indices in groups.values():
        variables = set().union(*(part_vars[i] for i in indices)) if indices else set()
        if not variables:
            continue  # fully assigned conjuncts were already checked by _evaluate
        component_formula = T.conjoin([parts[i] for i in indices])
        components.append((variables, component_formula))
    if not components:
        return [(set(), formula)]
    return components
