"""Train/test splitting utilities (Section 7, "Training for each data set").

The paper trains the semantic parser on 6,500 DeepRegex sentences and uses
5-fold cross-validation on the StackOverflow corpus so it never trains on
test data.  These helpers reproduce both regimes.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.datasets.benchmark import Benchmark


def train_test_split(
    benchmarks: Sequence[Benchmark], train_fraction: float = 0.7, seed: int = 13
) -> Tuple[List[Benchmark], List[Benchmark]]:
    """Shuffled train/test split (used for the DeepRegex-style corpus)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be strictly between 0 and 1")
    items = list(benchmarks)
    random.Random(seed).shuffle(items)
    cut = int(len(items) * train_fraction)
    return items[:cut], items[cut:]


def cross_validation_folds(
    benchmarks: Sequence[Benchmark], folds: int = 5, seed: int = 13
) -> List[Tuple[List[Benchmark], List[Benchmark]]]:
    """5-fold cross-validation splits (used for the StackOverflow corpus).

    Returns a list of (train, test) pairs; every benchmark appears in exactly
    one test fold.
    """
    if folds < 2:
        raise ValueError("need at least 2 folds")
    items = list(benchmarks)
    random.Random(seed).shuffle(items)
    buckets: List[List[Benchmark]] = [[] for _ in range(folds)]
    for index, benchmark in enumerate(items):
        buckets[index % folds].append(benchmark)
    result = []
    for index in range(folds):
        test = buckets[index]
        train = [b for j, bucket in enumerate(buckets) if j != index for b in bucket]
        result.append((train, test))
    return result


def training_pairs(benchmarks: Sequence[Benchmark]) -> List[Tuple[str, str]]:
    """(utterance, gold sketch string) pairs for semantic-parser training."""
    return [
        (benchmark.description, benchmark.gold_sketch_text)
        for benchmark in benchmarks
        if benchmark.gold_sketch_text is not None
    ]
