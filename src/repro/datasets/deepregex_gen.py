"""Generator for the DeepRegex-style dataset (Section 7, "DeepRegex data set").

The original corpus was produced by sampling a synchronous context-free
grammar that emits a regex together with a stylised English description, then
paraphrasing the English via Mechanical Turk.  We reproduce the same pipeline:

1. a synchronous grammar over *fragments* (quantified character classes and
   literals) and *compositions* (concatenation, union, containment, negation,
   optionality) emits aligned (regex, English, gold sketch) triples,
2. paraphrase noise (synonym substitution, filler insertion) perturbs the
   English,
3. regexes denoting the empty language are filtered out (the paper discards
   ~1,400 such benchmarks), and
4. positive/negative examples are sampled from the regex's automaton.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.automata.operations import language_nonempty
from repro.datasets.benchmark import Benchmark
from repro.datasets.examples_gen import attach_examples
from repro.dsl import ast as rast
from repro.dsl.printer import to_dsl_string
from repro.sketch.printer import sketch_to_string
from repro.sketch.ast import ConcreteRegexSketch, Hole


#: (regex, English phrase, plural English phrase) for the base concepts.
_BASE_CONCEPTS: list[tuple[rast.Regex, str, str]] = [
    (rast.NUM, "a digit", "digits"),
    (rast.NUM, "a number", "numbers"),
    (rast.LET, "a letter", "letters"),
    (rast.CAP, "a capital letter", "capital letters"),
    (rast.LOW, "a lower case letter", "lower case letters"),
    (rast.VOW, "a vowel", "vowels"),
    (rast.ALPHANUM, "an alphanumeric character", "alphanumeric characters"),
    (rast.SPEC, "a special character", "special characters"),
    (rast.literal("-"), "a dash", "dashes"),
    (rast.literal("."), "a dot", "dots"),
    (rast.literal(","), "a comma", "commas"),
    (rast.literal("_"), "an underscore", "underscores"),
    (rast.literal("@"), "an at sign", "at signs"),
]

_FILLERS = [
    "lines with",
    "items with",
    "strings with",
    "i need",
    "please match",
    "the string should have",
    "give me",
]

_SYNONYMS = {
    "followed by": ["then", "before", "and then"],
    "or": ["or else", "or"],
    "containing": ["that contain", "which include", "having"],
    "starting with": ["that start with", "beginning with"],
    "ending with": ["that end with", "finishing with"],
    "not containing": ["without", "that do not contain"],
}


def _fragment(rng: random.Random) -> Tuple[rast.Regex, str]:
    """One quantified base concept: (regex, English)."""
    regex, singular, plural = rng.choice(_BASE_CONCEPTS)
    choice = rng.randrange(6)
    if choice == 0:
        return regex, singular
    if choice == 1:
        count = rng.randint(2, 6)
        return rast.Repeat(regex, count), f"{count} {plural}"
    if choice == 2:
        count = rng.randint(1, 4)
        return rast.RepeatAtLeast(regex, count), f"at least {count} {plural}"
    if choice == 3:
        count = rng.randint(2, 6)
        return rast.RepeatRange(regex, 1, count), f"at most {count} {plural}"
    if choice == 4:
        return rast.RepeatAtLeast(regex, 1), f"one or more {plural}"
    return rast.KleeneStar(regex), f"any number of {plural}"


def _composition(rng: random.Random) -> Tuple[rast.Regex, str]:
    """A composed (regex, English) pair."""
    left, left_text = _fragment(rng)
    choice = rng.randrange(8)
    if choice == 0:
        return left, left_text
    right, right_text = _fragment(rng)
    if choice in (1, 2):
        return rast.Concat(left, right), f"{left_text} followed by {right_text}"
    if choice == 3:
        return rast.Or(left, right), f"{left_text} or {right_text}"
    if choice == 4:
        return rast.Concat(left, rast.Optional(right)), (
            f"{left_text} optionally followed by {right_text}"
        )
    if choice == 5:
        return rast.StartsWith(left), f"strings starting with {left_text}"
    if choice == 6:
        return rast.Contains(left), f"strings containing {left_text}"
    return rast.Not(rast.Contains(left)), f"strings not containing {left_text}"


def _paraphrase(text: str, rng: random.Random) -> str:
    """Cheap paraphrase noise standing in for Mechanical-Turk rewording."""
    for phrase, alternatives in _SYNONYMS.items():
        if phrase in text and rng.random() < 0.5:
            text = text.replace(phrase, rng.choice(alternatives), 1)
    if rng.random() < 0.5:
        text = f"{rng.choice(_FILLERS)} {text}"
    if rng.random() < 0.2:
        text = text + " only"
    return text


def deepregex_gold_sketch(regex: rast.Regex) -> str:
    """Gold sketch label: the root operator replaced by a hole over its arguments.

    This is exactly the labelling scheme the paper uses to train the parser on
    the DeepRegex dataset.
    """
    children = regex.children()
    if not children:
        sketch = Hole((ConcreteRegexSketch(regex),))
    else:
        sketch = Hole(tuple(ConcreteRegexSketch(child) for child in children))
    return sketch_to_string(sketch)


def generate_deepregex_dataset(
    count: int = 200,
    seed: int = 2020,
    with_examples: bool = True,
    num_positive: int = 4,
    num_negative: int = 5,
) -> List[Benchmark]:
    """Generate the DeepRegex-style corpus (default size 200, as in the paper)."""
    rng = random.Random(seed)
    benchmarks: List[Benchmark] = []
    seen_regexes: set[str] = set()
    attempts = 0
    while len(benchmarks) < count and attempts < count * 50:
        attempts += 1
        regex, english = _composition(rng)
        regex_text = to_dsl_string(regex)
        if regex_text in seen_regexes:
            continue
        # Filter degenerate benchmarks (empty language), as in Section 7.
        if not language_nonempty(regex):
            continue
        seen_regexes.add(regex_text)
        benchmark = Benchmark(
            benchmark_id=f"deepregex-{len(benchmarks):03d}",
            description=_paraphrase(english, rng),
            regex_text=regex_text,
            gold_sketch_text=deepregex_gold_sketch(regex),
            source="deepregex",
        )
        if with_examples:
            benchmark = attach_examples(
                benchmark, num_positive=num_positive, num_negative=num_negative,
                rng=random.Random(rng.randrange(1 << 30)),
            )
            if not benchmark.positive:
                continue
        benchmarks.append(benchmark)
    return benchmarks
