"""Benchmark datasets (Section 7 of the paper).

Two corpora are provided:

* :mod:`repro.datasets.deepregex_gen` — a generator reproducing the
  methodology behind the DeepRegex corpus: a synchronous context-free grammar
  emits (regex, stylised English) pairs, paraphrase noise is applied, regexes
  with empty languages are filtered out, and positive/negative examples are
  sampled from the regex's automaton (replacing the human annotators).
* :mod:`repro.datasets.stackoverflow` — a curated corpus of 62 realistic
  string-matching tasks in the style of the paper's StackOverflow benchmarks,
  each with a multi-sentence description, a gold regex, a manually written
  gold sketch, and positive/negative examples.
"""

from repro.datasets.benchmark import Benchmark
from repro.datasets.examples_gen import attach_examples
from repro.datasets.deepregex_gen import generate_deepregex_dataset
from repro.datasets.stackoverflow import stackoverflow_dataset
from repro.datasets.splits import cross_validation_folds, train_test_split

__all__ = [
    "Benchmark",
    "attach_examples",
    "generate_deepregex_dataset",
    "stackoverflow_dataset",
    "cross_validation_folds",
    "train_test_split",
]
