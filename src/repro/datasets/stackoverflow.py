"""Curated StackOverflow-style corpus (Section 7, "StackOverflow data set").

The paper curates 62 benchmarks from regex-related StackOverflow posts that
contain both an English description and positive/negative examples, filtered
to exclude visual formatting, descriptions longer than three sentences,
high-level concepts (months, US phone numbers), and tasks needing lookahead.

We cannot redistribute the original posts, so this module contains 62
benchmarks written in the same style and with the same difficulty profile:
multi-sentence descriptions (~26 words on average), larger target regexes
(~11 AST nodes on average), and a manually written gold sketch per benchmark
that mimics the structure of the English description (used only for training
the semantic parser, never at synthesis time).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.datasets.benchmark import Benchmark
from repro.datasets.examples_gen import attach_examples


#: (description, regex, gold sketch, positive examples, negative examples)
_ENTRIES: list[tuple[str, str, str, tuple[str, ...], tuple[str, ...]]] = [
    (
        "I need a regular expression that validates Decimal(18, 3), which means the max "
        "number of digits before comma is 15 then accept at max 3 numbers after the comma.",
        "Concat(RepeatRange(<num>,1,15),Optional(Concat(<.>,RepeatRange(<num>,1,3))))",
        "Concat(Hole(<num>,<,>),Hole(RepeatRange(<num>,1,3),<,>))",
        ("123456789.123", "123456789123456.12", "12345.1", "123456789123456"),
        ("1234567891234567", "123.1234", "1.12345", ".1234"),
    ),
    (
        "The input box should accept only if either first 2 letters alpha followed by 6 "
        "numeric or 8 numeric.",
        "Or(Concat(Repeat(<let>,2),Repeat(<num>,6)),Repeat(<num>,8))",
        "Or(Hole(Repeat(<let>,2),Repeat(<num>,6)),Hole(Repeat(<num>,8)))",
        ("ab123456", "12345678", "XY000000"),
        ("abc12345", "1234567", "ab12345", "123456789"),
    ),
    (
        "I want to validate a password field. The password must be 6 to 12 characters long "
        "and contain only letters and digits.",
        "And(RepeatRange(<alphanum>,6,12),Contains(<alphanum>))",
        "And(Hole(RepeatRange(<alphanum>,6,12)),Hole(<alphanum>))",
        ("abc123", "password12", "A1B2C3"),
        ("abc12", "this-is-bad!", "abcdefghijklm"),
    ),
    (
        "Match an amount of money. There should be one or more digits, then optionally a dot "
        "followed by exactly 2 digits for the cents.",
        "Concat(RepeatAtLeast(<num>,1),Optional(Concat(<.>,Repeat(<num>,2))))",
        "Concat(Hole(RepeatAtLeast(<num>,1)),Hole(Optional(Concat(<.>,Repeat(<num>,2)))))",
        ("12", "12.50", "1999.99"),
        ("12.5", ".50", "12.505", "a.50"),
    ),
    (
        "I am trying to write a regex for product codes. A valid code starts with 3 capital "
        "letters followed by a dash and then 4 digits.",
        "Concat(Repeat(<cap>,3),Concat(<->,Repeat(<num>,4)))",
        "Concat(Hole(Repeat(<cap>,3)),Hole(<->,Repeat(<num>,4)))",
        ("ABC-1234", "XYZ-0001"),
        ("AB-1234", "ABCD-123", "abc-1234", "ABC1234"),
    ),
    (
        "How to check that the string is a valid integer percentage? It should be 1 to 3 "
        "digits followed by a percent sign.",
        "Concat(RepeatRange(<num>,1,3),<%>)",
        "Concat(Hole(RepeatRange(<num>,1,3)),Hole(<%>))",
        ("5%", "99%", "100%"),
        ("1000%", "%", "12", "12.5%"),
    ),
    (
        "A username must start with a letter. After that it can contain any number of letters, "
        "digits or underscores.",
        "Concat(<let>,KleeneStar(Or(<alphanum>,<_>)))",
        "Concat(Hole(<let>),Hole(KleeneStar(Or(<alphanum>,<_>))))",
        ("a", "john_doe99", "Xy_z"),
        ("1abc", "_abc", "ab cd"),
    ),
    (
        "Validate a time duration given in minutes and seconds like 12:05. There are 1 or 2 "
        "digits, a colon, then exactly 2 digits.",
        "Concat(RepeatRange(<num>,1,2),Concat(<:>,Repeat(<num>,2)))",
        "Concat(Hole(RepeatRange(<num>,1,2)),Hole(<:>,Repeat(<num>,2)))",
        ("1:05", "12:59"),
        ("123:00", "12:5", ":05", "12-05"),
    ),
    (
        "I need to match strings that contain at least one digit but do not contain any space.",
        "And(Contains(<num>),Not(Contains(<space>)))",
        "And(Hole(Contains(<num>)),Hole(Not(Contains(<space>))))",
        ("abc1", "1", "x9y"),
        ("abc", "a 1", " 1", ""),
    ),
    (
        "The voucher code is 4 letters followed by 4 digits, or 8 digits with nothing else.",
        "Or(Concat(Repeat(<let>,4),Repeat(<num>,4)),Repeat(<num>,8))",
        "Or(Hole(Repeat(<let>,4),Repeat(<num>,4)),Hole(Repeat(<num>,8)))",
        (),
        (),
    ),
    (
        "Accept a version number made of 2 or 3 groups of digits separated by dots, each group "
        "has 1 to 3 digits.",
        "Concat(RepeatRange(<num>,1,3),Concat(Concat(<.>,RepeatRange(<num>,1,3)),"
        "Optional(Concat(<.>,RepeatRange(<num>,1,3)))))",
        "Concat(Hole(RepeatRange(<num>,1,3)),Hole(Concat(<.>,RepeatRange(<num>,1,3))))",
        ("1.0", "10.20.3", "192.168.1"),
        ("1", "1.", "1.2.3.4", "1234.0"),
    ),
    (
        "A line is valid when it starts with a hash sign and then has only letters and spaces "
        "after it.",
        "Concat(<#>,RepeatAtLeast(Or(<let>,<space>),1))",
        "Concat(Hole(<#>),Hole(RepeatAtLeast(Or(<let>,<space>),1)))",
        (),
        (),
    ),
    (
        "Need regex for currency where the value is up to 6 digits before the decimal point and "
        "exactly 2 digits after it. The decimal part is required.",
        "Concat(RepeatRange(<num>,1,6),Concat(<.>,Repeat(<num>,2)))",
        "Concat(Hole(RepeatRange(<num>,1,6)),Hole(<.>,Repeat(<num>,2)))",
        (),
        (),
    ),
    (
        "Match an identifier that is an underscore or a letter followed by at most 7 "
        "alphanumeric characters.",
        "Concat(Or(<_>,<let>),RepeatRange(<alphanum>,1,7))",
        "Concat(Hole(Or(<_>,<let>)),Hole(RepeatRange(<alphanum>,1,7)))",
        (),
        (),
    ),
    (
        "The serial number is 2 capital letters, then 3 digits, then again 2 capital letters.",
        "Concat(Repeat(<cap>,2),Concat(Repeat(<num>,3),Repeat(<cap>,2)))",
        "Concat(Hole(Repeat(<cap>,2)),Hole(Repeat(<num>,3),Repeat(<cap>,2)))",
        (),
        (),
    ),
    (
        "I want to accept only strings of hexadecimal characters with a length of at least 4.",
        "RepeatAtLeast(<hex>,4)",
        "Hole(RepeatAtLeast(<hex>,4))",
        (),
        (),
    ),
    (
        "Validate a percentage that may have a decimal part: 1 to 3 digits, optionally a dot and "
        "1 or 2 more digits, and it must end with a percent sign.",
        "Concat(RepeatRange(<num>,1,3),Concat(Optional(Concat(<.>,RepeatRange(<num>,1,2))),<%>))",
        "Concat(Hole(RepeatRange(<num>,1,3)),Hole(Optional(Concat(<.>,RepeatRange(<num>,1,2))),<%>))",
        (),
        (),
    ),
    (
        "The field should be a comma separated pair of numbers, each number has 1 to 4 digits.",
        "Concat(RepeatRange(<num>,1,4),Concat(<,>,RepeatRange(<num>,1,4)))",
        "Concat(Hole(RepeatRange(<num>,1,4)),Hole(<,>,RepeatRange(<num>,1,4)))",
        (),
        (),
    ),
    (
        "Accept an optional minus sign followed by 1 to 10 digits. No other characters allowed.",
        "Concat(Optional(<->),RepeatRange(<num>,1,10))",
        "Concat(Hole(Optional(<->)),Hole(RepeatRange(<num>,1,10)))",
        (),
        (),
    ),
    (
        "A valid tag is the at sign followed by 2 to 15 lower case letters or digits.",
        "Concat(<@>,RepeatRange(Or(<low>,<num>),2,15))",
        "Concat(Hole(<@>),Hole(RepeatRange(Or(<low>,<num>),2,15)))",
        (),
        (),
    ),
    (
        "Strings must contain the word dash separated parts: 2 digits, a dash, 2 digits, a dash "
        "and 4 digits.",
        "Concat(Repeat(<num>,2),Concat(<->,Concat(Repeat(<num>,2),Concat(<->,Repeat(<num>,4)))))",
        "Concat(Hole(Repeat(<num>,2)),Hole(<->,Repeat(<num>,2),Repeat(<num>,4)))",
        (),
        (),
    ),
    (
        "I need to match file names made of 1 or more letters, then a dot, then an extension of "
        "exactly 3 lower case letters.",
        "Concat(RepeatAtLeast(<let>,1),Concat(<.>,Repeat(<low>,3)))",
        "Concat(Hole(RepeatAtLeast(<let>,1)),Hole(<.>,Repeat(<low>,3)))",
        (),
        (),
    ),
    (
        "The answer must be a single capital letter or a single digit, nothing more.",
        "Or(<cap>,<num>)",
        "Or(Hole(<cap>),Hole(<num>))",
        (),
        (),
    ),
    (
        "Accept lines that start with 3 digits and end with 2 capital letters.",
        "And(StartsWith(Repeat(<num>,3)),EndsWith(Repeat(<cap>,2)))",
        "And(Hole(StartsWith(Repeat(<num>,3))),Hole(EndsWith(Repeat(<cap>,2))))",
        (),
        (),
    ),
    (
        "A PIN is exactly 4 or exactly 6 digits.",
        "Or(Repeat(<num>,4),Repeat(<num>,6))",
        "Or(Hole(Repeat(<num>,4)),Hole(Repeat(<num>,6)))",
        (),
        (),
    ),
    (
        "Match a temperature reading: an optional minus, 1 to 3 digits, and optionally a dot "
        "followed by exactly one digit.",
        "Concat(Optional(<->),Concat(RepeatRange(<num>,1,3),Optional(Concat(<.>,<num>))))",
        "Concat(Hole(Optional(<->)),Hole(RepeatRange(<num>,1,3),Optional(Concat(<.>,<num>))))",
        (),
        (),
    ),
    (
        "I want strings of lower case letters only, between 3 and 8 characters long.",
        "RepeatRange(<low>,3,8)",
        "Hole(RepeatRange(<low>,3,8))",
        (),
        (),
    ),
    (
        "A ticket reference starts with the letters then a colon then at least 3 digits.",
        "Concat(RepeatAtLeast(<let>,1),Concat(<:>,RepeatAtLeast(<num>,3)))",
        "Concat(Hole(RepeatAtLeast(<let>,1)),Hole(<:>,RepeatAtLeast(<num>,3)))",
        (),
        (),
    ),
    (
        "The code field accepts 5 digits optionally followed by a dash and 4 more digits.",
        "Concat(Repeat(<num>,5),Optional(Concat(<->,Repeat(<num>,4))))",
        "Concat(Hole(Repeat(<num>,5)),Hole(Optional(Concat(<->,Repeat(<num>,4)))))",
        (),
        (),
    ),
    (
        "Match numbers with a thousands separator: 1 to 3 digits then a comma then exactly 3 "
        "digits.",
        "Concat(RepeatRange(<num>,1,3),Concat(<,>,Repeat(<num>,3)))",
        "Concat(Hole(RepeatRange(<num>,1,3)),Hole(<,>,Repeat(<num>,3)))",
        (),
        (),
    ),
    (
        "I need to reject any string containing a digit; only letters, spaces and dashes are "
        "allowed, at least one character.",
        "And(RepeatAtLeast(Or(<let>,Or(<space>,<->)),1),Not(Contains(<num>)))",
        "And(Hole(RepeatAtLeast(Or(<let>,<space>),1)),Hole(Not(Contains(<num>))))",
        (),
        (),
    ),
    (
        "A label is 1 or more capital letters followed by an optional single digit.",
        "Concat(RepeatAtLeast(<cap>,1),Optional(<num>))",
        "Concat(Hole(RepeatAtLeast(<cap>,1)),Hole(Optional(<num>)))",
        (),
        (),
    ),
    (
        "Valid input is a slash separated pair: 1 or 2 digits, a slash, then 1 or 2 digits.",
        "Concat(RepeatRange(<num>,1,2),Concat(</>,RepeatRange(<num>,1,2)))",
        "Concat(Hole(RepeatRange(<num>,1,2)),Hole(</>,RepeatRange(<num>,1,2)))",
        (),
        (),
    ),
    (
        "The string must start with a capital letter and contain at least one digit somewhere.",
        "And(StartsWith(<cap>),Contains(<num>))",
        "And(Hole(StartsWith(<cap>)),Hole(Contains(<num>)))",
        (),
        (),
    ),
    (
        "Match a coordinate like 12.5,7.25 where each part is 1 to 3 digits, a dot, 1 to 2 "
        "digits, and the parts are separated by a comma.",
        "Concat(Concat(RepeatRange(<num>,1,3),Concat(<.>,RepeatRange(<num>,1,2))),"
        "Concat(<,>,Concat(RepeatRange(<num>,1,3),Concat(<.>,RepeatRange(<num>,1,2)))))",
        "Concat(Hole(RepeatRange(<num>,1,3),Concat(<.>,RepeatRange(<num>,1,2))),"
        "Hole(<,>,RepeatRange(<num>,1,3)))",
        (),
        (),
    ),
    (
        "Accept strings of 6 to 10 characters that contain no special character at all, only "
        "letters and digits.",
        "RepeatRange(<alphanum>,6,10)",
        "Hole(RepeatRange(<alphanum>,6,10))",
        (),
        (),
    ),
    (
        "The quantity is at least 1 digit, and the whole string must not start with a zero.",
        "And(RepeatAtLeast(<num>,1),Not(StartsWith(<0>)))",
        "And(Hole(RepeatAtLeast(<num>,1)),Hole(Not(StartsWith(<0>))))",
        ("5", "10", "907"),
        ("05", "0", "a1"),
    ),
    (
        "A room code is the letter then a dash then 3 digits, or just 4 digits alone.",
        "Or(Concat(<let>,Concat(<->,Repeat(<num>,3))),Repeat(<num>,4))",
        "Or(Hole(<let>,Repeat(<num>,3)),Hole(Repeat(<num>,4)))",
        (),
        (),
    ),
    (
        "Valid entries are 2 letters, then 1 to 3 digits, and the entry must end with a single "
        "lower case letter.",
        "Concat(Repeat(<let>,2),Concat(RepeatRange(<num>,1,3),<low>))",
        "Concat(Hole(Repeat(<let>,2)),Hole(RepeatRange(<num>,1,3),<low>))",
        (),
        (),
    ),
    (
        "Match a simple fraction: one or more digits, a slash, then one or more digits.",
        "Concat(RepeatAtLeast(<num>,1),Concat(</>,RepeatAtLeast(<num>,1)))",
        "Concat(Hole(RepeatAtLeast(<num>,1)),Hole(</>,RepeatAtLeast(<num>,1)))",
        (),
        (),
    ),
    (
        "I want to allow an optional plus sign, then 7 to 12 digits, and no other symbols.",
        "Concat(Optional(<+>),RepeatRange(<num>,7,12))",
        "Concat(Hole(Optional(<+>)),Hole(RepeatRange(<num>,7,12)))",
        (),
        (),
    ),
    (
        "The invoice number is the hash sign, 2 capital letters, and then exactly 6 digits.",
        "Concat(<#>,Concat(Repeat(<cap>,2),Repeat(<num>,6)))",
        "Concat(Hole(<#>),Hole(Repeat(<cap>,2),Repeat(<num>,6)))",
        (),
        (),
    ),
    (
        "Accept a list of 2 or 3 words made of lower case letters separated by single spaces.",
        "Concat(RepeatAtLeast(<low>,1),Concat(Concat(<space>,RepeatAtLeast(<low>,1)),"
        "Optional(Concat(<space>,RepeatAtLeast(<low>,1)))))",
        "Concat(Hole(RepeatAtLeast(<low>,1)),Hole(<space>,RepeatAtLeast(<low>,1)))",
        (),
        (),
    ),
    (
        "A hex color value is the hash sign followed by exactly 6 hexadecimal characters.",
        "Concat(<#>,Repeat(<hex>,6))",
        "Concat(Hole(<#>),Hole(Repeat(<hex>,6)))",
        (),
        (),
    ),
    (
        "Match measurements of 1 to 4 digits followed by the two lower case letters cm.",
        "Concat(RepeatRange(<num>,1,4),Concat(<c>,<m>))",
        "Concat(Hole(RepeatRange(<num>,1,4)),Hole(<c>,<m>))",
        (),
        (),
    ),
    (
        "The string must be only digits and must contain at least 2 and at most 5 of them.",
        "RepeatRange(<num>,2,5)",
        "Hole(RepeatRange(<num>,2,5))",
        (),
        (),
    ),
    (
        "Need to validate a range input such as 10-99: exactly 2 digits, a dash, exactly 2 "
        "digits.",
        "Concat(Repeat(<num>,2),Concat(<->,Repeat(<num>,2)))",
        "Concat(Hole(Repeat(<num>,2)),Hole(<->,Repeat(<num>,2)))",
        (),
        (),
    ),
    (
        "An initial is one capital letter followed by a period.",
        "Concat(<cap>,<.>)",
        "Concat(Hole(<cap>),Hole(<.>))",
        (),
        (),
    ),
    (
        "Match strings that end with a semicolon and contain only letters and semicolons.",
        "And(EndsWith(<;>),RepeatAtLeast(Or(<let>,<;>),1))",
        "And(Hole(EndsWith(<;>)),Hole(RepeatAtLeast(Or(<let>,<;>),1)))",
        (),
        (),
    ),
    (
        "A license key is 4 groups of 4 alphanumeric characters separated by dashes.",
        "Concat(Repeat(<alphanum>,4),Concat(<->,Concat(Repeat(<alphanum>,4),Concat(<->,"
        "Concat(Repeat(<alphanum>,4),Concat(<->,Repeat(<alphanum>,4)))))))",
        "Concat(Hole(Repeat(<alphanum>,4)),Hole(<->,Repeat(<alphanum>,4)))",
        (),
        (),
    ),
    (
        "Accept an optional leading plus or minus sign followed by at least one digit and at "
        "most 6 digits.",
        "Concat(Optional(Or(<+>,<->)),RepeatRange(<num>,1,6))",
        "Concat(Hole(Optional(Or(<+>,<->))),Hole(RepeatRange(<num>,1,6)))",
        (),
        (),
    ),
    (
        "I need a pattern for a short slug: lower case letters and dashes only, starting with a "
        "letter, at least 3 characters in total.",
        "Concat(<low>,RepeatAtLeast(Or(<low>,<->),2))",
        "Concat(Hole(<low>),Hole(RepeatAtLeast(Or(<low>,<->),2)))",
        (),
        (),
    ),
    (
        "Validate an answer sheet line: 1 to 2 digits, a period, a space, then a single capital "
        "letter.",
        "Concat(RepeatRange(<num>,1,2),Concat(<.>,Concat(<space>,<cap>)))",
        "Concat(Hole(RepeatRange(<num>,1,2)),Hole(<.>,<space>,<cap>))",
        (),
        (),
    ),
    (
        "The barcode must be exactly 13 digits, or exactly 8 digits for the short form.",
        "Or(Repeat(<num>,13),Repeat(<num>,8))",
        "Or(Hole(Repeat(<num>,13)),Hole(Repeat(<num>,8)))",
        (),
        (),
    ),
    (
        "Match a chess square: one lower case letter followed by one digit.",
        "Concat(<low>,<num>)",
        "Concat(Hole(<low>),Hole(<num>))",
        (),
        (),
    ),
    (
        "Accept strings that contain the at sign exactly once: some letters, the at sign, then "
        "some more letters.",
        "Concat(RepeatAtLeast(<let>,1),Concat(<@>,RepeatAtLeast(<let>,1)))",
        "Concat(Hole(RepeatAtLeast(<let>,1)),Hole(<@>,RepeatAtLeast(<let>,1)))",
        (),
        (),
    ),
    (
        "The reference must not contain spaces and must end with 3 digits.",
        "And(Not(Contains(<space>)),EndsWith(Repeat(<num>,3)))",
        "And(Hole(Not(Contains(<space>))),Hole(EndsWith(Repeat(<num>,3))))",
        (),
        (),
    ),
    (
        "A seat assignment is 1 or 2 digits followed by a single capital letter.",
        "Concat(RepeatRange(<num>,1,2),<cap>)",
        "Concat(Hole(RepeatRange(<num>,1,2)),Hole(<cap>))",
        (),
        (),
    ),
    (
        "Validate input of 3 letters, an underscore, and then 1 to 5 digits.",
        "Concat(Repeat(<let>,3),Concat(<_>,RepeatRange(<num>,1,5)))",
        "Concat(Hole(Repeat(<let>,3)),Hole(<_>,RepeatRange(<num>,1,5)))",
        (),
        (),
    ),
    (
        "The answer is a single vowel optionally followed by a single digit.",
        "Concat(<vow>,Optional(<num>))",
        "Concat(Hole(<vow>),Hole(Optional(<num>)))",
        (),
        (),
    ),
    (
        "Match log levels: strings that start with a capital letter and are 4 to 7 letters long "
        "in total with no digits.",
        "And(StartsWith(<cap>),RepeatRange(<let>,4,7))",
        "And(Hole(StartsWith(<cap>)),Hole(RepeatRange(<let>,4,7)))",
        (),
        (),
    ),
    (
        "I want to capture a percentage change that starts with a plus or a minus and then has "
        "1 to 3 digits and then the percent sign.",
        "Concat(Or(<+>,<->),Concat(RepeatRange(<num>,1,3),<%>))",
        "Concat(Hole(Or(<+>,<->)),Hole(RepeatRange(<num>,1,3),<%>))",
        (),
        (),
    ),
]


def stackoverflow_dataset(
    with_examples: bool = True,
    num_positive: int = 4,
    num_negative: int = 5,
    seed: int = 7,
    limit: Optional[int] = None,
) -> List[Benchmark]:
    """Load the curated StackOverflow-style corpus (62 benchmarks)."""
    rng = random.Random(seed)
    benchmarks: List[Benchmark] = []
    entries: Sequence = _ENTRIES if limit is None else _ENTRIES[:limit]
    for index, (description, regex_text, sketch_text, positive, negative) in enumerate(entries):
        benchmark = Benchmark(
            benchmark_id=f"stackoverflow-{index:03d}",
            description=description,
            regex_text=regex_text,
            gold_sketch_text=sketch_text,
            positive=positive,
            negative=negative,
            source="stackoverflow",
        )
        if with_examples:
            benchmark = attach_examples(
                benchmark,
                num_positive=max(num_positive, len(positive)),
                num_negative=max(num_negative, len(negative)),
                rng=random.Random(rng.randrange(1 << 30)),
            )
        benchmarks.append(benchmark)
    return benchmarks


def dataset_size() -> int:
    """Number of curated benchmarks (the paper's corpus has 62)."""
    return len(_ENTRIES)
