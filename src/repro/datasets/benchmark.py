"""The benchmark record shared by both datasets."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.dsl import ast as rast
from repro.dsl.parser import parse_regex
from repro.sketch import parse_sketch
from repro.sketch.ast import Sketch


@dataclass
class Benchmark:
    """One regex-synthesis task.

    ``gold_sketch`` is the manually written sketch label used to train the
    semantic parser (Section 7, "Training for each data set"); it is never
    given to the synthesizer at test time.
    """

    benchmark_id: str
    description: str
    regex_text: str
    positive: tuple[str, ...] = ()
    negative: tuple[str, ...] = ()
    gold_sketch_text: Optional[str] = None
    source: str = "generated"

    @property
    def regex(self) -> rast.Regex:
        return parse_regex(self.regex_text)

    @property
    def gold_sketch(self) -> Optional[Sketch]:
        if self.gold_sketch_text is None:
            return None
        return parse_sketch(self.gold_sketch_text)

    def with_examples(self, positive: tuple[str, ...], negative: tuple[str, ...]) -> "Benchmark":
        return replace(self, positive=positive, negative=negative)

    def word_count(self) -> int:
        return len(self.description.split())

    def regex_size(self) -> int:
        from repro.dsl.simplify import size

        return size(self.regex)
