"""Attaching positive/negative examples to benchmarks.

The original corpora obtained examples from human annotators (up to 7 positive
and 7 negative per task); we sample them from the gold regex's automaton
(positives) and from near-miss mutations / the complement language
(negatives).  Benchmarks that already carry hand-written examples keep them
and are only topped up.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.automata.sampling import sample_negative, sample_positive
from repro.datasets.benchmark import Benchmark


def attach_examples(
    benchmark: Benchmark,
    num_positive: int = 4,
    num_negative: int = 5,
    rng: Optional[random.Random] = None,
    max_length: int = 18,
) -> Benchmark:
    """Return a copy of the benchmark with sampled examples attached.

    The defaults (4 positive, 5 negative) match the per-benchmark averages the
    paper reports for the adapted DeepRegex dataset.
    """
    rng = rng or random.Random(hash(benchmark.benchmark_id) & 0xFFFF)
    regex = benchmark.regex
    positive = list(benchmark.positive)
    negative = list(benchmark.negative)
    if len(positive) < num_positive:
        sampled = sample_positive(regex, num_positive, rng, max_length=max_length)
        for example in sampled:
            if example not in positive:
                positive.append(example)
    if len(negative) < num_negative:
        sampled = sample_negative(
            regex, num_negative, rng, positives=positive or None, max_length=max_length
        )
        for example in sampled:
            if example not in negative:
                negative.append(example)
    return benchmark.with_examples(
        tuple(positive[: max(num_positive, len(benchmark.positive))]),
        tuple(negative[: max(num_negative, len(benchmark.negative))]),
    )
