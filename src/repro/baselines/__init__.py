"""Baseline systems compared against Regel in Section 8.1.

* :class:`repro.baselines.deepregex.DeepRegexBaseline` — NL-only translation
  (a stand-in for the seq2seq DeepRegex system; see DESIGN.md for the
  substitution rationale),
* :class:`repro.baselines.pbe_only.RegelPbe` — examples-only synthesis
  starting from a completely unconstrained sketch.
"""

from repro.baselines.deepregex import DeepRegexBaseline
from repro.baselines.pbe_only import RegelPbe

__all__ = ["DeepRegexBaseline", "RegelPbe"]
