"""DeepRegex-style baseline: direct NL → regex translation, no examples.

The original DeepRegex [Locascio et al. 2016] is a sequence-to-sequence neural
model trained on 10,000 (description, regex) pairs.  Training such a model is
neither possible offline nor necessary for the comparison the paper makes: the
baseline's defining property is that it commits to a single reading of the
natural language without consulting examples and without search.  This
implementation therefore takes the semantic parser's highest-scoring
derivation and concretises it into one regex — it behaves exactly like an
NL-only translator: reasonable on stylised DeepRegex-style descriptions,
brittle on free-form StackOverflow prose.  The substitution is documented in
DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dsl import ast as rast
from repro.nlp.sketch_gen import SemanticParser


class DeepRegexBaseline:
    """NL-only regex prediction (top-1, no examples, no search)."""

    def __init__(self, parser: Optional[SemanticParser] = None):
        self.parser = parser or SemanticParser()

    def predict(self, description: str) -> Optional[rast.Regex]:
        """The single regex predicted for an English description (or None)."""
        return self.parser.translate(description)

    def solve(
        self, description: str, positive: Sequence[str], negative: Sequence[str]
    ) -> List[rast.Regex]:
        """Tool-interface wrapper; the examples are deliberately ignored."""
        del positive, negative  # an NL-only system cannot use them
        prediction = self.predict(description)
        return [prediction] if prediction is not None else []
