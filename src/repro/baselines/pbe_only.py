"""Regel-PBE baseline: synthesis from examples only (Section 8.1).

Regel-PBE runs the exact same PBE engine as Regel but starts from a completely
unconstrained sketch (a single hole with no hints), so neither the search
order nor the deductive pruning benefits from the natural language.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dsl import ast as rast
from repro.multimodal.regel import Regel, RegelResult, pbe_only_sketches
from repro.synthesis import SynthesisConfig


class RegelPbe:
    """Examples-only variant of Regel (single unconstrained hole)."""

    def __init__(self, config: Optional[SynthesisConfig] = None):
        self.regel = Regel(config=config)

    def solve(
        self,
        positive: Sequence[str],
        negative: Sequence[str],
        k: int = 1,
        time_budget: Optional[float] = None,
    ) -> RegelResult:
        return self.regel.synthesize(
            description="",
            positive=positive,
            negative=negative,
            k=k,
            time_budget=time_budget,
            sketches=pbe_only_sketches(),
        )
