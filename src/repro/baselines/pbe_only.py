"""Regel-PBE baseline: synthesis from examples only (Section 8.1).

Regel-PBE runs the exact same PBE engine as Regel but starts from a completely
unconstrained sketch (a single hole with no hints), so neither the search
order nor the deductive pruning benefits from the natural language.  In
pipeline terms this is simply the :class:`~repro.api.providers.PbeOnlyProvider`
plugged into a standard :class:`~repro.api.session.Session`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.api import PbeOnlyProvider, Problem, RunReport, SequentialScheduler, Session
from repro.multimodal.regel import RegelResult
from repro.synthesis import SynthesisConfig


class RegelPbe:
    """Examples-only variant of Regel (single unconstrained hole)."""

    def __init__(self, config: Optional[SynthesisConfig] = None):
        self.config = config or SynthesisConfig()
        self.session = Session(
            provider=PbeOnlyProvider(),
            scheduler=SequentialScheduler(),
            config=self.config,
        )

    def solve(
        self,
        positive: Sequence[str],
        negative: Sequence[str],
        k: int = 1,
        time_budget: Optional[float] = None,
    ) -> RegelResult:
        report = self.solve_report(positive, negative, k=k, time_budget=time_budget)
        return RegelResult.from_report(report)

    def solve_report(
        self,
        positive: Sequence[str],
        negative: Sequence[str],
        k: int = 1,
        time_budget: Optional[float] = None,
    ) -> RunReport:
        """Pipeline-native entry point returning the full :class:`RunReport`."""
        return self.session.solve(
            Problem(
                description="",
                positive=positive,
                negative=negative,
                k=k,
                budget=time_budget if time_budget is not None else self.config.timeout,
            )
        )
