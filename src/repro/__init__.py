"""repro — a from-scratch reproduction of Regel (PLDI 2020).

"Multi-Modal Synthesis of Regular Expressions" (Chen, Wang, Ye, Durrett,
Dillig): regex synthesis from a combination of natural language and
positive/negative examples.

Public entry points:

* :mod:`repro.api` — the pipeline API (``Problem`` → ``SketchProvider`` →
  ``Scheduler`` → ``Session`` → ``RunReport``), the preferred interface,
* :class:`repro.multimodal.Regel` — the legacy facade (deprecated shim over
  the pipeline API),
* :func:`repro.synthesis.synthesize` — the sketch-guided PBE engine,
* :class:`repro.nlp.SemanticParser` — English → ranked h-sketches,
* :mod:`repro.datasets` — the two evaluation corpora,
* :mod:`repro.experiments` — regeneration of every figure in Section 8.
"""

__version__ = "1.2.0"

from repro.api import (
    CancelToken,
    InterleavedScheduler,
    NlSketchProvider,
    PbeOnlyProvider,
    Problem,
    ProcessPoolScheduler,
    RunReport,
    SequentialScheduler,
    Session,
    SketchReport,
    Solution,
    StaticSketchProvider,
)
from repro.multimodal.regel import Regel, RegelResult
from repro.synthesis import SynthesisConfig, EngineVariant, synthesize
from repro.nlp.sketch_gen import SemanticParser

__all__ = [
    "Problem",
    "Solution",
    "SketchReport",
    "RunReport",
    "Session",
    "CancelToken",
    "NlSketchProvider",
    "StaticSketchProvider",
    "PbeOnlyProvider",
    "SequentialScheduler",
    "InterleavedScheduler",
    "ProcessPoolScheduler",
    "Regel",
    "RegelResult",
    "SynthesisConfig",
    "EngineVariant",
    "synthesize",
    "SemanticParser",
    "__version__",
]
