"""Registry and synchronisation for the process-global caches.

Interning (PR 3) made every AST node canonical, which in turn made a family
of module-level, intern-keyed caches profitable: per-subtree approximations
(:mod:`repro.synthesis.approximate`), Figure-13 encodings
(:mod:`repro.synthesis.encode`), partial sizes, printed DSL strings, and the
static-analysis facts (:mod:`repro.analysis`).  The service's worker pool
(:mod:`repro.service.pool`) shares those caches across N threads, so every
mutation must be synchronised — two racing inserts into a weak dictionary can
otherwise corrupt its bookkeeping or hand two different "canonical" objects
to two threads and break identity equality process-wide.

The rules this module enforces:

* every process-global cache is *registered* here (``register_cache``), so
  tooling — ``tools/check_invariants.py``, diagnostics, tests — has one
  authoritative list of the mutable module state that is allowed to exist;
* reads stay lock-free (dict reads are safe under the GIL, and a published
  entry never changes: the caches are memo tables of pure functions);
* writes go through :func:`cache_insert` / the :data:`CACHE_LOCK`, which
  serialises the insert and keeps a racing winner;
* ``REPRO_SANITIZE=1`` turns on the race sanitizer: the cache containers
  assert on any mutation performed *without* holding :data:`CACHE_LOCK` — an
  unsynchronised-mutation detector for tests and debugging.  Like ASan, the
  flag is read once at process start (probing the environment on every
  insert showed up in engine profiles); in-process tests toggle it with
  :func:`set_sanitize`.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Any, Dict, MutableMapping, TypeVar

K = TypeVar("K")
V = TypeVar("V")

#: The single lock guarding mutation of every registered cache.  One process-
#: wide lock is deliberate: inserts only happen on cache *misses* (rare once
#: warm) and a single lock keeps lock-ordering trivial.
CACHE_LOCK = threading.RLock()

_REGISTRY: Dict[str, MutableMapping[Any, Any]] = {}


_SANITIZE = os.environ.get("REPRO_SANITIZE") == "1"


def sanitize_enabled() -> bool:
    """True when the race sanitizer is on (``REPRO_SANITIZE=1`` or setter)."""
    return _SANITIZE


def set_sanitize(enabled: bool) -> bool:
    """Toggle the race sanitizer in-process; returns the previous value.

    The environment variable is only read at import time (a per-insert
    environment probe cost ~15% of engine wall clock), so tests that want
    the sanitizer mid-process use this instead of ``monkeypatch.setenv``.
    """
    global _SANITIZE
    previous = _SANITIZE
    _SANITIZE = enabled
    return previous


def assert_synchronized() -> None:
    """In sanitize mode, assert the calling thread holds :data:`CACHE_LOCK`."""
    if _SANITIZE and not CACHE_LOCK._is_owned():  # type: ignore[attr-defined]
        raise AssertionError(
            "unsynchronized cache mutation: CACHE_LOCK not held (REPRO_SANITIZE=1)"
        )


# The guarded containers test the module-global flag inline rather than
# calling assert_synchronized(): a function call per mutation is measurable
# on the interning hot path, a global load is not.

class GuardedDict(dict):
    """A plain-dict cache that detects unsynchronised mutation."""

    def __setitem__(self, key: Any, value: Any) -> None:
        if _SANITIZE:
            assert_synchronized()
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        if _SANITIZE:
            assert_synchronized()
        super().__delitem__(key)


class GuardedWeakKeyDictionary(weakref.WeakKeyDictionary):
    """A weak-key cache that detects unsynchronised mutation."""

    def __setitem__(self, key: Any, value: Any) -> None:
        if _SANITIZE:
            assert_synchronized()
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        if _SANITIZE:
            assert_synchronized()
        super().__delitem__(key)


class GuardedWeakValueDictionary(weakref.WeakValueDictionary):
    """A weak-value cache (intern-table shape) that detects unsynchronised mutation."""

    def __setitem__(self, key: Any, value: Any) -> None:
        if _SANITIZE:
            assert_synchronized()
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        if _SANITIZE:
            assert_synchronized()
        super().__delitem__(key)


def register_cache(name: str, cache: MutableMapping[Any, Any]) -> MutableMapping[Any, Any]:
    """Register a process-global cache under a stable dotted name.

    Returns the cache (so registration can wrap the defining assignment).
    Registering the same name twice replaces the entry — module reloads in
    tests do that legitimately.
    """
    with CACHE_LOCK:
        _REGISTRY[name] = cache
    return cache


def registered_caches() -> Dict[str, MutableMapping[Any, Any]]:
    """A snapshot of the registry (diagnostics, invariant tooling, tests)."""
    with CACHE_LOCK:
        return dict(_REGISTRY)


def cache_insert(cache: MutableMapping[K, V], key: K, value: V) -> V:
    """Publish ``cache[key] = value`` under the lock, keeping a racing winner.

    The caches are memo tables of pure functions, so when two threads race to
    compute the same entry either value is correct — but exactly *one* must
    win and both threads must observe it.  Returns the entry that ended up in
    the cache (the racing winner's, when there was one).
    """
    with CACHE_LOCK:
        existing = cache.get(key)
        if existing is not None:
            return existing
        cache[key] = value
    return value


def clear_registered_caches() -> None:
    """Empty every registered cache (test isolation helper)."""
    with CACHE_LOCK:
        for cache in _REGISTRY.values():
            cache.clear()
