"""Differential property tests for the evaluation layer.

The match-set evaluator (:class:`repro.dsl.semantics.Matcher`), the original
recursive matcher (:class:`repro.dsl.semantics.RecursiveMatcher`), the
compiled-membership evaluator (:class:`repro.dsl.semantics.DfaMatcher` over
:mod:`repro.automata.membership`), and the standalone automata backend
(:mod:`repro.automata`) implement the same Figure-6 semantics four different
ways; random regexes and subjects must never tell them apart.  The three-way
suite at the bottom is hypothesis-driven and compares *end-position masks*,
not just booleans, so a compiled automaton that is right about full matches
but wrong about prefixes still fails.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import compile_regex, membership_automaton
from repro.dsl import ast as r
from repro.dsl.semantics import DfaMatcher, Matcher, RecursiveMatcher

SEED = 20260730
SUBJECT_ALPHABET = "aA1. -b9,"

LEAVES = (
    r.NUM,
    r.LET,
    r.CAP,
    r.LOW,
    r.ANY,
    r.ALPHANUM,
    r.HEX,
    r.VOW,
    r.SPEC,
    r.literal("a"),
    r.literal("."),
    r.literal("-"),
    r.Epsilon(),
    r.EmptySet(),
)


def random_regex(rng: random.Random, depth: int) -> r.Regex:
    """A random DSL regex of height at most ``depth + 1``, covering every operator."""
    if depth <= 0 or rng.random() < 0.3:
        return rng.choice(LEAVES)
    op = rng.randrange(12)
    if op == 0:
        return r.StartsWith(random_regex(rng, depth - 1))
    if op == 1:
        return r.EndsWith(random_regex(rng, depth - 1))
    if op == 2:
        return r.Contains(random_regex(rng, depth - 1))
    if op == 3:
        return r.Not(random_regex(rng, depth - 1))
    if op == 4:
        return r.Optional(random_regex(rng, depth - 1))
    if op == 5:
        return r.KleeneStar(random_regex(rng, depth - 1))
    if op == 6:
        return r.Concat(random_regex(rng, depth - 1), random_regex(rng, depth - 1))
    if op == 7:
        return r.Or(random_regex(rng, depth - 1), random_regex(rng, depth - 1))
    if op == 8:
        return r.And(random_regex(rng, depth - 1), random_regex(rng, depth - 1))
    if op == 9:
        return r.Repeat(random_regex(rng, depth - 1), rng.randint(1, 4))
    if op == 10:
        return r.RepeatAtLeast(random_regex(rng, depth - 1), rng.randint(1, 3))
    low = rng.randint(1, 3)
    return r.RepeatRange(random_regex(rng, depth - 1), low, low + rng.randint(0, 3))


def random_subject(rng: random.Random, max_len: int = 9) -> str:
    return "".join(rng.choice(SUBJECT_ALPHABET) for _ in range(rng.randint(0, max_len)))


class TestMatchSetAgainstRecursive:
    def test_full_match_agreement(self):
        rng = random.Random(SEED)
        for _ in range(400):
            regex = random_regex(rng, 3)
            subject = random_subject(rng)
            expected = RecursiveMatcher(subject).matches(regex)
            assert Matcher(subject).matches(regex) == expected, (regex, subject)

    def test_span_agreement(self):
        rng = random.Random(SEED + 1)
        for _ in range(150):
            regex = random_regex(rng, 3)
            subject = random_subject(rng)
            matcher = Matcher(subject)
            oracle = RecursiveMatcher(subject)
            n = len(subject)
            for _ in range(4):
                i = rng.randint(0, n)
                j = rng.randint(i, n)
                assert matcher.matches_span(regex, i, j) == oracle._eval(regex, i, j), (
                    regex,
                    subject,
                    i,
                    j,
                )

    def test_shared_matcher_agrees_across_many_regexes(self):
        """One Matcher instance (warm caches) must behave like fresh oracles."""
        rng = random.Random(SEED + 2)
        subject = "aA1. -b9,ab"
        matcher = Matcher(subject)
        for _ in range(200):
            regex = random_regex(rng, 3)
            assert matcher.matches(regex) == RecursiveMatcher(subject).matches(regex), (
                regex,
                subject,
            )


class TestMatchSetAgainstAutomata:
    def test_full_match_agreement(self):
        rng = random.Random(SEED + 3)
        checked = 0
        while checked < 60:
            regex = random_regex(rng, 2)
            subject = random_subject(rng, max_len=6)
            compiled = compile_regex(regex, extra_chars=subject)
            assert Matcher(subject).matches(regex) == compiled.accepts(subject), (
                regex,
                subject,
            )
            checked += 1


class TestKnownTrickyCases:
    """Hand-picked shapes where span composition is easy to get wrong."""

    @pytest.mark.parametrize(
        "regex,subject,expected",
        [
            # Empty pieces inside exact repetition.
            (r.Repeat(r.Optional(r.NUM), 3), "12", True),
            (r.Repeat(r.Optional(r.NUM), 3), "1234", False),
            # Star over a regex that accepts the empty string must terminate
            # and behave like star over its non-empty part.
            (r.KleeneStar(r.Optional(r.NUM)), "123", True),
            (r.KleeneStar(r.Epsilon()), "", True),
            (r.KleeneStar(r.Epsilon()), "x", False),
            # Containment operators at span granularity.
            (r.Contains(r.Concat(r.NUM, r.LET)), "ab1c2", True),
            (r.Contains(r.Concat(r.NUM, r.LET)), "abc12", False),
            (r.StartsWith(r.Epsilon()), "anything", True),
            (r.EndsWith(r.EmptySet()), "a", False),
            # Negation interacts with the full-span mask.
            (r.Not(r.Epsilon()), "", False),
            (r.Not(r.Epsilon()), "a", True),
            (r.And(r.Not(r.NUM), r.ANY), "z", True),
            (r.And(r.Not(r.NUM), r.ANY), "5", False),
            # RepeatAtLeast must allow the star part to be empty.
            (r.RepeatAtLeast(r.Concat(r.LET, r.NUM), 2), "a1b2", True),
            (r.RepeatAtLeast(r.Concat(r.LET, r.NUM), 2), "a1", False),
            (r.RepeatRange(r.NUM, 2, 4), "12345", False),
        ],
    )
    def test_case(self, regex, subject, expected):
        assert Matcher(subject).matches(regex) == expected
        assert RecursiveMatcher(subject).matches(regex) == expected
        assert DfaMatcher(subject).matches(regex) == expected
        assert compile_regex(regex, extra_chars=subject).accepts(subject) == expected


# -- three-way hypothesis suite ----------------------------------------------
#
# Every operator of the DSL appears in the strategy, the Repeat family
# carries the small integer counts that κ instantiates to, and the leaves
# include Epsilon (empty string) and EmptySet (empty language), so the
# generated regexes hit exactly the shapes where end-position bookkeeping,
# nullability, and complementation go wrong.

_H_LEAVES = st.sampled_from(
    [
        r.NUM,
        r.LET,
        r.CAP,
        r.literal("a"),
        r.literal("."),
        r.Epsilon(),
        r.EmptySet(),
    ]
)

_H_REGEXES = st.recursive(
    _H_LEAVES,
    lambda children: st.one_of(
        st.builds(r.StartsWith, children),
        st.builds(r.EndsWith, children),
        st.builds(r.Contains, children),
        st.builds(r.Not, children),
        st.builds(r.Optional, children),
        st.builds(r.KleeneStar, children),
        st.builds(r.Concat, children, children),
        st.builds(r.Or, children, children),
        st.builds(r.And, children, children),
        st.builds(r.Repeat, children, st.integers(1, 3)),
        st.builds(r.RepeatAtLeast, children, st.integers(1, 2)),
        st.builds(r.RepeatRange, children, st.integers(1, 2), st.integers(2, 4)),
    ),
    max_leaves=6,
)

#: Subjects mix matching and non-matching characters; min_size=0 keeps the
#: empty string in play on every run.
_H_SUBJECTS = st.text(alphabet="aA1.b ", max_size=6)


class TestThreeWayDifferential:
    @given(_H_REGEXES, _H_SUBJECTS)
    @settings(max_examples=200, deadline=None)
    def test_recursive_matchset_dfa_agree(self, regex, subject):
        expected = RecursiveMatcher(subject).matches(regex)
        assert Matcher(subject).matches(regex) == expected, (regex, subject)
        assert DfaMatcher(subject).matches(regex) == expected, (regex, subject)

    @given(_H_REGEXES, _H_SUBJECTS)
    @settings(max_examples=150, deadline=None)
    def test_end_masks_equal_match_sets(self, regex, subject):
        # The compiled automaton must agree with the match-set evaluator on
        # *every* (start, end) span, not just the full-string verdict.
        automaton = membership_automaton(regex)
        if automaton is None:  # uncompilable shapes fall back, nothing to pin
            return
        assert automaton.end_masks(subject) == Matcher(subject).match_sets(regex), (
            regex,
            subject,
        )

    @given(
        st.integers(1, 4),
        st.sampled_from([r.NUM, r.Optional(r.NUM), r.Concat(r.LET, r.NUM)]),
        _H_SUBJECTS,
    )
    @settings(max_examples=100, deadline=None)
    def test_kappa_bearing_repeats_agree(self, count, body, subject):
        # The Repeat family is where symbolic integers (κ) land once
        # InferConstants picks a model; the compiled path must agree with
        # both oracles for every concrete instantiation.
        for regex in (
            r.Repeat(body, count),
            r.RepeatAtLeast(body, count),
            r.RepeatRange(body, count, count + 2),
        ):
            expected = RecursiveMatcher(subject).matches(regex)
            assert Matcher(subject).matches(regex) == expected, (regex, subject)
            assert DfaMatcher(subject).matches(regex) == expected, (regex, subject)

    @pytest.mark.parametrize(
        "regex,subject,expected",
        [
            # Empty string versus empty language, in every evaluator.
            (r.Epsilon(), "", True),
            (r.Epsilon(), "a", False),
            (r.EmptySet(), "", False),
            (r.EmptySet(), "a", False),
            (r.KleeneStar(r.EmptySet()), "", True),
            (r.KleeneStar(r.EmptySet()), "a", False),
            (r.Optional(r.EmptySet()), "", True),
            (r.Not(r.EmptySet()), "", True),
            (r.Concat(r.Epsilon(), r.Epsilon()), "", True),
            (r.Repeat(r.Epsilon(), 3), "", True),
            (r.And(r.Epsilon(), r.KleeneStar(r.NUM)), "", True),
            (r.Or(r.EmptySet(), r.Epsilon()), "", True),
        ],
    )
    def test_empty_edge_cases(self, regex, subject, expected):
        assert RecursiveMatcher(subject).matches(regex) == expected
        assert Matcher(subject).matches(regex) == expected
        assert DfaMatcher(subject).matches(regex) == expected
