"""Thread-safety regression tests for the intern tables and shared caches.

The worker pool runs one full synthesis session per worker *thread*, so every
process-wide cache — intern tables, the DSL printer cache, the approximation
and encoding caches, the analysis fact caches — is mutated concurrently.
These tests hammer that path under ``REPRO_SANITIZE=1`` (which turns any
mutation outside :data:`repro.caches.CACHE_LOCK` into an immediate
``AssertionError``) and then verify the intern tables are still consistent:
every live entry maps its field tuple to the one canonical object.
"""

import threading

import pytest

from repro import caches
from repro.api import (
    NlSketchProvider,
    Problem,
    Session,
    make_scheduler,
)
from repro.dsl.ast import NODE_CLASSES, CharClass, Concat, KleeneStar, Repeat
from repro.dsl.charclass import CharClassKind
from repro.dsl.intern import check_intern_tables
from repro.dsl.printer import to_dsl_string
from repro.service.pool import Job, WorkerPool


@pytest.fixture
def sanitize():
    # The env var is only read at import time (see caches.set_sanitize), so
    # in-process tests toggle the flag directly.
    previous = caches.set_sanitize(True)
    yield
    caches.set_sanitize(previous)


#: Small, distinct problems so each worker thread builds its own regex trees.
_HAMMER_PROBLEMS = [
    Problem("3 digits", positive=["123", "456"], negative=["12", "abcd"], budget=1.5),
    Problem("2 capital letters", positive=["AB", "XY"], negative=["A", "ab"], budget=1.5),
    Problem("digits then a dash", positive=["12-", "3-"], negative=["12"], budget=1.5),
    Problem("one lowercase letter", positive=["a", "z"], negative=["1", "ab"], budget=1.5),
    Problem("2 digits", positive=["12", "99"], negative=["1", "123"], budget=1.5),
    Problem("letters", positive=["ab", "xyz"], negative=["1", "a1"], budget=1.5),
    Problem("a digit then a letter", positive=["1a", "9z"], negative=["a1"], budget=1.5),
    Problem("capitals then digits", positive=["AB12", "X9"], negative=["12AB"], budget=1.5),
]


def _make_session() -> Session:
    return Session(
        provider=NlSketchProvider(num_sketches=6),
        scheduler=make_scheduler("interleaved"),
    )


class TestPoolHammer:
    def test_eight_worker_pool_under_sanitizer(self, sanitize):
        # Eight worker threads solving eight distinct problems concurrently:
        # every intern table and module-level cache is hit from all of them
        # at once.  The sanitizer turns an unlocked cache mutation into an
        # AssertionError inside the worker, which surfaces as a failed job.
        pool = WorkerPool(_make_session, workers=8, queue_size=16)
        jobs = [Job(problem) for problem in _HAMMER_PROBLEMS]
        try:
            for job in jobs:
                pool.submit(job)
            for job in jobs:
                assert job.wait(timeout=60.0), "hammer job did not finish"
        finally:
            pool.close()
        failures = [job.error for job in jobs if job.status == "failed"]
        assert not failures, f"worker jobs failed under the sanitizer: {failures}"
        # The races this guards against *lose* inserts: two threads intern the
        # same key and keep different objects.  The consistency check re-runs
        # every constructor and demands the identical object back.
        assert check_intern_tables(*NODE_CLASSES) > 0


class TestInternRaces:
    def test_concurrent_interning_yields_one_object(self):
        # All threads construct the same (deep) tree through a barrier so the
        # intern-table misses happen as close to simultaneously as possible.
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def build(slot: int) -> None:
            try:
                barrier.wait(timeout=10.0)
                node = Concat(
                    Repeat(CharClass(CharClassKind.NUM), 4 + slot % 2),
                    KleeneStar(CharClass(CharClassKind.LET)),
                )
                # Touch the printer cache from every thread too.
                to_dsl_string(node)
                results[slot] = node
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=build, args=(slot,)) for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert all(result is not None for result in results)
        # slot%2 splits the threads across two distinct trees; within each
        # group every thread must hold the *same* canonical object.
        evens = {id(results[slot]) for slot in range(0, n_threads, 2)}
        odds = {id(results[slot]) for slot in range(1, n_threads, 2)}
        assert len(evens) == 1 and len(odds) == 1
        assert check_intern_tables(*NODE_CLASSES) > 0


class TestSanitizer:
    def test_unlocked_mutation_raises(self, sanitize):
        guarded = caches.GuardedDict()
        with pytest.raises(AssertionError):
            guarded["key"] = "value"

    def test_locked_mutation_passes(self, sanitize):
        guarded = caches.GuardedDict()
        assert caches.cache_insert(guarded, "key", "value") == "value"
        # A racing second insert keeps the first (winning) entry.
        assert caches.cache_insert(guarded, "key", "other") == "value"

    def test_unlocked_mutation_passes_when_off(self):
        previous = caches.set_sanitize(False)
        try:
            guarded = caches.GuardedDict()
            guarded["key"] = "value"  # no lock, no complaint
            assert guarded["key"] == "value"
        finally:
            caches.set_sanitize(previous)

    def test_every_registered_cache_is_guarded(self):
        # Importing the package registers every shared cache; the registry is
        # the whitelist tools/check_invariants.py enforces, so everything in
        # it must actually be a guarded container.
        import repro.analysis  # noqa: F401 - ensure analysis caches register
        import repro.synthesis.approximate  # noqa: F401
        import repro.synthesis.encode  # noqa: F401

        registry = caches.registered_caches()
        assert len(registry) >= 20  # intern tables + module caches
        guarded_types = (
            caches.GuardedDict,
            caches.GuardedWeakKeyDictionary,
            caches.GuardedWeakValueDictionary,
        )
        for name, cache in registry.items():
            assert isinstance(cache, guarded_types), name
