"""Tests for the experiment harness (scaled-down runs of every figure)."""

import pytest

from repro.datasets import stackoverflow_dataset
from repro.experiments import (
    ToolName,
    dataset_statistics,
    dsl_coverage,
    figure16,
    figure17,
    figure18,
    format_table,
    user_study,
)
from repro.experiments.ablation import statistics_table
from repro.experiments.metrics import average_time_per_solved, solved_by_iteration
from repro.experiments.runner import BenchmarkRun
from repro.multimodal.interaction import InteractiveSession, IterationOutcome
from repro.synthesis import SynthesisConfig


def _run(tool, benchmark_id, solved_at, elapsed=0.5):
    outcomes = []
    for i in range((solved_at if solved_at is not None else 4) + 1):
        outcomes.append(
            IterationOutcome(
                iteration=i,
                solved=(solved_at is not None and i == solved_at),
                elapsed=elapsed,
                num_positive=2,
                num_negative=2,
                returned=1,
            )
        )
    return BenchmarkRun(tool, benchmark_id, InteractiveSession(benchmark_id, outcomes))


class TestMetrics:
    def test_solved_by_iteration_cumulative(self):
        runs = [
            _run(ToolName.REGEL, "a", 0),
            _run(ToolName.REGEL, "b", 2),
            _run(ToolName.REGEL, "c", None),
        ]
        assert solved_by_iteration(runs) == [1, 1, 2, 2, 2]

    def test_average_time_per_solved(self):
        runs = [_run(ToolName.REGEL, "a", 0, elapsed=1.0), _run(ToolName.REGEL, "b", 1, elapsed=3.0)]
        averages = average_time_per_solved(runs)
        assert averages[0] == pytest.approx(1.0)
        assert averages[1] == pytest.approx(2.0)

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5]], title="T")
        assert "T" in text and "2.50" in text


class TestStructuralAnalyses:
    def test_dsl_coverage_matches_paper_shape(self):
        coverage = dsl_coverage()
        assert coverage.total == 62
        # Footnote 9: FlashFill covers almost nothing, Fidex a bit more, and
        # both cover far less than half of the corpus.
        assert coverage.flashfill <= coverage.fidex
        assert coverage.fidex < coverage.total / 2
        assert "FlashFill" in coverage.table()

    def test_dataset_statistics_shape(self):
        stats = dataset_statistics(deepregex_count=20)
        assert stats["stackoverflow"].avg_words > stats["deepregex"].avg_words
        assert stats["stackoverflow"].avg_regex_size > stats["deepregex"].avg_regex_size
        assert "Dataset statistics" in statistics_table(stats)


@pytest.fixture(scope="module")
def small_benchmarks():
    return stackoverflow_dataset()[:4]


class TestFigure16And17:
    @pytest.fixture(scope="class")
    def result(self, small_benchmarks):
        return figure16(
            dataset="stackoverflow",
            benchmarks=small_benchmarks,
            time_budget=2.0,
            max_iterations=1,
            num_sketches=8,
            config=SynthesisConfig(timeout=2.0, hole_depth=2),
            train_parser=False,
        )

    def test_all_tools_present(self, result):
        assert set(result.series) == {"regel", "regel-pbe", "deepregex"}
        assert result.total == 4

    def test_counts_monotone_and_bounded(self, result):
        for counts in result.series.values():
            assert all(0 <= c <= result.total for c in counts)
            assert counts == sorted(counts)

    def test_multimodal_beats_or_ties_baselines(self, result):
        final = {tool: counts[-1] for tool, counts in result.series.items()}
        assert final["regel"] >= final["regel-pbe"]
        assert final["regel"] >= final["deepregex"]

    def test_table_rendering(self, result):
        assert "Figure 16" in result.table(max_iterations=1)

    def test_figure17_reuses_runs(self, result):
        fig17 = figure17(from_figure16=result, max_iterations=1)
        assert "regel" in fig17.series
        assert "deepregex" not in fig17.series
        assert "Figure 17" in fig17.table(max_iterations=1)


class TestFigure18:
    def test_ablation_shape(self, small_benchmarks):
        result = figure18(
            benchmarks=small_benchmarks[:2],
            sketches_per_benchmark=4,
            per_sketch_timeout=0.5,
        )
        counts = result.solved_counts()
        assert set(counts) == {"regel-enum", "regel-approx", "regel"}
        assert result.total_sketches > 0
        for variant, times in result.solve_times.items():
            assert len(times) <= result.total_sketches
        # The full engine should solve at least as many sketches as the
        # enumeration baseline on this (small) pool.
        assert counts["regel"] >= counts["regel-enum"]
        assert "Figure 18" in result.table()
        curve = result.cumulative_curve("regel")
        assert all(b >= a for (_, a), (_, b) in zip(curve, curve[1:]))


class TestUserStudy:
    def test_simulated_study_shape(self, small_benchmarks):
        result = user_study(
            participants=8,
            tasks_per_participant=4,
            benchmarks=small_benchmarks,
            time_budget=1.5,
            config=SynthesisConfig(timeout=1.5, hole_depth=2),
        )
        assert 0.0 <= result.without_tool_rate <= 1.0
        assert 0.0 <= result.with_tool_rate <= 1.0
        assert result.with_tool_rate >= result.without_tool_rate
        assert "t-test" in result.table()

    def test_without_tool_runs(self):
        result = user_study(
            participants=6, tasks_per_participant=4, use_tool_runs=False,
            benchmarks=stackoverflow_dataset(with_examples=False)[:6],
        )
        assert len(result.per_participant_with) == 6
