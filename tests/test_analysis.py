"""Soundness and behaviour tests for :mod:`repro.analysis`.

The contract under test is one-directional: the analyzer may answer "maybe",
it must never produce a wrong "no".  Concretely:

* over side — a string the evaluator/automata accept must satisfy
  ``facts.may_match`` (a False is a *proof* of rejection);
* under side — ``facts.must_match(s)`` implies the evaluator accepts ``s``;
* mirror property — with ``kmax=None``, a partial the facts reject is also
  rejected by the Figure-11 approximation (``infeasible``), so the static
  pre-filter can only ever skip work, never change the search;
* κ mode — with ``kmax=K``, facts must bracket every concrete substitution
  of the symbolic integers in ``[1, K]``.

Three oracles: the match-set evaluator, the automata backend's language
enumeration, and hypothesis-generated regex/subject pairs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    TOP_FACTS,
    facts_of_partial,
    facts_of_regex,
    facts_of_sketch,
    partial_prune_reason,
    static_infeasible,
)
from repro.analysis.facts import (
    EMPTY_FACTS,
    EPSILON_FACTS,
    char_class_facts,
    concat_facts,
    not_facts,
    optional_facts,
    or_facts,
    repeat_facts,
    star_facts,
)
from repro.automata import enumerate_language, language_nonempty, sample_positive
from repro.dsl import ast as r
from repro.dsl.semantics import Matcher
from repro.sketch import parse_sketch
from repro.synthesis import (
    Examples,
    SynthesisConfig,
    expand,
    infeasible,
    initial_partial,
    open_nodes,
)
from repro.synthesis.expand import SymIntFactory
from repro.synthesis.partial import PLeaf, POp, SymInt

from test_eval_equivalence import LEAVES, random_regex, random_subject

SEED = 20260808


# ---------------------------------------------------------------------------
# Transfer-function unit tests
# ---------------------------------------------------------------------------

class TestFacts:
    def test_top_accepts_everything(self):
        for subject in ("", "abc", "\x00é"):
            assert TOP_FACTS.may_match(subject)
            assert not TOP_FACTS.must_match(subject)

    def test_char_class(self):
        facts = char_class_facts(frozenset("0123456789"))
        assert facts.may_match("7")
        assert facts.reject_reason("") == "too-short"
        assert facts.reject_reason("77") == "too-long"
        assert facts.reject_reason("a") in ("first-char", "last-char", "foreign-char")

    def test_concat_lengths(self):
        digit = char_class_facts(frozenset("01"))
        two = concat_facts(digit, digit)
        assert two.min_len == 2 and two.max_len == 2
        assert two.reject_reason("0") == "too-short"

    def test_concat_required_groups(self):
        digits = char_class_facts(frozenset("01"))
        dash = char_class_facts(frozenset("-"))
        facts = concat_facts(digits, dash)
        # "00" fails several facts at once (last-char, foreign-char, the
        # required dash group) — which one reports first is unspecified.
        assert facts.reject_reason("00") is not None
        assert facts.may_match("0-")
        # A case only the required-group conjunction can catch: pad with an
        # optional tail so length/first/last/allowed all pass.
        padded = concat_facts(facts, star_facts(char_class_facts(frozenset("01-"))))
        assert padded.reject_reason("0-0") is None
        assert padded.may_match("0-11")

    def test_or_required_is_pairwise_union(self):
        a = char_class_facts(frozenset("a"))
        b = char_class_facts(frozenset("b"))
        facts = or_facts(a, b)
        # Either branch may match, so only "a or b present" is required.
        assert facts.may_match("a") and facts.may_match("b")
        assert facts.reject_reason("c") is not None

    def test_optional_drops_required(self):
        facts = optional_facts(char_class_facts(frozenset("a")))
        assert facts.may_match("")
        assert facts.must_match("")

    def test_star_keeps_charset(self):
        facts = star_facts(char_class_facts(frozenset("ab")))
        assert facts.may_match("")
        assert facts.may_match("abab")
        assert facts.reject_reason("abc") is not None  # 'c' is unreachable
        assert facts.reject_reason("acb") == "foreign-char"

    def test_not_swaps_sides(self):
        assert not_facts(EMPTY_FACTS).universal
        # Not(ε) rejects exactly "" — min_len 1 on the over side.
        facts = not_facts(EPSILON_FACTS)
        assert facts.reject_reason("") == "too-short"

    def test_repeat_scales_interval(self):
        digit = char_class_facts(frozenset("0"))
        facts = repeat_facts(digit, 2, 4)
        assert facts.min_len == 2 and facts.max_len == 4

    def test_empty_facts_reject_all(self):
        assert EMPTY_FACTS.reject_reason("") == "empty-language"
        assert EMPTY_FACTS.reject_reason("x") == "empty-language"


# ---------------------------------------------------------------------------
# Differential: concrete regexes vs the automata backend
# ---------------------------------------------------------------------------

class TestRegexFactsDifferential:
    def test_language_members_satisfy_over_side(self):
        rng = random.Random(SEED)
        for _ in range(300):
            regex = random_regex(rng, 3)
            facts = facts_of_regex(regex)
            for accepted in enumerate_language(regex, max_length=4, limit=40):
                assert facts.may_match(accepted), (regex, accepted, facts)
                assert facts.min_len <= len(accepted)
                assert facts.max_len is None or len(accepted) <= facts.max_len

    def test_empty_fact_implies_empty_language(self):
        rng = random.Random(SEED + 1)
        checked = 0
        for _ in range(400):
            regex = random_regex(rng, 3)
            if facts_of_regex(regex).empty:
                checked += 1
                assert not language_nonempty(regex), regex
        assert checked > 0  # the generator does produce provably-empty trees

    def test_under_side_members_are_accepted(self):
        rng = random.Random(SEED + 2)
        for _ in range(300):
            regex = random_regex(rng, 3)
            facts = facts_of_regex(regex)
            subject = random_subject(rng)
            if facts.must_match(subject):
                assert Matcher(subject).matches(regex), (regex, subject)

    def test_sampled_positives_satisfy_facts(self):
        rng = random.Random(SEED + 3)
        for _ in range(80):
            regex = random_regex(rng, 3)
            facts = facts_of_regex(regex)
            for accepted in sample_positive(regex, 5, rng=rng, max_length=10):
                assert facts.may_match(accepted), (regex, accepted, facts)


# ---------------------------------------------------------------------------
# Hypothesis: regex strategy + arbitrary subjects
# ---------------------------------------------------------------------------

_subjects = st.text(alphabet="aA1. -b9,é\x00", max_size=7)

_regexes = st.recursive(
    st.sampled_from(LEAVES),
    lambda children: st.one_of(
        children.map(r.StartsWith),
        children.map(r.EndsWith),
        children.map(r.Contains),
        children.map(r.Not),
        children.map(r.Optional),
        children.map(r.KleeneStar),
        st.tuples(children, children).map(lambda pair: r.Concat(*pair)),
        st.tuples(children, children).map(lambda pair: r.Or(*pair)),
        st.tuples(children, children).map(lambda pair: r.And(*pair)),
        st.tuples(children, st.integers(1, 4)).map(lambda pair: r.Repeat(*pair)),
        st.tuples(children, st.integers(1, 3)).map(lambda pair: r.RepeatAtLeast(*pair)),
        st.tuples(children, st.integers(1, 3), st.integers(0, 3)).map(
            lambda triple: r.RepeatRange(triple[0], triple[1], triple[1] + triple[2])
        ),
    ),
    max_leaves=12,
)


class TestHypothesisSoundness:
    @settings(max_examples=200, deadline=None)
    @given(regex=_regexes, subject=_subjects)
    def test_no_false_rejection(self, regex, subject):
        # The core soundness property: a rejection by the facts is a proof,
        # so the evaluator must agree.  (May-match gives no information.)
        facts = facts_of_regex(regex)
        if not facts.may_match(subject):
            assert not Matcher(subject).matches(regex), (regex, subject, facts)

    @settings(max_examples=200, deadline=None)
    @given(regex=_regexes, subject=_subjects)
    def test_no_false_acceptance_on_under_side(self, regex, subject):
        facts = facts_of_regex(regex)
        if facts.must_match(subject):
            assert Matcher(subject).matches(regex), (regex, subject, facts)


# ---------------------------------------------------------------------------
# Sketches and partial regexes
# ---------------------------------------------------------------------------

def _successors(sketch_text: str, config: SynthesisConfig, rounds: int = 2):
    """A couple of BFS levels of engine expansions for a sketch."""
    symints = SymIntFactory()
    frontier = [initial_partial(parse_sketch(sketch_text))]
    seen = []
    for _ in range(rounds):
        next_frontier = []
        for partial in frontier:
            nodes = open_nodes(partial)
            if not nodes:
                continue
            for successor in expand(partial, nodes[0], config, symints):
                seen.append(successor)
                next_frontier.append(successor)
        frontier = next_frontier[:40]
    return seen


class TestPartialFacts:
    CONFIG = SynthesisConfig(hole_depth=2, timeout=5.0)

    def test_concrete_partial_matches_regex_facts(self):
        regex = r.Concat(r.NUM, r.KleeneStar(r.LET))
        assert facts_of_partial(PLeaf(regex)) == facts_of_regex(regex)

    def test_static_pruned_implies_approximate_pruned(self):
        # The mirror property that makes the engine pre-filter a pure
        # optimisation: with kmax=None every fact abstracts the Figure-11
        # over/under pair, so a facts rejection implies an automata
        # rejection.  (The engine only uses kmax=max_kappa, which is
        # tighter, when symbolic integers are enabled — tested separately.)
        examples = Examples(["123456789.12", "1.2"], ["12345", "x"])
        config = SynthesisConfig(
            hole_depth=2, timeout=5.0, use_symbolic_ints=False
        )
        sketch = "Concat(Hole(<num>),Hole(Optional(Concat(<.>,<num>))))"
        checked = 0
        for successor in _successors(sketch, config, rounds=3):
            if static_infeasible(successor, examples, config):
                checked += 1
                assert infeasible(successor, examples, config), successor
        # Concrete partials are where the facts bite hardest; sweep random
        # regexes against random example sets for volume.
        rng = random.Random(SEED + 10)
        for _ in range(300):
            partial = PLeaf(random_regex(rng, 3))
            random_examples = Examples(
                [random_subject(rng) for _ in range(2)],
                [random_subject(rng) for _ in range(2)],
            )
            if static_infeasible(partial, random_examples, config):
                checked += 1
                assert infeasible(partial, random_examples, config), (
                    partial,
                    random_examples,
                )
        assert checked > 20  # the property was actually exercised

    def test_kappa_substitution_soundness(self):
        # kmax mode: facts must bracket every substitution κ ∈ [1, K].
        kmax = 4
        partial = POp(
            "Concat",
            (
                POp("RepeatRange", (PLeaf(r.NUM),), (1, SymInt("k1"))),
                PLeaf(r.literal("-")),
            ),
        )
        facts = facts_of_partial(partial, hole_depth=2, kmax=kmax)
        for kappa in range(1, kmax + 1):
            concrete = r.Concat(r.RepeatRange(r.NUM, 1, kappa), r.literal("-"))
            for accepted in enumerate_language(concrete, max_length=5, limit=30):
                assert facts.may_match(accepted), (kappa, accepted, facts)

    def test_symbolic_without_kmax_is_unbounded(self):
        partial = POp("Repeat", (PLeaf(r.NUM),), (SymInt("k1"),))
        facts = facts_of_partial(partial, hole_depth=2, kmax=None)
        assert facts.max_len is None
        assert facts.min_len <= 1

    def test_sketch_facts_bracket_completions(self):
        sketch = parse_sketch("Concat(Hole(<cap>),Hole(<num>))")
        # At depth 1 a hole can only be filled by a component (see
        # _hole_expansions), so the sole completion is Concat(<cap>,<num>).
        facts = facts_of_sketch(sketch, hole_depth=1)
        assert facts.may_match("A1")
        assert facts.reject_reason("AB12") == "too-long"
        assert facts.reject_reason("ab") is not None  # lowercase impossible
        # At depth 3 the same holes admit Repeat/Star towers: the length
        # interval must widen back out.
        deep = facts_of_sketch(sketch, hole_depth=3)
        assert deep.may_match("AB12")


# ---------------------------------------------------------------------------
# Engine integration: zero false "infeasible" verdicts
# ---------------------------------------------------------------------------

class TestEnginePruneSoundness:
    def test_prune_reason_is_none_for_consistent_partial(self):
        examples = Examples(["12", "99"], ["1", "abc"])
        config = SynthesisConfig(hole_depth=2, timeout=5.0)
        partial = PLeaf(r.Repeat(r.NUM, 2))
        assert partial_prune_reason(partial, examples, config) is None

    def test_disabled_by_config_flags(self):
        examples = Examples(["ab"], [])
        partial = PLeaf(r.Repeat(r.NUM, 2))  # provably rejects "ab"
        on = SynthesisConfig(hole_depth=2, timeout=5.0)
        assert partial_prune_reason(partial, examples, on) is not None
        for off in (
            SynthesisConfig(hole_depth=2, timeout=5.0, use_static_analysis=False),
            SynthesisConfig(hole_depth=2, timeout=5.0, use_approximation=False),
        ):
            assert partial_prune_reason(partial, examples, off) is None

    def test_same_solution_with_and_without_analysis(self):
        # The pre-filter must not change what the engine finds — only how
        # much work the match-set evaluator does on the way.
        from repro.synthesis import Synthesizer

        sketch = parse_sketch("Concat(Hole(<cap>),Hole(<num>))")
        examples = Examples(["AB12", "XY99"], ["AB1", "ab12"])
        with_analysis = Synthesizer(
            SynthesisConfig(hole_depth=2, timeout=10.0)
        ).synthesize(sketch, examples)
        without = Synthesizer(
            SynthesisConfig(hole_depth=2, timeout=10.0, use_static_analysis=False)
        ).synthesize(sketch, examples)
        assert with_analysis.solved and without.solved
        assert with_analysis.regexes == without.regexes
        assert with_analysis.static_prune_misses > 0

    def test_counters_flow_into_result(self):
        from repro.synthesis import Synthesizer

        sketch = parse_sketch("Concat(Hole(<num>),Hole(<.>))")
        examples = Examples(["1.", "2."], ["1", "."])
        result = Synthesizer(
            SynthesisConfig(hole_depth=2, timeout=10.0)
        ).synthesize(sketch, examples)
        assert result.static_prune_hits + result.static_prune_misses > 0
