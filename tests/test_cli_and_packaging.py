"""Smoke tests for packaging metadata, public API surface, and documentation files."""

import json
import pathlib

import repro
from repro.cli import main


ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__

    def test_top_level_exports(self):
        from repro import Regel, SemanticParser, SynthesisConfig, synthesize

        assert callable(synthesize)
        assert Regel and SemanticParser and SynthesisConfig

    def test_subpackages_importable(self):
        import repro.automata
        import repro.baselines
        import repro.datasets
        import repro.dsl
        import repro.experiments
        import repro.multimodal
        import repro.nlp
        import repro.service
        import repro.sketch
        import repro.solver
        import repro.synthesis

        assert repro.dsl.NUM is not None

    def test_all_lists_resolve(self):
        import repro.dsl as dsl
        import repro.synthesis as synthesis

        for module in (dsl, synthesis):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"


class TestDocumentation:
    def test_required_documents_exist(self):
        for name in (
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "pyproject.toml",
            "docs/api.md",
            "docs/architecture.md",
            "docs/deployment.md",
        ):
            assert (ROOT / name).is_file(), name

    def test_design_doc_covers_every_figure(self):
        text = (ROOT / "DESIGN.md").read_text()
        for artefact in ("Fig. 16", "Fig. 17", "Fig. 18", "user study"):
            assert artefact in text

    def test_examples_present(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert any(path.name == "quickstart.py" for path in examples)

    def test_benchmarks_cover_every_figure(self):
        names = {path.name for path in (ROOT / "benchmarks").glob("bench_*.py")}
        assert {
            "bench_figure16.py",
            "bench_figure17.py",
            "bench_figure18.py",
            "bench_user_study.py",
            "bench_dsl_coverage.py",
            "bench_dataset_stats.py",
        } <= names

    def test_cli_entry_point_declared(self):
        text = (ROOT / "pyproject.toml").read_text()
        assert 'regel = "repro.cli:main"' in text


class TestLintCli:
    def test_clean_problem_exits_zero(self, capsys):
        code = main(["lint", "3 digits", "--pos", "123", "--neg", "12"])
        assert code == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_conflicting_examples_exit_nonzero(self, capsys):
        code = main(["lint", "broken", "--pos", "abc", "--neg", "abc"])
        captured = capsys.readouterr()
        assert code == 1
        assert "conflicting-examples" in captured.out
        assert "statically unsatisfiable" in captured.err

    def test_json_output_is_machine_readable(self, capsys):
        code = main(
            ["lint", "broken", "--pos", "abc", "--neg", "abc", "--json"]
        )
        assert code == 1
        body = json.loads(capsys.readouterr().out)
        assert body["satisfiable"] is False
        assert any(
            diag["code"] == "conflicting-examples" for diag in body["diagnostics"]
        )

    def test_sketch_diagnostics(self, capsys):
        code = main(
            [
                "lint",
                "letters",
                "--pos", "123",
                "--neg", "abc",
                "--sketch", "KleeneStar(<let>)",
            ]
        )
        # Sketches are hints, so a conflict is a warning, not an error.
        assert code == 0
        captured = capsys.readouterr()
        assert "warning: sketch-rejects-positive" in captured.out
        assert "0 error(s)" in captured.err
