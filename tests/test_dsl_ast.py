"""Unit tests for the regex DSL AST (construction, equality, traversal)."""

import pytest

from repro.dsl import (
    ANY,
    And,
    CharClass,
    Concat,
    Contains,
    EmptySet,
    Epsilon,
    KleeneStar,
    NUM,
    Not,
    Optional,
    Or,
    Repeat,
    RepeatAtLeast,
    RepeatRange,
    StartsWith,
    concat_all,
    literal,
    or_all,
)
from repro.dsl.ast import string_literal


class TestConstruction:
    def test_charclass_literal(self):
        dot = literal(".")
        assert isinstance(dot, CharClass)
        assert dot.kind == "."

    def test_charclass_literal_rejects_multichar(self):
        with pytest.raises(ValueError):
            literal("ab")

    def test_repeat_requires_positive_count(self):
        with pytest.raises(ValueError):
            Repeat(NUM, 0)
        with pytest.raises(ValueError):
            RepeatAtLeast(NUM, -1)

    def test_repeat_rejects_bool_count(self):
        with pytest.raises(ValueError):
            Repeat(NUM, True)

    def test_repeat_range_ordering(self):
        with pytest.raises(ValueError):
            RepeatRange(NUM, 3, 1)
        r = RepeatRange(NUM, 1, 3)
        assert (r.low, r.high) == (1, 3)


class TestEqualityAndHashing:
    def test_structural_equality(self):
        a = Concat(NUM, Optional(literal(".")))
        b = Concat(NUM, Optional(literal(".")))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_across_operators(self):
        assert Or(NUM, ANY) != And(NUM, ANY)
        assert Repeat(NUM, 2) != Repeat(NUM, 3)

    def test_usable_in_sets(self):
        regexes = {Repeat(NUM, 2), Repeat(NUM, 2), Repeat(NUM, 3)}
        assert len(regexes) == 2


class TestTraversal:
    def test_children(self):
        node = Concat(NUM, Or(ANY, Epsilon()))
        assert node.children() == (NUM, Or(ANY, Epsilon()))
        assert Epsilon().children() == ()

    def test_walk_preorder(self):
        node = Concat(NUM, Not(ANY))
        walked = list(node.walk())
        assert walked[0] is node
        assert NUM in walked
        assert Not(ANY) in walked
        assert len(walked) == 4

    def test_walk_counts_repeated_structure(self):
        node = Or(NUM, NUM)
        assert len(list(node.walk())) == 3


class TestHelpers:
    def test_concat_all_empty(self):
        assert concat_all([]) == Epsilon()

    def test_concat_all_single(self):
        assert concat_all([NUM]) == NUM

    def test_concat_all_many_right_associated(self):
        result = concat_all([NUM, ANY, NUM])
        assert result == Concat(NUM, Concat(ANY, NUM))

    def test_or_all_empty(self):
        assert or_all([]) == EmptySet()

    def test_or_all_many(self):
        assert or_all([NUM, ANY]) == Or(NUM, ANY)

    def test_string_literal(self):
        regex = string_literal("ab")
        assert regex == Concat(literal("a"), literal("b"))
        assert string_literal("") == Epsilon()

    def test_containment_constructors(self):
        assert StartsWith(NUM).children() == (NUM,)
        assert Contains(KleeneStar(NUM)).children() == (KleeneStar(NUM),)
