"""Tests for the pipeline API: specs, providers, schedulers, sessions, shims."""

import json
import time

import pytest

from repro.api import (
    CancelToken,
    InterleavedScheduler,
    NlSketchProvider,
    PbeOnlyProvider,
    Problem,
    ProcessPoolScheduler,
    RunReport,
    SequentialScheduler,
    Session,
    SketchReport,
    Solution,
    StaticSketchProvider,
    make_scheduler,
)
from repro.dsl import matches
from repro.multimodal.regel import Regel, RegelResult, pbe_only_sketches
from repro.sketch import Hole, parse_sketch
from repro.synthesis import EngineVariant, SynthesisConfig


@pytest.fixture(scope="module")
def fast_config():
    return SynthesisConfig(timeout=6.0, hole_depth=2)


THREE_DIGITS = Problem(
    description="3 digits",
    positive=["123", "456"],
    negative=["12", "1234"],
    k=1,
    budget=8.0,
)


class TestProblemSpec:
    def test_json_round_trip(self):
        problem = Problem(
            description="3 digits",
            positive=["123"],
            negative=["12"],
            k=2,
            budget=5.0,
            variant=EngineVariant.APPROX,
        )
        restored = Problem.from_json(problem.to_json())
        assert restored == problem
        assert restored.variant is EngineVariant.APPROX

    def test_sequences_are_frozen_tuples(self):
        problem = Problem("x", positive=["a"], negative=["b"])
        assert problem.positive == ("a",)
        assert problem.negative == ("b",)
        with pytest.raises(AttributeError):
            problem.k = 5

    def test_variant_accepts_string(self):
        assert Problem("x", variant="regel-enum").variant is EngineVariant.ENUM

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            Problem("x", k=0)
        with pytest.raises(ValueError):
            Problem("x", budget=0)


class TestRunReportSerialisation:
    def test_report_json_round_trip(self):
        report = RunReport(
            problem=THREE_DIGITS,
            scheduler="interleaved",
            solutions=[Solution(regex="Repeat(<num>,3)", size=2, sketch_index=0, elapsed=0.1)],
            sketches=[
                SketchReport(
                    index=0,
                    sketch="Repeat(<num>,3)",
                    expansions=2,
                    pruned=0,
                    elapsed=0.05,
                    solved=True,
                    timed_out=False,
                )
            ],
            elapsed=0.2,
        )
        restored = RunReport.from_json(report.to_json())
        assert restored.problem == report.problem
        assert restored.solutions == report.solutions
        assert restored.sketches == report.sketches
        assert restored.solved and restored.best.regex == "Repeat(<num>,3)"

    def test_solution_ast_round_trip(self):
        solution = Solution(regex="Repeat(<num>,3)", size=2, sketch_index=0, elapsed=0.0)
        assert matches(solution.ast(), "987")
        assert solution.python_regex() is not None

    def test_solved_report_from_real_run(self, fast_config):
        session = Session(config=fast_config)
        report = session.solve(THREE_DIGITS)
        assert report.solved
        payload = json.loads(report.to_json())
        assert payload["solved"] is True
        assert payload["solutions"][0]["regex"] == report.best.regex


class TestProviders:
    def test_pbe_only_matches_legacy_sketch_list(self):
        assert PbeOnlyProvider().sketches(THREE_DIGITS) == pbe_only_sketches()
        assert PbeOnlyProvider().sketches(THREE_DIGITS) == [Hole(())]

    def test_static_provider_parses_strings(self):
        provider = StaticSketchProvider(["Repeat(<num>,3)", "Hole()"])
        sketches = provider.sketches(THREE_DIGITS)
        assert sketches[0] == parse_sketch("Repeat(<num>,3)")
        assert sketches[1] == Hole(())

    def test_static_provider_accepts_asts(self):
        provider = StaticSketchProvider([Hole(())])
        assert provider.sketches(THREE_DIGITS) == [Hole(())]

    def test_static_provider_rejects_empty(self):
        with pytest.raises(ValueError):
            StaticSketchProvider([])

    def test_nl_provider_falls_back_without_description(self):
        provider = NlSketchProvider()
        assert provider.sketches(Problem("")) == [Hole(())]

    def test_provider_equivalence_pbe(self, fast_config):
        """PbeOnlyProvider must behave exactly like the legacy sketches= hack."""
        problem = Problem("", positive=["123", "456"], negative=["12", "abcd"], budget=8.0)
        via_provider = Session(provider=PbeOnlyProvider(), config=fast_config).solve(problem)
        with pytest.warns(DeprecationWarning):
            via_legacy = Regel(config=fast_config).synthesize(
                "", problem.positive, problem.negative, k=1, time_budget=8.0,
                sketches=pbe_only_sketches(),
            )
        assert via_provider.solved and via_legacy.solved
        assert via_provider.best.regex == str(via_legacy.best)


class TestSchedulers:
    @pytest.mark.parametrize(
        "scheduler",
        [
            SequentialScheduler(),
            SequentialScheduler(fair=False),
            InterleavedScheduler(slice_seconds=0.1),
            ProcessPoolScheduler(max_workers=2),
        ],
        ids=["sequential-fair", "sequential-greedy", "interleaved", "process-pool"],
    )
    def test_scheduler_equivalence_on_benchmark_slice(self, scheduler, fast_config):
        """All schedulers find the same best regex on easy benchmark problems."""
        session = Session(scheduler=scheduler, config=fast_config)
        report = session.solve(THREE_DIGITS)
        assert report.solved, scheduler.name
        assert report.best.regex == "Repeat(<num>,3)"
        assert report.scheduler == scheduler.name

    # A pathological first sketch (unconstrained hole at full depth on examples
    # plain PBE cannot crack quickly) ahead of the trivially checkable target.
    STARVATION_SKETCHES = [
        "Hole()",
        "Concat(Repeat(<cap>,2),Concat(<->,Repeat(<num>,4)))",
    ]
    # The negative set is deliberately dense: every small regex an
    # unconstrained Hole() search reaches early is rejected, so the first
    # sketch stays a budget hog even with the fast propagation-based solver
    # (the sketch-2 completion remains consistent with all examples).
    STARVATION_PROBLEM = Problem(
        description="",
        positive=["AB-1234", "XY-0001"],
        negative=[
            "AB1234",
            "A-1234",
            "ab-1234",
            "AB-123",
            "AB-12345",
            "ABC-1234",
            "AB--1234",
            "A8-1234",
            "AB-1B34",
        ],
        k=1,
        budget=1.5,
    )

    def test_interleaved_solves_what_greedy_sequential_starves(self):
        """A pathological first sketch must not starve an easy later sketch."""
        provider = StaticSketchProvider(self.STARVATION_SKETCHES)
        config = SynthesisConfig(timeout=6.0)  # full hole depth: Hole() is a hog
        greedy = Session(
            provider=provider,
            scheduler=SequentialScheduler(fair=False),
            config=config,
        ).solve(self.STARVATION_PROBLEM)
        assert not greedy.solved, "greedy sequential should starve the easy sketch"

        interleaved = Session(
            provider=provider,
            scheduler=InterleavedScheduler(slice_seconds=0.1),
            config=config,
        ).solve(self.STARVATION_PROBLEM)
        assert interleaved.solved
        assert matches(interleaved.best.ast(), "QQ-4321")

    def test_fair_sequential_reaches_later_sketches(self):
        """The fair budget fix: later sketches get slices despite a hog."""
        fair = Session(
            provider=StaticSketchProvider(self.STARVATION_SKETCHES),
            scheduler=SequentialScheduler(),
            config=SynthesisConfig(timeout=6.0),
        ).solve(self.STARVATION_PROBLEM)
        assert fair.solved
        assert fair.sketches_tried == 2

    def test_interleaved_keeps_all_solutions_across_slices(self):
        """Solutions found in later slices must not be lost to re-ranking."""
        problem = Problem("", positive=["123", "456"], negative=["12", "1234"], k=3, budget=8.0)
        config = SynthesisConfig(timeout=6.0, hole_depth=2, max_results=3)
        provider = StaticSketchProvider(["Hole()"])
        sequential = Session(
            provider=provider, scheduler=SequentialScheduler(), config=config
        ).solve(problem)
        interleaved = Session(
            provider=provider,
            scheduler=InterleavedScheduler(slice_expansions=1),
            config=config,
        ).solve(problem)
        assert [s.regex for s in interleaved.solutions] == [
            s.regex for s in sequential.solutions
        ]
        assert len(interleaved.solutions) == 3

    def test_interleaved_reports_only_attempted_sketches(self, fast_config):
        """Sketches that never received a slice are not phantom attempts."""
        provider = StaticSketchProvider(["Repeat(<num>,3)"] + ["Hole()"] * 4)
        problem = Problem("", positive=["123"], negative=["12"], k=1, budget=8.0)
        report = Session(
            provider=provider, scheduler=InterleavedScheduler(), config=fast_config
        ).solve(problem)
        assert report.solved
        assert report.sketches_tried == 1
        assert all(sketch.expansions > 0 for sketch in report.sketches)

    def test_make_scheduler_registry(self):
        assert make_scheduler("sequential", fair=False).name == "sequential"
        assert make_scheduler("interleaved").name == "interleaved"
        assert make_scheduler("process-pool").name == "process-pool"
        with pytest.raises(ValueError):
            make_scheduler("warp-drive")


class TestSessionStreaming:
    def test_first_solution_streams_before_budget(self, fast_config):
        """iter_solutions yields the quickstart problem long before the budget."""
        problem = Problem(
            description="2 letters followed by a dash and then 4 digits",
            positive=["ab-1234", "xy-0001"],
            negative=["ab1234", "a-1234", "ab-123"],
            k=1,
            budget=15.0,
        )
        session = Session(scheduler=InterleavedScheduler(), config=fast_config)
        start = time.monotonic()
        first = next(iter(session.iter_solutions(problem)))
        first_at = time.monotonic() - start
        assert first_at < problem.budget / 2, "no anytime behaviour"
        assert matches(first.ast(), "qq-5678")

    def test_closing_the_stream_cancels(self, fast_config):
        # First solution arrives instantly; the unconstrained hole would keep
        # the portfolio busy for the rest of the 30s budget — closing the
        # stream after the first yield must cancel it cooperatively.
        problem = Problem(
            description="", positive=["123", "456"], negative=["12"], k=3, budget=30.0
        )
        session = Session(
            provider=StaticSketchProvider(["Repeat(<num>,3)", "Hole()"]),
            scheduler=InterleavedScheduler(slice_seconds=0.05),
            config=fast_config,
        )
        start = time.monotonic()
        stream = session.iter_solutions(problem)
        first = next(stream)
        stream.close()
        assert time.monotonic() - start < 10.0
        assert matches(first.ast(), "555")
        report = session.last_report
        assert report is not None and report.cancelled
        assert len(report.solutions) == 1

    def test_closing_an_unstarted_stream_is_harmless(self, fast_config):
        session = Session(config=fast_config)
        stream = session.iter_solutions(THREE_DIGITS)
        stream.close()  # generator never ran: nothing to cancel, no report
        assert session.last_report is None

    def test_external_cancel_token(self, fast_config):
        cancel = CancelToken()
        cancel.cancel()
        problem = Problem("", positive=["AB-1234"], negative=["x"], budget=30.0)
        session = Session(provider=PbeOnlyProvider(), config=fast_config)
        start = time.monotonic()
        report = session.solve(problem, cancel=cancel)
        assert time.monotonic() - start < 10.0
        assert not report.solved

    def test_k_distinct_solutions(self, fast_config):
        problem = Problem(
            description="3 digits",
            positive=["123", "456"],
            negative=["12", "1234"],
            k=3,
            budget=8.0,
        )
        report = Session(config=fast_config).solve(problem)
        assert 1 <= len(report.solutions) <= 3
        regexes = [solution.regex for solution in report.solutions]
        assert len(set(regexes)) == len(regexes)
        assert all(matches(solution.ast(), "789") for solution in report.solutions)


class TestTelemetry:
    def test_per_sketch_reports_cover_attempted_sketches(self, fast_config):
        provider = StaticSketchProvider(
            ["Concat(<a>,<b>)", "Repeat(<num>,3)", "Repeat(<let>,3)"]
        )
        problem = Problem("", positive=["123"], negative=["12"], k=1, budget=8.0)
        report = Session(provider=provider, config=fast_config).solve(problem)
        assert report.solved
        # Every attempted sketch is reported, solved or not (historically only
        # solved sketches were timed, overstating speed).
        assert report.sketches_tried >= 2
        solved_flags = [sketch.solved for sketch in report.sketches]
        assert any(solved_flags) and not all(solved_flags)
        assert all(sketch.elapsed >= 0.0 for sketch in report.sketches)
        assert report.total_expansions > 0

    def test_regel_result_tags_solved_sketches(self, fast_config):
        with pytest.warns(DeprecationWarning):
            result = Regel(config=fast_config).synthesize(
                "",
                positive=["123"],
                negative=["12"],
                k=1,
                time_budget=8.0,
                sketches=[
                    parse_sketch("Concat(<a>,<b>)"),
                    parse_sketch("Repeat(<num>,3)"),
                ],
            )
        assert result.solved
        assert len(result.per_sketch_times) == result.sketches_tried
        assert len(result.per_sketch_solved) == result.sketches_tried
        assert any(result.per_sketch_solved)
        assert result.solved_sketch_times  # the legacy metric is derivable


class TestDeprecationShim:
    def test_synthesize_warns_and_solves(self, fast_config):
        tool = Regel(config=fast_config, num_sketches=10)
        with pytest.warns(DeprecationWarning, match="Session"):
            result = tool.synthesize(
                "3 digits", positive=["123"], negative=["12"], k=1, time_budget=8.0
            )
        assert isinstance(result, RegelResult)
        assert result.solved
        assert matches(result.best, "999")

    def test_empty_sketch_list_returns_unsolved_immediately(self, fast_config):
        """Historical semantics: sketches=[] means nothing to try."""
        with pytest.warns(DeprecationWarning):
            result = Regel(config=fast_config).synthesize(
                "3 digits", ["123"], ["12"], time_budget=30.0, sketches=[]
            )
        assert not result.solved
        assert result.sketches_tried == 0

    def test_shim_matches_pipeline_output(self, fast_config):
        problem = THREE_DIGITS
        report = Session(
            provider=NlSketchProvider(num_sketches=10),
            scheduler=InterleavedScheduler(),
            config=fast_config,
        ).solve(problem)
        with pytest.warns(DeprecationWarning):
            legacy = Regel(config=fast_config, num_sketches=10).synthesize(
                problem.description,
                problem.positive,
                problem.negative,
                k=problem.k,
                time_budget=problem.budget,
            )
        assert report.best.regex == str(legacy.best)


class TestCliJson:
    def test_solve_json_emits_run_report(self, capsys):
        from repro.cli import main

        code = main(
            ["solve", "3 digits", "--pos", "123", "--neg", "12", "-t", "6", "--json"]
        )
        captured = capsys.readouterr()
        assert code == 0
        report = RunReport.from_json(captured.out)
        assert report.solved
        assert report.problem.description == "3 digits"

    def test_batch_mode(self, tmp_path, capsys):
        from repro.cli import main

        problems = [
            Problem("3 digits", positive=["123"], negative=["12"], budget=5.0).to_dict(),
            Problem("2 letters", positive=["ab"], negative=["a"], budget=5.0).to_dict(),
        ]
        path = tmp_path / "problems.json"
        path.write_text(json.dumps(problems))
        code = main(["batch", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) == 2
        assert all(RunReport.from_json(line).solved for line in lines)

    def test_legacy_invocation_still_works(self, capsys):
        from repro.cli import main

        code = main(["3 digits", "--pos", "123", "--neg", "12", "-t", "6"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Repeat" in captured.out or "<num>" in captured.out

    def test_batch_ndjson_stream_with_record(self, tmp_path, capsys):
        from repro.cli import main

        problems = [
            Problem("3 digits", positive=["123"], negative=["12"], budget=5.0),
            Problem("2 letters", positive=["ab"], negative=["a"], budget=5.0),
        ]
        path = tmp_path / "problems.ndjson"
        path.write_text("\n".join(p.canonical_json() for p in problems) + "\n")
        record_path = tmp_path / "batch.json"
        code = main(["batch", str(path), "--record", str(record_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert len([line for line in captured.out.splitlines() if line.strip()]) == 2

        # The record is the same format the service writes.
        from repro.service.batch import BatchRecord

        record = BatchRecord.load(record_path)
        assert len(record) == 2 and record.done
        assert record.counts()["failed"] == 0

        # Re-running against the same record skips every known item.
        code = main(["batch", str(path), "--record", str(record_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == ""
        assert "skipped" in captured.err

    def test_batch_resume_offset_skips_lines(self, tmp_path, capsys):
        from repro.cli import main

        problems = [
            Problem("3 digits", positive=["123"], negative=["12"], budget=5.0),
            Problem("2 letters", positive=["ab"], negative=["a"], budget=5.0),
        ]
        path = tmp_path / "problems.ndjson"
        path.write_text("\n".join(p.canonical_json() for p in problems) + "\n")
        code = main(["batch", str(path), "--resume", "1"])
        captured = capsys.readouterr()
        assert code == 0
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) == 1
        assert RunReport.from_json(lines[0]).problem.description == "2 letters"

    def test_batch_bad_line_fails_item_not_stream(self, tmp_path, capsys):
        from repro.cli import main

        good = Problem("3 digits", positive=["123"], negative=["12"], budget=5.0)
        path = tmp_path / "problems.ndjson"
        path.write_text("{broken\n" + good.canonical_json() + "\n")
        code = main(["batch", str(path)])
        captured = capsys.readouterr()
        assert code == 1  # at least one item failed
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) == 2
        assert "error" in json.loads(lines[0])
        assert RunReport.from_json(lines[1]).solved

    def test_corpus_generate(self, tmp_path, capsys):
        from repro.cli import main

        corpus = tmp_path / "corpus.ndjson"
        corpus.write_text(
            '{"pattern": "^\\\\d{3}$", "uses": 5}\n'
            '{"pattern": "(?=x)y", "uses": 5}\n'
        )
        out = tmp_path / "problems.ndjson"
        code = main(["corpus", "generate", str(corpus), "-o", str(out), "--seed", "7"])
        captured = capsys.readouterr()
        assert code == 0
        lines = [line for line in out.read_text().splitlines() if line.strip()]
        assert len(lines) == 1
        problem = Problem.from_json(lines[0])
        assert problem.description == "^\\d{3}$"
        assert problem.positive and problem.negative
        assert "lookaround" in captured.err

        # Same seed, same output: generation is deterministic.
        out2 = tmp_path / "problems2.ndjson"
        main(["corpus", "generate", str(corpus), "-o", str(out2), "--seed", "7"])
        capsys.readouterr()
        assert out2.read_text() == out.read_text()
