"""Golden-file tests for the wire format.

The fixtures under ``tests/fixtures/`` are committed renderings of the
`Problem`/`RunReport` JSON wire format:

* ``problem_v1.json`` / ``run_report_v1.json`` — the current schema.  The
  round-trip tests pin every field: if a field is renamed or dropped, these
  fail and the change is a conscious wire-format break, not an accident.
* ``run_report_v0_legacy.json`` — a report as an old client/server (pre
  cache-telemetry, pre service-provenance) would have written it.  The
  backward-compat test proves new code still reads it, with the new fields
  taking their documented defaults — so future telemetry fields must stay
  optional-with-default too.
* ``batch_v1.json`` — a persisted :class:`~repro.service.BatchRecord` as the
  batch-ingestion endpoint writes it.  Records outlive server processes (that
  is their whole point), so the on-disk shape is a compatibility surface just
  like the HTTP wire format.
"""

import json
import pathlib

from repro.api import Problem, RunReport
from repro.dsl.parser import parse_regex

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _load(name: str) -> dict:
    return json.loads((FIXTURES / name).read_text(encoding="utf-8"))


class TestProblemGolden:
    def test_round_trip_preserves_every_field(self):
        data = _load("problem_v1.json")
        problem = Problem.from_dict(data)
        assert problem.to_dict() == data

    def test_known_field_values(self):
        problem = Problem.from_dict(_load("problem_v1.json"))
        assert problem.k == 2
        assert problem.budget == 15.0
        assert problem.positive == ("AB-1234", "XY-0001")
        assert problem.variant.value == "regel"

    def test_cache_key_is_stable(self):
        # The canonical hash is part of the wire contract: it keys the
        # service's persistent cache, so it must never drift for a fixed
        # problem.  If this fails, either hashing changed (cache-busting —
        # update the fixture deliberately) or serialisation changed.
        problem = Problem.from_dict(_load("problem_v1.json"))
        report = _load("run_report_v1.json")
        assert problem.cache_key() == report["cache_key"]

    def test_unknown_fields_are_ignored(self):
        # Old servers must tolerate payloads from newer clients.
        data = _load("problem_v1.json")
        data["future_field"] = {"anything": 1}
        assert Problem.from_dict(data).k == 2


class TestRunReportGolden:
    def test_round_trip_preserves_every_field(self):
        data = _load("run_report_v1.json")
        report = RunReport.from_dict(data)
        assert report.to_dict() == data

    def test_solutions_parse_back_into_the_dsl(self):
        report = RunReport.from_dict(_load("run_report_v1.json"))
        for solution in report.solutions:
            assert parse_regex(solution.regex) is solution.ast()

    def test_telemetry_fields(self):
        report = RunReport.from_dict(_load("run_report_v1.json"))
        assert report.total_expansions == 430
        assert report.total_eval_cache_hits == 3000
        assert report.total_solver_propagations == 60
        assert report.total_dfa_cache_hits == 2450
        assert report.total_dfa_compiled == 87
        assert report.total_dfa_compile_ms == 11.0
        assert report.provenance == "engine"


class TestBackwardCompat:
    def test_legacy_report_loads_with_defaults(self):
        report = RunReport.from_dict(_load("run_report_v0_legacy.json"))
        assert report.solved
        # Fields that post-date the legacy schema take their defaults.
        assert report.provenance == "engine"
        assert report.cache_key == ""
        sketch = report.sketches[0]
        assert sketch.eval_cache_hits == 0
        assert sketch.solver_propagations == 0
        assert sketch.encode_cache_hits == 0
        assert sketch.dfa_cache_hits == 0
        assert sketch.dfa_compiled == 0
        assert sketch.dfa_compile_ms == 0.0

    def test_legacy_report_round_trips_to_current_schema(self):
        report = RunReport.from_dict(_load("run_report_v0_legacy.json"))
        upgraded = RunReport.from_json(report.to_json())
        assert upgraded.solutions[0].regex == "Repeat(<num>,3)"
        assert upgraded.to_dict()["provenance"] == "engine"

    def test_current_report_fields_are_superset_of_legacy(self):
        # A field present in the legacy fixture must still exist today:
        # removing one silently breaks old readers.
        legacy = _load("run_report_v0_legacy.json")
        current = RunReport.from_dict(legacy).to_dict()
        assert set(legacy) <= set(current)
        assert set(legacy["sketches"][0]) <= set(current["sketches"][0])


class TestBatchRecordGolden:
    def test_round_trip_preserves_every_field(self):
        from repro.service.batch import BatchRecord

        data = _load("batch_v1.json")
        record = BatchRecord.load(FIXTURES / "batch_v1.json")
        assert record.to_dict() == data

    def test_known_field_values(self):
        from repro.service.batch import BatchRecord

        record = BatchRecord.load(FIXTURES / "batch_v1.json")
        assert record.batch_id == "9f1c2a3b4d5e6f708192a3b4c5d6e7f8"
        assert len(record) == 5
        assert record.status_of(0) == "solved"
        assert record.items[1]["regex"] == "Repeat(<num>,4)"
        assert record.items[3]["error"].startswith("line 4")
        counts = record.counts()
        assert counts == {
            "queued": 1,
            "solved": 1,
            "unsolved": 1,
            "failed": 1,
            "cached": 1,
        }
        assert not record.done  # item 4 is still queued

    def test_statuses_stay_known(self):
        # Every status in the fixture must remain a recognised lifecycle
        # state: renaming one orphans persisted records.
        from repro.service.batch import ITEM_STATUSES, BatchRecord

        record = BatchRecord.load(FIXTURES / "batch_v1.json")
        assert {item["status"] for item in record.items} <= set(ITEM_STATUSES)

    def test_loaded_record_resumes_stranded_items(self):
        # The queued item has no live claim after a load — exactly the
        # server-restart path — so a resume POST must re-ingest it.
        from repro.service.batch import BatchRecord

        record = BatchRecord.load(FIXTURES / "batch_v1.json")
        assert record.needs_reingest(4)
        assert not record.needs_reingest(0)
