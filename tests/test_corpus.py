"""Tests for the real-world corpus subsystem: loader, translator, generator.

The committed fixtures under ``tests/fixtures/corpus/`` are the offline
stand-in for the Davis-2019 corpus: ``sample_corpus.ndjson`` mixes ~200
realistic patterns (translatable and not) with the field-name variants the
liberal loader must accept; ``untranslatable.ndjson`` is a handcrafted file
where every line exercises a distinct skip reason.
"""

import io
import json
import pathlib
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.analyzer import facts_of_sketch
from repro.automata.sampling import sample_positive
from repro.corpus import (
    GenerationSkip,
    GeneratorConfig,
    SkipPattern,
    charset_to_regex,
    generate_problems,
    load_corpus,
    problem_from_pattern,
    punch_holes,
    translate_pattern,
)
from repro.corpus.loader import SKIP_MALFORMED_JSON, SKIP_MIN_USES, SKIP_MISSING_PATTERN
from repro.dsl import ast as r
from repro.dsl.charclass import PRINTABLE_ALPHABET, CharClassKind, chars_of
from repro.dsl.semantics import Matcher
from repro.sketch import ast as sast
from repro.sketch.parser import parse_sketch
from repro.sketch.printer import sketch_to_string

CORPUS_DIR = pathlib.Path(__file__).parent / "fixtures" / "corpus"
SAMPLE = CORPUS_DIR / "sample_corpus.ndjson"
UNTRANSLATABLE = CORPUS_DIR / "untranslatable.ndjson"


def matches(regex, subject: str) -> bool:
    return Matcher(subject).matches(regex)


# ---------------------------------------------------------------------------
# Translator
# ---------------------------------------------------------------------------


class TestTranslatePattern:
    @pytest.mark.parametrize(
        "pattern,accepted,rejected",
        [
            (r"^\d+$", ["1", "123"], ["", "a", "1a"]),
            (r"^\d{3}-\d{4}$", ["555-0199"], ["5550199", "55-0199"]),
            (r"^[a-z0-9_]{3,5}$", ["abc", "a_1z9"], ["ab", "abcdef", "ABC"]),
            (r"^a*b+c?$", ["b", "aabbc"], ["", "a", "c", "bcc"]),
            (r"^(a|b)c$", ["ac", "bc"], ["c", "abc"]),
            (r"^x{2}$", ["xx"], ["x", "xxx"]),
            (r"^x{2,}$", ["xx", "xxxx"], ["x"]),
            (r"^x{0,2}$", ["", "x", "xx"], ["xxx"]),
            (r"^\w+$", ["a_9"], ["a b", ""]),
            (r"^[^\W\d]+$", ["ab_", "Zz"], ["a1", "a b", ""]),
            (r"^a\.b$", ["a.b"], ["axb"]),
            (r"^\x41$", ["A"], ["B"]),
            (r"^[[:digit:]]+$", ["42"], ["4a"]),
        ],
    )
    def test_language_equivalence_on_examples(self, pattern, accepted, rejected):
        regex = translate_pattern(pattern)
        for subject in accepted:
            assert matches(regex, subject), (pattern, subject)
        for subject in rejected:
            assert not matches(regex, subject), (pattern, subject)

    def test_search_semantics_for_unanchored_patterns(self):
        # Corpus regexes are used with re.search: "abc" matches anywhere.
        regex = translate_pattern("abc")
        assert matches(regex, "xxabcxx")
        assert not matches(regex, "ab")
        starts = translate_pattern("^abc")
        assert matches(starts, "abcdef") and not matches(starts, "xabc")
        ends = translate_pattern("abc$")
        assert matches(ends, "xabc") and not matches(ends, "abcx")

    def test_lazy_quantifier_same_language(self):
        # Laziness changes match extents, not the matched language.
        assert translate_pattern("^a+?$") == translate_pattern("^a+$")

    @pytest.mark.parametrize(
        "pattern,reason",
        [
            (r"(?=x)y", "lookaround"),
            (r"(?<!x)y", "lookaround"),
            (r"(a)\1", "backreference"),
            (r"(?P<g>a)(?P=g)", "backreference"),
            (r"\bword", "word-boundary"),
            (r"a^b", "inner-anchor"),
            (r"^a|b$", "inner-anchor"),
            (r"(?i)abc", "inline-flags"),
            (r"a*+", "possessive-quantifier"),
            (r"a{999}", "too-large"),
            (r"[^0-9]", "class-too-large"),
            (r"\p{L}", "unsupported-escape"),
            (r"a\nb", "alphabet-escape"),
            (r"(unclosed", "parse-error"),
            (r"x{3,1}", "parse-error"),
            ("", "empty-pattern"),
        ],
    )
    def test_skip_reasons(self, pattern, reason):
        with pytest.raises(SkipPattern) as excinfo:
            translate_pattern(pattern)
        assert excinfo.value.reason == reason

    def test_grouping_is_transparent(self):
        assert translate_pattern("^(?:ab)+$") == translate_pattern("^(ab)+$")
        assert translate_pattern("^(?P<name>ab)$") == translate_pattern("^ab$")

    def test_never_mistranslates_via_python_re(self):
        # Spot-check agreement with Python's own engine on the anchored
        # subset (identical whole-string semantics).
        import re as pyre

        patterns = [r"^\d{2,4}$", r"^[a-f]+$", r"^a(b|c)*d$", r"^x?y{2}$"]
        subjects = ["", "12", "12345", "abc", "ad", "abcd", "xyy", "yy", "fff"]
        for pattern in patterns:
            regex = translate_pattern(pattern)
            for subject in subjects:
                assert matches(regex, subject) == bool(
                    pyre.fullmatch(pattern[1:-1], subject)
                ), (pattern, subject)


class TestCharsetToRegex:
    def test_exact_predefined_classes(self):
        assert charset_to_regex(chars_of(CharClassKind.HEX)) == r.CharClass(
            CharClassKind.HEX
        )
        assert charset_to_regex(chars_of(CharClassKind.NUM)) == r.CharClass(
            CharClassKind.NUM
        )
        assert charset_to_regex(frozenset(PRINTABLE_ALPHABET)) == r.ANY

    def test_greedy_cover_with_literal_remainder(self):
        regex = charset_to_regex(chars_of(CharClassKind.NUM) | {"_"})
        accepted = {c for c in PRINTABLE_ALPHABET if matches(regex, c)}
        assert accepted == chars_of(CharClassKind.NUM) | {"_"}

    def test_class_too_large_is_skipped(self):
        # A scattered set coverable only literal-by-literal past the cap.
        with pytest.raises(SkipPattern) as excinfo:
            charset_to_regex(frozenset(";:,.!?()[]<>@#%&*+="))
        assert excinfo.value.reason == "class-too-large"

    def test_empty_charset_is_skipped(self):
        with pytest.raises(SkipPattern):
            charset_to_regex(frozenset())


# ---------------------------------------------------------------------------
# Loader
# ---------------------------------------------------------------------------


class TestLoadCorpus:
    def test_sample_corpus_loads_every_line(self):
        result = load_corpus(SAMPLE)
        assert len(result.entries) >= 190
        assert not result.skipped
        assert result.total_lines == len(result.entries)

    def test_field_name_variants(self):
        # The fixture includes "regex"/"re" pattern keys and nested
        # per-language static-count dicts.
        result = load_corpus(SAMPLE)
        by_pattern = {entry.pattern: entry for entry in result.entries}
        assert by_pattern[r"^\d{6}$"].static_uses == 15  # {"js": 12, "py": 3}
        assert by_pattern[r"^[a-z]{4}$"].static_uses == 9  # bare "uses"
        assert by_pattern[r"^ok$"].dynamic_uses == 5  # "dynamicHits"

    def test_skip_counters(self):
        result = load_corpus(UNTRANSLATABLE, min_uses=1)
        assert result.skipped[SKIP_MALFORMED_JSON] == 1
        assert result.skipped[SKIP_MISSING_PATTERN] == 1
        assert result.skipped[SKIP_MIN_USES] == 1
        assert len(result.entries) == 5

    def test_limit_caps_loaded_not_scanned(self):
        result = load_corpus(SAMPLE, limit=7)
        assert len(result.entries) == 7

    def test_accepts_file_object_and_blank_lines(self):
        stream = io.StringIO('\n{"pattern": "^a$", "uses": 1}\n\n')
        result = load_corpus(stream)
        assert [entry.pattern for entry in result.entries] == ["^a$"]
        assert result.entries[0].line == 2


# ---------------------------------------------------------------------------
# Problem generation
# ---------------------------------------------------------------------------


class TestProblemGeneration:
    def test_examples_are_consistent_with_ground_truth(self):
        pattern = r"^\d{2}-[a-z]{3}$"
        problem = problem_from_pattern(pattern, GeneratorConfig())
        regex = translate_pattern(pattern)
        assert problem.description == pattern
        assert problem.positive and problem.negative
        for example in problem.positive:
            assert matches(regex, example), example
        for example in problem.negative:
            assert not matches(regex, example), example

    def test_sketches_are_pinned_and_parse(self):
        problem = problem_from_pattern(r"^\d{3}\.\d{2}$", GeneratorConfig(sketches=2))
        assert problem.sketches
        for text in problem.sketches:
            sketch = parse_sketch(text)
            assert sketch_to_string(sketch) == text

    def test_deterministic_under_fixed_seed(self):
        config = GeneratorConfig(seed=11)
        first = problem_from_pattern(r"^\d{3}-\d{4}$", config)
        second = problem_from_pattern(r"^\d{3}-\d{4}$", config)
        assert first.cache_key() == second.cache_key()

    def test_seed_changes_problems(self):
        base = problem_from_pattern(r"^\d{3}-\d{4}$", GeneratorConfig(seed=1))
        other = problem_from_pattern(r"^\d{3}-\d{4}$", GeneratorConfig(seed=2))
        assert base.cache_key() != other.cache_key()

    def test_insertion_independence(self):
        # Per-pattern seeding: generating a pattern alone or inside a stream
        # yields the identical problem (corpus edits never ripple).
        config = GeneratorConfig(seed=3)
        alone = problem_from_pattern(r"^[a-f]{4}$", config)
        batch = generate_problems([r"^\d+$", r"^[a-f]{4}$", r"^x+$"], config)
        keys = [problem.cache_key() for problem in batch.problems]
        assert alone.cache_key() in keys

    def test_universal_language_is_skipped(self):
        with pytest.raises(GenerationSkip) as excinfo:
            problem_from_pattern(r".*", GeneratorConfig())
        assert excinfo.value.reason == "universal-language"

    def test_untranslatable_fixture_counts_every_skip(self):
        # min_uses=1 also drops the fixture's below-threshold (translatable)
        # entry, leaving only lines that the translator must refuse.
        result = load_corpus(UNTRANSLATABLE, min_uses=1)
        generated = generate_problems(result.entries, GeneratorConfig())
        assert not generated.problems
        for reason in (
            "lookaround",
            "backreference",
            "word-boundary",
            "alphabet-escape",
            "inline-flags",
        ):
            assert generated.skipped[reason] == 1, reason
        assert generated.total == len(result.entries)

    def test_sample_corpus_yields_many_problems(self):
        result = load_corpus(SAMPLE, limit=40)
        generated = generate_problems(result.entries, GeneratorConfig())
        assert len(generated.problems) >= 25
        assert generated.total == 40


# ---------------------------------------------------------------------------
# Hole punching
# ---------------------------------------------------------------------------

_LEAVES = [r.CharClass(kind) for kind in CharClassKind] + [
    r.literal(char) for char in "ab1.-"
]

_regexes = st.recursive(
    st.sampled_from(_LEAVES),
    lambda children: st.one_of(
        children.map(r.StartsWith),
        children.map(r.EndsWith),
        children.map(r.Contains),
        children.map(r.Optional),
        children.map(r.KleeneStar),
        st.tuples(children, children).map(lambda pair: r.Concat(*pair)),
        st.tuples(children, children).map(lambda pair: r.Or(*pair)),
        st.tuples(children, st.integers(1, 3)).map(lambda pair: r.Repeat(*pair)),
        st.tuples(children, st.integers(1, 3)).map(
            lambda pair: r.RepeatAtLeast(*pair)
        ),
    ),
    max_leaves=10,
)


def _has_hole(sketch) -> bool:
    if isinstance(sketch, sast.Hole):
        return True
    if isinstance(sketch, sast.OpSketch):
        return any(_has_hole(arg) for arg in sketch.args)
    if isinstance(sketch, sast.IntOpSketch):
        return _has_hole(sketch.arg)
    return False


class TestPunchHoles:
    def test_always_produces_a_hole(self):
        regex = translate_pattern(r"^\d{3}-\d{4}$")
        sketch = punch_holes(regex, random.Random(0), holes=1, hole_depth=2)
        assert _has_hole(sketch)

    def test_single_node_regex_becomes_hole(self):
        sketch = punch_holes(r.literal("a"), random.Random(0))
        assert isinstance(sketch, sast.Hole)

    def test_deterministic_for_fixed_rng_seed(self):
        regex = translate_pattern(r"^[a-z]+\.[0-9]{2}$")
        first = punch_holes(regex, random.Random(5), holes=2, hole_depth=2)
        second = punch_holes(regex, random.Random(5), holes=2, hole_depth=2)
        assert sketch_to_string(first) == sketch_to_string(second)

    @settings(max_examples=120, deadline=None)
    @given(regex=_regexes, seed=st.integers(0, 2**16))
    def test_punched_sketch_never_rejects_the_truth_samples(self, regex, seed):
        # Round-trip soundness: the original regex is a completion of its
        # own punched sketch, so the sketch's static facts may never reject
        # a string the regex accepts.  (This is the property the generator
        # relies on when it vets sketches against sampled positives.)
        samples = sample_positive(regex, 3, random.Random(seed), max_length=8)
        if not samples:
            return
        sketch = punch_holes(regex, random.Random(seed), holes=2, hole_depth=2)
        text = sketch_to_string(sketch)
        facts = facts_of_sketch(parse_sketch(text), hole_depth=3)
        for sample in samples:
            assert facts.reject_reason(sample) is None, (regex, text, sample)


# ---------------------------------------------------------------------------
# NDJSON output contract
# ---------------------------------------------------------------------------


class TestGeneratedProblemWireFormat:
    def test_problems_round_trip_through_problem_ndjson(self):
        from repro.api import Problem

        generated = generate_problems([r"^\d{4}$"], GeneratorConfig())
        assert generated.problems
        line = generated.problems[0].canonical_json()
        restored = Problem.from_dict(json.loads(line))
        assert restored == generated.problems[0]
        assert restored.cache_key() == generated.problems[0].cache_key()

    def test_sketchless_problem_omits_sketches_key(self):
        from repro.api import Problem

        problem = Problem("d", positive=["1"])
        assert "sketches" not in problem.to_dict()
        pinned = Problem("d", positive=["1"], sketches=["Hole()"])
        assert pinned.to_dict()["sketches"] == ["Hole()"]
        assert pinned.cache_key() != problem.cache_key()
