"""Tests for the benchmark datasets (generation, loading, example consistency)."""

import pytest

from repro.datasets import (
    Benchmark,
    attach_examples,
    cross_validation_folds,
    generate_deepregex_dataset,
    stackoverflow_dataset,
    train_test_split,
)
from repro.datasets.splits import training_pairs
from repro.datasets.stackoverflow import dataset_size
from repro.dsl import matches
from repro.sketch import sketch_contains


class TestBenchmarkRecord:
    def test_regex_and_sketch_parse(self):
        benchmark = Benchmark(
            benchmark_id="t-0",
            description="3 digits",
            regex_text="Repeat(<num>,3)",
            gold_sketch_text="Hole(Repeat(<num>,3))",
        )
        assert benchmark.regex_size() == 2
        assert benchmark.gold_sketch is not None
        assert benchmark.word_count() == 2

    def test_attach_examples_consistent(self):
        benchmark = Benchmark(
            benchmark_id="t-1",
            description="2 letters then 2 digits",
            regex_text="Concat(Repeat(<let>,2),Repeat(<num>,2))",
        )
        enriched = attach_examples(benchmark)
        assert enriched.positive and enriched.negative
        regex = enriched.regex
        assert all(matches(regex, s) for s in enriched.positive)
        assert not any(matches(regex, s) for s in enriched.negative)


class TestDeepRegexGeneration:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_deepregex_dataset(count=30, seed=11)

    def test_requested_size(self, dataset):
        assert len(dataset) == 30

    def test_examples_consistent_with_gold(self, dataset):
        for benchmark in dataset:
            regex = benchmark.regex
            assert benchmark.positive, benchmark.benchmark_id
            assert all(matches(regex, s) for s in benchmark.positive)
            assert not any(matches(regex, s) for s in benchmark.negative)

    def test_descriptions_nonempty_and_short(self, dataset):
        for benchmark in dataset:
            assert benchmark.description.strip()
            assert benchmark.word_count() <= 30

    def test_gold_sketch_contains_target(self, dataset):
        for benchmark in dataset:
            sketch = benchmark.gold_sketch
            assert sketch is not None
            assert sketch_contains(sketch, benchmark.regex, depth=3)

    def test_unique_regexes(self, dataset):
        assert len({b.regex_text for b in dataset}) == len(dataset)

    def test_deterministic_for_seed(self):
        first = generate_deepregex_dataset(count=5, seed=3, with_examples=False)
        second = generate_deepregex_dataset(count=5, seed=3, with_examples=False)
        assert [b.regex_text for b in first] == [b.regex_text for b in second]


class TestStackOverflowDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return stackoverflow_dataset()

    def test_size_matches_paper(self, dataset):
        assert dataset_size() == 62
        assert len(dataset) == 62

    def test_examples_consistent_with_gold(self, dataset):
        for benchmark in dataset:
            regex = benchmark.regex
            assert benchmark.positive, benchmark.benchmark_id
            assert all(matches(regex, s) for s in benchmark.positive), benchmark.benchmark_id
            assert not any(matches(regex, s) for s in benchmark.negative), benchmark.benchmark_id

    def test_gold_sketches_parse(self, dataset):
        for benchmark in dataset:
            assert benchmark.gold_sketch is not None

    def test_harder_than_deepregex(self, dataset):
        deepregex = generate_deepregex_dataset(count=30, seed=11, with_examples=False)
        avg_words_so = sum(b.word_count() for b in dataset) / len(dataset)
        avg_words_dr = sum(b.word_count() for b in deepregex) / len(deepregex)
        avg_size_so = sum(b.regex_size() for b in dataset) / len(dataset)
        avg_size_dr = sum(b.regex_size() for b in deepregex) / len(deepregex)
        # Section 7: StackOverflow descriptions are longer (26 vs 12 words) and
        # target regexes larger (11 vs 5 nodes) than DeepRegex ones.
        assert avg_words_so > avg_words_dr
        assert avg_size_so > avg_size_dr

    def test_motivating_benchmark_present(self, dataset):
        assert any("Decimal(18, 3)" in b.description for b in dataset)


class TestSplits:
    def test_train_test_split_partition(self):
        data = generate_deepregex_dataset(count=20, seed=5, with_examples=False)
        train, test = train_test_split(data, 0.75, seed=1)
        assert len(train) + len(test) == 20
        assert not set(b.benchmark_id for b in train) & set(b.benchmark_id for b in test)

    def test_cross_validation_covers_everything_once(self):
        data = stackoverflow_dataset(with_examples=False)
        folds = cross_validation_folds(data, folds=5)
        assert len(folds) == 5
        test_ids = [b.benchmark_id for _, test in folds for b in test]
        assert sorted(test_ids) == sorted(b.benchmark_id for b in data)
        for train, test in folds:
            assert not set(b.benchmark_id for b in train) & set(b.benchmark_id for b in test)

    def test_training_pairs(self):
        data = stackoverflow_dataset(with_examples=False)
        pairs = training_pairs(data)
        assert len(pairs) == len(data)
        assert all(isinstance(u, str) and isinstance(g, str) for u, g in pairs)
