"""Tests for the deterministic fault-injection subsystem (``repro.faults``)."""

import time

import pytest

from repro import faults
from repro.faults import (
    ENV_VAR,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
    configure,
    configure_from_env,
    fault_point,
    fault_stats,
    faults_active,
    parse_spec,
)


@pytest.fixture(autouse=True)
def disarm():
    """Never let an armed plan outlive its test."""
    yield
    configure(None)


def _fire_sequence(spec_text: str, point: str, calls: int) -> list:
    """Call numbers (1-based) at which ``point`` fires under ``spec_text``."""
    plan = FaultPlan(parse_spec(spec_text))
    fired = []
    for call in range(1, calls + 1):
        try:
            plan.hit(point)
        except InjectedFault:
            fired.append(call)
    return fired


class TestSpecParsing:
    def test_full_grammar_round_trips(self):
        text = "seed=42;cache.read:p=0.1;pool.job:nth=3,7:kind=hang:sleep=0.5"
        spec = parse_spec(text)
        assert spec.seed == 42
        assert spec.rules["cache.read"].probability == 0.1
        assert spec.rules["pool.job"].nth == (3, 7)
        assert spec.rules["pool.job"].kind == "hang"
        assert spec.rules["pool.job"].sleep == 0.5
        assert parse_spec(spec.to_string()) == spec

    def test_empty_spec_is_armed_but_silent(self):
        spec = parse_spec("seed=0")
        assert spec.rules == {}
        plan = FaultPlan(spec)
        for _ in range(100):
            plan.hit("cache.read")  # never raises
        assert plan.stats()["points"]["cache.read"]["calls"] == 100
        assert plan.total_fired() == 0

    def test_whitespace_and_empty_segments_ignored(self):
        spec = parse_spec(" seed=3 ; cache.read:p=0.5 ; ")
        assert spec.seed == 3 and "cache.read" in spec.rules

    @pytest.mark.parametrize(
        "bad",
        [
            "seed=abc",
            "cache.read:p=nope",
            "cache.read:p=1.5",
            "cache.read:nth=0",
            "cache.read:nth=a,b",
            "cache.read:kind=explode",
            "cache.read:sleep=-1",
            "cache.read:frobnicate=1",
            "cache.read:p",
        ],
    )
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)

    def test_last_seed_wins(self):
        assert parse_spec("seed=1;cache.read:p=0.1;seed=9").seed == 9


class TestDeterminism:
    def test_same_spec_same_schedule(self):
        spec = "seed=11;cache.read:p=0.3"
        assert _fire_sequence(spec, "cache.read", 200) == _fire_sequence(
            spec, "cache.read", 200
        )

    def test_different_seeds_differ(self):
        a = _fire_sequence("seed=1;cache.read:p=0.3", "cache.read", 200)
        b = _fire_sequence("seed=2;cache.read:p=0.3", "cache.read", 200)
        assert a != b

    def test_nth_fires_exactly_there(self):
        assert _fire_sequence("cache.read:nth=2,5", "cache.read", 10) == [2, 5]

    def test_every_fires_on_multiples(self):
        assert _fire_sequence("pool.job:every=3", "pool.job", 10) == [3, 6, 9]

    def test_schedules_combine(self):
        fired = _fire_sequence("x:nth=1:every=4", "x", 9)
        assert fired == [1, 4, 8]

    def test_points_have_independent_streams(self):
        # Decisions at one point must not depend on traffic at another:
        # drive two plans with different interleavings, same per-point calls.
        spec = parse_spec("seed=5;a:p=0.4;b:p=0.4")

        def drive(order):
            plan = FaultPlan(spec)
            fired = []
            counters = {"a": 0, "b": 0}
            for point in order:
                counters[point] += 1
                try:
                    plan.hit(point)
                except InjectedFault:
                    fired.append((point, counters[point]))
            return sorted(fired)

        interleaved = drive(["a", "b"] * 50)
        sequential = drive(["a"] * 50 + ["b"] * 50)
        assert interleaved == sequential


class TestRuntime:
    def test_disabled_fault_point_is_noop(self):
        configure(None)
        assert not faults_active()
        fault_point("cache.read")  # must not raise, allocate, or count

    def test_injected_fault_is_a_connection_error(self):
        # The whole point: generic I/O hardening absorbs injected faults.
        fault = InjectedFault("cache.read", 3)
        assert isinstance(fault, ConnectionError)
        assert isinstance(fault, OSError)
        assert fault.point == "cache.read" and fault.call == 3

    def test_armed_plan_fires_through_fault_point(self):
        configure("x:nth=1")
        with pytest.raises(InjectedFault):
            fault_point("x")
        fault_point("x")  # call 2: silent

    def test_hang_stalls_then_continues(self):
        configure("x:nth=1:kind=hang:sleep=0.05")
        start = time.monotonic()
        fault_point("x")  # stalls, does not raise
        assert time.monotonic() - start >= 0.04

    def test_hang_honours_cancel_token(self):
        class Cancelled:
            cancelled = True

        configure("x:nth=1:kind=hang:sleep=30")
        start = time.monotonic()
        fault_point("x", cancel=Cancelled())
        assert time.monotonic() - start < 1.0

    def test_stats_count_unarmed_points_too(self):
        plan = configure("seed=1;x:nth=1")
        with pytest.raises(InjectedFault):
            fault_point("x")
        fault_point("unarmed.point")
        stats = plan.stats()
        assert stats["points"]["x"] == {"calls": 1, "fired": 1}
        assert stats["points"]["unarmed.point"] == {"calls": 1, "fired": 0}
        assert plan.total_fired() == 1

    def test_fault_stats_reports_inactive(self):
        configure(None)
        assert fault_stats() == {"active": False}
        configure("seed=2;x:p=0.1")
        stats = fault_stats()
        assert stats["active"] is True and stats["seed"] == 2

    def test_configure_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "seed=9;cache.read:nth=1")
        plan = configure_from_env()
        assert plan is not None and plan.spec.seed == 9
        monkeypatch.delenv(ENV_VAR)
        assert configure_from_env() is None

    def test_typoed_env_spec_raises(self, monkeypatch):
        # Silently arming nothing would fake a green chaos run.
        monkeypatch.setenv(ENV_VAR, "cache.read:oops=1")
        with pytest.raises(FaultSpecError) as info:
            configure_from_env()
        assert ENV_VAR in str(info.value)
