"""Tests for partial regexes, expansion, and approximation (Sections 4.0-4.1)."""

import pytest

from repro.dsl import Concat, NUM, Not, Optional, Or, Repeat, RepeatRange, literal, matches
from repro.sketch import concrete, hole, parse_sketch
from repro.synthesis import (
    Examples,
    FreeLabel,
    HoleLabel,
    PLeaf,
    POp,
    POpen,
    SymInt,
    SynthesisConfig,
    approximate_partial,
    approximate_sketch,
    expand,
    infeasible,
    initial_partial,
    is_concrete,
    is_symbolic,
    open_nodes,
    partial_size,
    substitute_symint,
    symints_of,
    to_regex,
)
from repro.synthesis.expand import SymIntFactory, default_char_classes


class TestPartialRegexBasics:
    def test_leaf_is_concrete(self):
        partial = PLeaf(Repeat(NUM, 2))
        assert is_concrete(partial)
        assert not is_symbolic(partial)
        assert to_regex(partial) == Repeat(NUM, 2)

    def test_open_node_not_concrete(self):
        partial = POpen(hole(NUM))
        assert not is_concrete(partial)
        assert open_nodes(partial) == (partial,)
        with pytest.raises(ValueError):
            to_regex(partial)

    def test_symbolic_partial(self):
        partial = POp("Repeat", (PLeaf(NUM),), (SymInt("k1"),))
        assert is_symbolic(partial)
        assert symints_of(partial) == (SymInt("k1"),)
        with pytest.raises(ValueError):
            to_regex(partial)
        concretised = substitute_symint(partial, "k1", 3)
        assert to_regex(concretised) == Repeat(NUM, 3)

    def test_partial_size(self):
        partial = POp("Concat", (PLeaf(NUM), POpen(hole(NUM))))
        assert partial_size(partial) == 3


class TestExpand:
    def setup_method(self):
        self.config = SynthesisConfig(hole_depth=2)
        self.symints = SymIntFactory()

    def test_op_sketch_expansion(self):
        sketch = parse_sketch("Concat(Hole(<num>),Hole(<,>))")
        root = initial_partial(sketch)
        successors = expand(root, root, self.config, self.symints)
        assert len(successors) == 1
        successor = successors[0]
        assert isinstance(successor, POp) and successor.op == "Concat"
        assert len(open_nodes(successor)) == 2

    def test_concrete_sketch_expansion(self):
        root = initial_partial(concrete(Repeat(NUM, 3)))
        successors = expand(root, root, self.config, self.symints)
        assert successors == [PLeaf(Repeat(NUM, 3))]

    def test_hole_expansion_includes_components_and_operators(self):
        root = initial_partial(hole(NUM))
        successors = expand(root, root, self.config, self.symints)
        # Component fill + 12 operator placements (9 unary/binary positions) + 3 repeat ops.
        assert any(isinstance(s, POpen) for s in successors)
        ops = {s.op for s in successors if isinstance(s, POp)}
        assert {"Concat", "Or", "Not", "Repeat", "RepeatRange"} <= ops

    def test_hole_depth_one_only_components(self):
        config = SynthesisConfig(hole_depth=1)
        root = initial_partial(hole(NUM, literal(",")))
        successors = expand(root, root, config, self.symints)
        assert len(successors) == 2
        assert all(isinstance(s, POpen) for s in successors)

    def test_symbolic_int_expansion(self):
        sketch = parse_sketch("RepeatAtLeast(Hole(<num>),?)")
        root = initial_partial(sketch)
        successors = expand(root, root, self.config, self.symints)
        assert len(successors) == 1
        assert symints_of(successors[0])

    def test_enumerated_int_expansion(self):
        config = SynthesisConfig(use_symbolic_ints=False, max_enum_int=4)
        sketch = parse_sketch("Repeat(Hole(<num>),?)")
        root = initial_partial(sketch)
        successors = expand(root, root, config, SymIntFactory())
        assert len(successors) == 4
        assert all(not symints_of(s) for s in successors)

    def test_enumerated_repeat_range_pairs_ordered(self):
        config = SynthesisConfig(use_symbolic_ints=False, max_enum_int=3)
        sketch = parse_sketch("RepeatRange(Hole(<num>),?,?)")
        root = initial_partial(sketch)
        successors = expand(root, root, config, SymIntFactory())
        for successor in successors:
            low, high = successor.ints
            assert low <= high

    def test_default_char_classes_include_example_punctuation(self):
        leaves = default_char_classes(".9a")
        assert literal(".") in leaves
        assert literal("9") not in leaves  # alphanumerics covered by classes


class TestApproximation:
    def test_concrete_sketch_exact(self):
        over, under = approximate_sketch(concrete(Repeat(NUM, 2)))
        assert over == Repeat(NUM, 2)
        assert under == Repeat(NUM, 2)

    def test_hole_depth_one_or_and(self):
        sketch = hole(NUM, literal(","))
        over, under = approximate_sketch(sketch, hole_depth=1)
        assert matches(over, "5") and matches(over, ",")
        assert not matches(under, "5")  # under = And(<num>, <,>) which is empty

    def test_hole_deep_is_top_bottom(self):
        over, under = approximate_sketch(hole(NUM), hole_depth=3)
        assert matches(over, "anything at all")
        assert not matches(under, "")

    def test_not_swaps_approximations(self):
        sketch = parse_sketch("Not(Hole(<,>,RepeatRange(<num>,1,3)))")
        over, under = approximate_sketch(sketch, hole_depth=1)
        # Paper Section 2: the under-approximation is Not(Or(<,>, RepeatRange(<num>,1,3))).
        assert not matches(under, ",")
        assert not matches(under, "12")
        assert matches(under, "1234567891234567")

    def test_paper_figure3_partial_regex_pruned(self):
        """The partial regex of Figure 3 is rejected via its under-approximation."""
        inner = parse_sketch("Hole(<,>,RepeatRange(<num>,1,3))")
        partial = POp("Concat", (PLeaf(NUM), POp("Not", (POpen(HoleLabel(inner.components, 1)),))))
        over, under = approximate_partial(partial)
        negative = "1234567891234567"
        assert matches(under, negative)
        examples = Examples(
            ["123456789.123", "12345.1"], [negative]
        )
        assert infeasible(partial, examples, SynthesisConfig())

    def test_symbolic_repeat_approximation(self):
        partial = POp("Repeat", (PLeaf(NUM),), (SymInt("k1"),))
        over, under = approximate_partial(partial)
        assert matches(over, "123")
        assert not matches(under, "123")

    def test_free_label_top_bottom(self):
        partial = POpen(FreeLabel((), 2))
        over, under = approximate_partial(partial)
        assert matches(over, "xyz")
        assert not matches(under, "xyz")

    def test_feasible_partial_not_pruned(self):
        sketch = parse_sketch("Concat(Hole(<num>,<,>),Hole(RepeatRange(<num>,1,3),<,>))")
        partial = initial_partial(sketch)
        examples = Examples(["123456789.123"], ["1.12345"])
        assert not infeasible(partial, examples, SynthesisConfig())

    def test_enum_variant_never_prunes(self):
        config = SynthesisConfig(use_approximation=False)
        partial = PLeaf(literal("z"))
        examples = Examples(["123"], [])
        assert not infeasible(partial, examples, config)
