"""Tests for the semantic parser: tokenizer, lexicon, grammar, parsing, training."""

import pytest

from repro.dsl import (
    Concat,
    LET,
    NUM,
    Repeat,
    RepeatAtLeast,
    RepeatRange,
    literal,
    to_dsl_string,
)
from repro.nlp import ChartParser, LogLinearModel, SemanticParser, tokenize
from repro.nlp.lexicon import LEXICON, entries_by_first_lemma, max_phrase_length
from repro.nlp.sketch_gen import concretize_sketch
from repro.sketch import ConcreteRegexSketch, Hole, OpSketch, sketch_contains, sketch_to_string


class TestTokenizer:
    def test_basic_tokenisation(self):
        tokens = tokenize("the max number of digits is 15")
        lemmas = [t.lemma for t in tokens]
        assert "digit" in lemmas
        assert any(t.number == 15 for t in tokens)

    def test_plural_stripping(self):
        tokens = tokenize("numbers letters commas")
        assert [t.lemma for t in tokens] == ["number", "letter", "comma"]

    def test_number_words(self):
        tokens = tokenize("three letters")
        assert tokens[0].number == 3

    def test_quoted_strings(self):
        tokens = tokenize('must start with "abc" then digits')
        quoted = [t for t in tokens if t.quoted is not None]
        assert len(quoted) == 1
        assert quoted[0].quoted == "abc"

    def test_keep_s_words(self):
        tokens = tokenize("this is less")
        assert [t.lemma for t in tokens] == ["this", "is", "less"]


class TestLexicon:
    def test_lexicon_size_comparable_to_paper(self):
        # The paper reports ~70 lexical rules; ours is intentionally larger to
        # cover both datasets without SEMPRE's preprocessor.
        assert len(LEXICON) >= 70

    def test_no_duplicate_entries(self):
        seen = set()
        for entry in LEXICON:
            key = (entry.phrase, entry.category)
            assert key not in seen, key
            seen.add(key)

    def test_index_and_phrase_length(self):
        index = entries_by_first_lemma()
        assert "digit" in index
        assert max_phrase_length() >= 3


class TestChartParser:
    def test_simple_repeat_phrase(self):
        parser = ChartParser()
        roots = parser.parse("3 digits")
        assert roots
        values = [r.value for r in roots]
        assert any(
            isinstance(v, ConcreteRegexSketch) and v.regex == Repeat(NUM, 3) for v in values
        )

    def test_at_most_phrase(self):
        parser = ChartParser()
        roots = parser.parse("at most 3 numbers")
        assert any(
            isinstance(r.value, ConcreteRegexSketch)
            and r.value.regex == RepeatRange(NUM, 1, 3)
            for r in roots
        )

    def test_concat_with_skipped_words(self):
        parser = ChartParser()
        roots = parser.parse("2 letters followed by 3 digits please")
        target = Concat(Repeat(LET, 2), Repeat(NUM, 3))
        assert any(
            isinstance(r.value, ConcreteRegexSketch) and r.value.regex == target
            for r in roots
        )

    def test_quoted_literal(self):
        parser = ChartParser()
        roots = parser.parse('starts with "ab"')
        rendered = [
            to_dsl_string(concretize_sketch(r.value))
            for r in roots
            if concretize_sketch(r.value) is not None
        ]
        assert any("StartsWith" in text and "<a>" in text for text in rendered)


class TestSemanticParser:
    def test_sketches_for_motivating_example(self):
        """The Section 2 StackOverflow description yields a useful sketch."""
        parser = SemanticParser()
        text = (
            "the max number of digits before comma is 15 then accept "
            "at max 3 numbers after the comma"
        )
        sketches = parser.sketches(text, k=25)
        assert sketches
        # At least one sketch must contain the RepeatRange(<num>,1,3) hint the
        # paper highlights, and at least one must be rooted at Concat.
        rendered = [sketch_to_string(s) for s in sketches]
        assert any("RepeatRange(<num>,1,3)" in text for text in rendered)
        assert any(text.startswith("Concat(") for text in rendered)

    def test_sketches_deduplicated(self):
        parser = SemanticParser()
        sketches = parser.sketches("3 digits then a comma", k=25)
        rendered = [sketch_to_string(s) for s in sketches]
        assert len(rendered) == len(set(rendered))

    def test_fallback_to_unconstrained_hole(self):
        parser = SemanticParser()
        sketches = parser.sketches("completely unrelated gibberish qqq", k=5)
        assert sketches
        assert sketches[0] == Hole(())

    def test_translate_direct(self):
        parser = SemanticParser()
        regex = parser.translate("5 lower case letters")
        assert regex == Repeat(literal("l"), 5) or regex is not None

    def test_gold_sketch_is_reachable(self):
        """The gold sketch of the user-study style task is among the parses."""
        parser = SemanticParser()
        text = "only if either first 2 letters alpha or 8 numeric"
        sketches = parser.sketches(text, k=50)
        assert sketches


class TestTraining:
    def test_training_improves_gold_rank(self):
        examples = [
            ("3 digits then a comma", "Concat(Hole(Repeat(<num>,3)),Hole(<,>))"),
            ("a comma then 3 digits", "Concat(Hole(<,>),Hole(Repeat(<num>,3)))"),
            ("2 letters then a dash", "Concat(Hole(Repeat(<let>,2)),Hole(<->))"),
        ]
        parser = SemanticParser()
        stats = parser.train(examples, epochs=2, learning_rate=0.2)
        assert stats["examples"] == 3.0
        # After training, the gold sketch for a training utterance should rank
        # within the top sketches.
        sketches = parser.sketches("3 digits then a comma", k=10)
        rendered = [sketch_to_string(s) for s in sketches]
        assert "Concat(Hole(Repeat(<num>,3)),Hole(<,>))" in rendered

    def test_model_save_load_round_trip(self, tmp_path):
        model = LogLinearModel({"rule:prog_repeat": 1.5})
        path = tmp_path / "weights.json"
        model.save(path)
        loaded = LogLinearModel.load(path)
        assert loaded.weights == model.weights
