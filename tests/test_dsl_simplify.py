"""Tests for regex structural utilities and simplification rewrites."""

from hypothesis import given, settings, strategies as st

from repro.dsl import (
    ANY,
    Concat,
    Epsilon,
    KleeneStar,
    LET,
    NUM,
    Not,
    Optional,
    Or,
    Repeat,
    RepeatRange,
    literal,
    matches,
    simplify,
)
from repro.dsl.simplify import (
    char_classes_used,
    depth,
    expressible_in_fidex,
    expressible_in_flashfill,
    operators_used,
    size,
)
from repro.dsl.ast import RepeatAtLeast


class TestStructuralMetrics:
    def test_size_and_depth(self):
        regex = Concat(Repeat(NUM, 3), Optional(LET))
        assert size(regex) == 5
        assert depth(regex) == 3

    def test_operators_used(self):
        regex = Concat(Repeat(NUM, 3), Optional(LET))
        assert operators_used(regex) == {"Concat", "Repeat", "Optional"}

    def test_char_classes_used(self):
        regex = Or(NUM, Concat(LET, literal("-")))
        assert char_classes_used(regex) == {NUM, LET, literal("-")}


class TestSimplify:
    def test_or_idempotent(self):
        assert simplify(Or(NUM, NUM)) == NUM

    def test_double_negation(self):
        assert simplify(Not(Not(NUM))) == NUM

    def test_nested_optional_and_star(self):
        assert simplify(Optional(Optional(NUM))) == Optional(NUM)
        assert simplify(KleeneStar(KleeneStar(NUM))) == KleeneStar(NUM)
        assert simplify(Optional(KleeneStar(NUM))) == KleeneStar(NUM)
        assert simplify(KleeneStar(Optional(NUM))) == KleeneStar(NUM)

    def test_repeat_one(self):
        assert simplify(Repeat(NUM, 1)) == NUM
        assert simplify(RepeatRange(NUM, 2, 2)) == Repeat(NUM, 2)

    def test_concat_epsilon(self):
        assert simplify(Concat(Epsilon(), NUM)) == NUM
        assert simplify(Concat(NUM, Epsilon())) == NUM

    @given(
        st.recursive(
            st.sampled_from([NUM, LET, literal(".")]),
            lambda c: st.one_of(
                st.builds(Optional, c),
                st.builds(KleeneStar, c),
                st.builds(Not, c),
                st.builds(Concat, c, c),
                st.builds(Or, c, c),
                st.builds(Repeat, c, st.integers(1, 2)),
            ),
            max_leaves=6,
        ),
        st.text(alphabet="a1.", max_size=4),
    )
    @settings(max_examples=120, deadline=None)
    def test_simplification_preserves_semantics(self, regex, subject):
        assert matches(simplify(regex), subject) == matches(regex, subject)


class TestDslCoverageFragments:
    def test_flashfill_fragment(self):
        assert expressible_in_flashfill(
            Concat(RepeatAtLeast(NUM, 1), RepeatAtLeast(LET, 1))
        )
        assert not expressible_in_flashfill(Concat(Repeat(NUM, 3), RepeatAtLeast(LET, 1)))
        assert not expressible_in_flashfill(Or(NUM, LET))

    def test_fidex_fragment(self):
        assert expressible_in_fidex(Concat(Repeat(NUM, 3), literal("-")))
        assert not expressible_in_fidex(Or(NUM, LET))
        assert not expressible_in_fidex(KleeneStar(Concat(NUM, LET)))
