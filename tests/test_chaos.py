"""Chaos suite: the service under deterministic, seeded fault injection.

Every scenario here arms a :mod:`repro.faults` plan, drives the real
production code paths (no mocks of the failing layer), and asserts the
self-healing contract: corrupt cache entries quarantine as misses, failing
backends trip the breaker into degraded-but-serving mode, wedged jobs are
settled by the watchdog, torn batch snapshots replay from the journal, and
clients retry transient faults to success — with every injected fault either
retried, degraded around, or surfaced as a typed error.  Nothing hangs and
no batch item is ever lost.
"""

import json
import time

import pytest

from repro import faults
from repro.api import Problem, RunReport
from repro.faults import InjectedFault
from repro.service import (
    JobLostError,
    JsonDirCache,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceState,
    SqliteCache,
    WorkerPool,
    start_server,
)
from repro.service.batch import BatchRecord, BatchStore, _journal_path
from repro.service.pool import Job

FAST_PROBLEM = Problem(
    "3 digits", positive=["123", "456"], negative=["12", "abcd"], budget=10.0
)


@pytest.fixture(autouse=True)
def disarm():
    """An armed plan outliving its test would fault the rest of the suite."""
    yield
    faults.configure(None)


def _open_cache(kind, tmp_path, **kwargs):
    if kind == "json":
        return JsonDirCache(tmp_path / "cache", **kwargs)
    return SqliteCache(tmp_path / "cache.sqlite", **kwargs)


# ---------------------------------------------------------------------------
# Cache: quarantine, circuit breaker, crash consistency
# ---------------------------------------------------------------------------


class TestCacheQuarantine:
    @pytest.mark.parametrize("kind", ["json", "sqlite"])
    def test_corrupt_entry_is_a_miss_not_an_error(self, kind, tmp_path):
        cache = _open_cache(kind, tmp_path)
        key = "a" * 64
        cache.put(key, {"solved": True})
        if kind == "json":
            (tmp_path / "cache" / f"{key}.json").write_text("{torn mid-wri")
        else:
            cache._db.execute(
                "UPDATE entries SET report = '[torn' WHERE key = ?", (key,)
            )
            cache._db.commit()
        assert cache.get(key) is None
        stats = cache.stats()
        assert stats["quarantined"] == 1
        assert stats["breaker"]["state"] == "closed"  # corruption != backend down
        # The entry is gone for good: the next get is a plain miss.
        assert cache.get(key) is None
        assert cache.stats()["quarantined"] == 1
        cache.close()

    def test_quarantined_file_kept_for_inspection(self, tmp_path):
        cache = JsonDirCache(tmp_path / "cache")
        key = "b" * 64
        cache.put(key, {"v": 1})
        (tmp_path / "cache" / f"{key}.json").write_text("not json")
        assert cache.get(key) is None
        assert (tmp_path / "cache" / f"{key}.quarantined").is_file()
        assert len(cache) == 0  # excluded from the store and its LRU scan
        cache.close()


class TestCacheBreaker:
    @pytest.mark.parametrize("kind", ["json", "sqlite"])
    def test_breaker_trips_and_recovers(self, kind, tmp_path):
        cache = _open_cache(
            kind, tmp_path, breaker_threshold=3, breaker_cooldown=0.05
        )
        key = "c" * 64
        cache.put(key, {"v": 1})
        faults.configure("cache.read:p=1")
        for _ in range(3):
            assert cache.get(key) is None  # absorbed failures, miss semantics
        stats = cache.stats()
        assert stats["read_errors"] == 3
        assert stats["breaker"]["state"] == "open" and stats["breaker"]["trips"] == 1
        assert not cache.healthy()
        # While open: short-circuit miss, no backend touch, faults keep off.
        assert cache.get(key) is None
        cache.put(key, {"v": 2})  # skipped, not an error
        assert cache.stats()["read_errors"] == 3
        # After the cooldown a probe goes through; the backend healed
        # (faults disarmed), so the breaker closes and hits resume.
        faults.configure(None)
        time.sleep(0.06)
        assert cache.get(key) == {"v": 1}
        assert cache.healthy()
        assert cache.stats()["breaker"]["state"] == "closed"
        cache.close()

    def test_write_successes_do_not_mask_a_failing_read_path(self, tmp_path):
        # Error streaks are per path: in live traffic every failed read is
        # followed by a successful write-through of the re-solved report,
        # and that steady interleaving must still trip the breaker.
        cache = JsonDirCache(
            tmp_path / "cache", breaker_threshold=3, breaker_cooldown=60.0
        )
        faults.configure("cache.read:p=1")
        key = "b" * 64
        for version in range(3):
            assert cache.get(key) is None
            cache.put(key, {"v": version})
        assert not cache.healthy()
        stats = cache.stats()
        assert stats["breaker"]["state"] == "open"
        assert stats["read_errors"] == 3 and stats["write_errors"] == 0
        cache.close()

    def test_failed_probe_rearms_the_cooldown(self, tmp_path):
        cache = JsonDirCache(
            tmp_path / "cache", breaker_threshold=2, breaker_cooldown=0.05
        )
        faults.configure("cache.read:p=1")
        key = "d" * 64
        cache.get(key), cache.get(key)
        assert not cache.healthy()
        time.sleep(0.06)
        assert cache.get(key) is None  # probe fires, fails, re-opens
        assert not cache.healthy()
        assert cache.stats()["read_errors"] == 3
        cache.close()


class TestCacheCrashConsistency:
    @pytest.mark.parametrize("kind", ["json", "sqlite"])
    def test_write_killed_midway_leaves_no_torn_entry(self, kind, tmp_path):
        cache = _open_cache(kind, tmp_path)
        key = "e" * 64
        faults.configure("cache.write:nth=1")
        cache.put(key, {"v": 1})  # dies at the commit point, absorbed
        assert cache.stats()["write_errors"] == 1
        faults.configure(None)
        cache.close()
        reopened = _open_cache(kind, tmp_path)
        assert reopened.get(key) is None  # a clean miss, never a torn read
        reopened.put(key, {"v": 2})
        assert reopened.get(key) == {"v": 2}
        reopened.close()

    @pytest.mark.parametrize("kind", ["json", "sqlite"])
    def test_overwrite_killed_midway_preserves_old_value(self, kind, tmp_path):
        cache = _open_cache(kind, tmp_path)
        key = "f" * 64
        cache.put(key, {"v": "old"})
        faults.configure("cache.write:nth=1")
        cache.put(key, {"v": "new"})  # killed before the rename/commit
        faults.configure(None)
        cache.close()
        reopened = _open_cache(kind, tmp_path)
        assert reopened.get(key) == {"v": "old"}
        reopened.close()


# ---------------------------------------------------------------------------
# Batch records: journal replay and persist crash consistency
# ---------------------------------------------------------------------------


class TestBatchJournalRecovery:
    def _record_with_history(self, tmp_path):
        store = BatchStore(tmp_path / "batches")
        record = store.create()
        record.append_item("queued", cache_key="k0")
        record.append_item("queued", cache_key="k1")
        record.update_item(0, "solved", regex="Repeat(<num>,3)")
        record.update_item(1, "cached", regex="<num>")
        return record

    def test_snapshot_killed_midway_recovers_from_journal(self, tmp_path):
        record = self._record_with_history(tmp_path)
        faults.configure("batch.persist:nth=1")
        record.save()  # dies at the rename; absorbed and counted
        faults.configure(None)
        assert record.persist_errors == 1
        loaded = BatchRecord.load(record.path)
        assert [item["status"] for item in loaded.items] == ["solved", "cached"]
        assert loaded.recovered  # the journal supplied what the snapshot lost

    def test_corrupt_snapshot_rebuilds_entirely_from_journal(self, tmp_path):
        record = self._record_with_history(tmp_path)
        record.save()
        record.path.write_text("{torn json!")
        loaded = BatchRecord.load(record.path)
        assert loaded.batch_id == record.batch_id
        assert loaded.items == record.items
        assert loaded.recovered

    def test_torn_trailing_journal_line_is_skipped(self, tmp_path):
        record = self._record_with_history(tmp_path)
        with open(_journal_path(record.path), "a", encoding="utf-8") as handle:
            handle.write('{"seq": 99, "index"')  # the line a crash interrupted
        record.path.write_text("{torn json!")
        loaded = BatchRecord.load(record.path)
        assert [item["status"] for item in loaded.items] == ["solved", "cached"]

    def test_journal_without_snapshot_is_loadable(self, tmp_path):
        record = self._record_with_history(tmp_path)
        record.path.unlink()  # crashed before the first successful save
        store = BatchStore(tmp_path / "batches")
        loaded = store.get(record.batch_id)
        assert loaded is not None
        assert [item["status"] for item in loaded.items] == ["solved", "cached"]
        assert store.stats()["recovered"] == 1

    def test_replayed_record_continues_journaling_safely(self, tmp_path):
        record = self._record_with_history(tmp_path)
        record.path.write_text("{torn json!")
        loaded = BatchRecord.load(record.path)
        seq_after_load = loaded.journal_seq
        loaded.append_item("queued", cache_key="k2")
        assert loaded.journal_seq == seq_after_load + 1  # no seq reuse
        loaded.save()
        reloaded = BatchRecord.load(record.path)
        assert len(reloaded.items) == 3

    def test_unusable_snapshot_and_journal_is_a_clean_404(self, tmp_path):
        store = BatchStore(tmp_path / "batches")
        record = store.create()
        record.path.write_text("{torn")
        _journal_path(record.path).write_text("{also torn")
        fresh = BatchStore(tmp_path / "batches")
        assert fresh.get(record.batch_id) is None
        assert fresh.stats()["load_errors"] == 1


# ---------------------------------------------------------------------------
# Pool watchdog
# ---------------------------------------------------------------------------


class _InstantSession:
    last_report = None

    def iter_solutions(self, problem, cancel=None):
        self.last_report = RunReport(problem=problem)
        return iter(())


class TestPoolWatchdog:
    def test_wedged_job_is_settled_as_failed(self):
        # An injected hang at pool.job is a worker wedged in non-cooperative
        # code; the watchdog must settle the job so pollers get an answer.
        faults.configure("pool.job:nth=1:kind=hang:sleep=30")
        pool = WorkerPool(
            lambda: _InstantSession(),
            workers=1,
            queue_size=2,
            watchdog_grace=0.2,
            watchdog_interval=0.05,
        )
        try:
            job = Job(Problem("wedge", positive=["1"], budget=0.2))
            pool.submit(job)
            assert job.wait(timeout=10.0)
            assert job.status == "failed"
            assert "watchdog" in (job.error or "")
            stats = pool.stats()
            assert stats["watchdog_failed"] == 1 and stats["failed"] == 1
            # The hang honours the watchdog's cancel, so the worker unwedges
            # and the pool reports healthy again.
            deadline = time.monotonic() + 5.0
            while not pool.healthy() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.healthy()
        finally:
            faults.configure(None)
            pool.close()

    def test_healthy_jobs_never_trip_the_watchdog(self):
        pool = WorkerPool(
            lambda: _InstantSession(),
            workers=1,
            queue_size=2,
            watchdog_grace=0.2,
            watchdog_interval=0.05,
        )
        try:
            job = Job(FAST_PROBLEM)
            pool.submit(job)
            assert job.wait(timeout=5.0)
            assert job.status == "done"
            assert pool.stats()["watchdog_failed"] == 0
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Degraded health reporting
# ---------------------------------------------------------------------------


class TestDegradedHealth:
    def test_open_breaker_degrades_healthz(self, tmp_path):
        cache = JsonDirCache(
            tmp_path / "cache", breaker_threshold=2, breaker_cooldown=0.05
        )
        config = ServiceConfig(
            port=0, workers=1, cache_backend="json", cache_path=str(tmp_path / "cache")
        )
        state = ServiceState(config, cache=cache)
        try:
            status, payload = state.handle_healthz()
            assert status == 200 and payload["status"] == "ok"
            assert payload["subsystems"] == {"cache": "ok", "pool": "ok"}
            faults.configure("cache.read:p=1")
            cache.get("a" * 64), cache.get("a" * 64)
            status, payload = state.handle_healthz()
            assert status == 200  # degraded is still alive
            assert payload["status"] == "degraded"
            assert payload["subsystems"]["cache"] == "degraded"
            _, stats = state.handle_stats()
            assert stats["health"]["status"] == "degraded"
            assert stats["cache"]["breaker"]["state"] == "open"
            # Self-healing: disarm, cooldown, probe, and health recovers.
            faults.configure(None)
            time.sleep(0.06)
            cache.get("a" * 64)
            status, payload = state.handle_healthz()
            assert payload["status"] == "ok"
        finally:
            faults.configure(None)
            state.close()


# ---------------------------------------------------------------------------
# Client retry / backoff / JobLostError
# ---------------------------------------------------------------------------


@pytest.fixture()
def retry_server(tmp_path):
    config = ServiceConfig(
        port=0,
        workers=1,
        cache_backend="null",
        cache_path=str(tmp_path / "cache"),
        batch_dir=str(tmp_path / "batches"),
        sketches=8,
    )
    live = start_server(config)
    yield live
    live.close()


def _retry_client(server, retries=3):
    host, port = server.server_address[:2]
    return ServiceClient(
        f"http://{host}:{port}",
        timeout=30.0,
        retries=retries,
        backoff_base=0.01,
        backoff_cap=0.05,
        retry_seed=7,
    )


class TestClientRetry:
    def test_transient_connection_fault_is_retried_to_success(self, retry_server):
        client = _retry_client(retry_server)
        faults.configure("client.request:nth=1")
        body = client.healthz()
        assert body["status"] in ("ok", "degraded")
        assert client.retries_performed == 1

    def test_retry_budget_exhaustion_surfaces_the_fault(self, retry_server):
        client = _retry_client(retry_server, retries=1)
        faults.configure("client.request:p=1")
        with pytest.raises(InjectedFault):
            client.healthz()
        assert client.retries_performed == 1

    def test_retries_zero_disables_retrying(self, retry_server):
        client = _retry_client(retry_server, retries=0)
        faults.configure("client.request:nth=1")
        with pytest.raises(InjectedFault):
            client.healthz()
        assert client.retries_performed == 0

    def test_batch_create_is_never_blind_retried(self, retry_server):
        # Creating a batch is the one non-idempotent request: a retry after
        # an ambiguous failure could register the batch twice.
        client = _retry_client(retry_server)
        lines = [json.dumps(FAST_PROBLEM.to_dict())]
        faults.configure("client.request:nth=1")
        with pytest.raises(ConnectionError):
            client.submit_batch(lines)
        assert client.retries_performed == 0

    def test_batch_resume_is_retried(self, retry_server):
        client = _retry_client(retry_server)
        problem = Problem("resume retry", positive=["1"], budget=0.001)
        receipt = client.submit_batch([json.dumps(problem.to_dict())])
        client.wait_batch(receipt["batch_id"], timeout=30)
        faults.configure("client.request:nth=1")
        second = client.submit_batch(
            [json.dumps(problem.to_dict())], batch_id=receipt["batch_id"]
        )
        assert second["batch_id"] == receipt["batch_id"]
        assert client.retries_performed >= 1

    def test_retryability_policy(self):
        client = ServiceClient("http://127.0.0.1:1")
        saturated = ServiceError(429, "saturated", "busy")
        flaky = ServiceError(503, "internal", "hiccup")
        engine = ServiceError(500, "engine_error", "synthesis failed")
        assert client._retryable_response(saturated, idempotent=False)
        assert client._retryable_response(flaky, idempotent=True)
        assert not client._retryable_response(flaky, idempotent=False)
        # A deterministic engine failure would just re-fail identically.
        assert not client._retryable_response(engine, idempotent=True)
        assert not client._retryable_response(
            ServiceError(422, "unsatisfiable", "no"), idempotent=True
        )

    def test_backoff_grows_honours_retry_after_and_caps(self):
        client = ServiceClient(
            "http://127.0.0.1:1", backoff_base=0.1, backoff_cap=2.0, retry_seed=1
        )
        first = client._backoff(0, None)
        assert 0.05 <= first <= 0.1
        assert client._backoff(0, 0.5) >= 0.5  # Retry-After floors the delay
        assert client._backoff(10, None) <= 2.0  # cap beats exponent
        assert client._backoff(0, 60.0) <= 2.0  # cap beats Retry-After too

    def test_lost_job_surfaces_as_typed_error(self):
        client = ServiceClient("http://127.0.0.1:1", retries=0)
        client.submit = lambda problem: {
            "job_id": "feed" * 8,
            "status": "queued",
            "solutions": [],
        }

        def lost(job_id):
            raise ServiceError(404, "not_found", f"no such job: {job_id}")

        client.job = lost
        with pytest.raises(JobLostError) as info:
            list(client.iter_solutions(FAST_PROBLEM, poll_interval=0.01))
        assert info.value.job_id == "feed" * 8
        assert info.value.code == "job_lost"
        assert "resubmit" in str(info.value)
        assert isinstance(info.value, ServiceError)  # old handlers still catch


# ---------------------------------------------------------------------------
# Live chaos smoke: the whole stack under a seeded schedule
# ---------------------------------------------------------------------------


class TestLiveChaosSmoke:
    SPEC = (
        "seed=7;"
        "cache.read:p=0.1;cache.write:p=0.1;"
        "batch.persist:p=0.05;batch.ingest:p=0.05;"
        "server.response:p=0.03;client.request:p=0.03"
    )

    def test_seeded_chaos_roundtrip(self, tmp_path):
        faults.configure(self.SPEC)
        config = ServiceConfig(
            port=0,
            workers=2,
            cache_backend="json",
            cache_path=str(tmp_path / "cache"),
            batch_dir=str(tmp_path / "batches"),
            sketches=8,
        )
        live = start_server(config)
        try:
            host, port = live.server_address[:2]
            client = ServiceClient(
                f"http://{host}:{port}",
                timeout=30.0,
                retries=5,
                backoff_base=0.02,
                backoff_cap=0.2,
                retry_seed=7,
            )
            # Interactive solves: each must terminate (answer or typed error).
            solved = 0
            for n in range(2, 6):
                problem = Problem(
                    f"{n} chaos digits",
                    positive=["1" * n, "2" * n],
                    negative=["a"],
                    budget=10.0,
                )
                try:
                    report = client.solve(problem)
                    solved += 1
                    assert report.cache_key == problem.cache_key()
                except OSError:
                    pass  # surfaced as a typed/connection error: acceptable
            assert solved >= 1

            # Batch ingestion: create (with manual re-create on ambiguous
            # failure, mirroring what an operator's tooling would do), then
            # resume by id until every item is terminal.
            problems = [
                json.dumps(
                    Problem(
                        f"{n} chaos batch digits",
                        positive=["3" * n],
                        negative=["b"],
                        budget=10.0,
                    ).to_dict()
                )
                for n in range(2, 6)
            ]
            receipt = None
            for _ in range(20):
                try:
                    receipt = client.submit_batch(problems)
                    break
                except OSError:
                    time.sleep(0.05)
            assert receipt is not None
            batch_id = receipt["batch_id"]

            deadline = time.monotonic() + 120.0
            summary = None
            while time.monotonic() < deadline:
                try:
                    summary = client.batch_status(batch_id, limit=1)
                except OSError:
                    time.sleep(0.1)
                    continue
                if summary["done"]:
                    break
                try:
                    # Re-POST the stream: terminal and live items are
                    # skipped, stranded ones re-ingested.
                    client.submit_batch(problems, batch_id=batch_id)
                except OSError:
                    pass
                time.sleep(0.2)
            assert summary is not None and summary["done"], "batch never settled"
            # No item lost: every line is accounted for and terminal.
            assert summary["total"] == len(problems)
            assert summary["counts"]["queued"] == 0
            assert sum(summary["counts"].values()) == len(problems)

            # The schedule really fired, and the server kept serving.
            for _ in range(20):
                try:
                    stats = client.stats()
                    break
                except OSError:
                    time.sleep(0.05)
            assert stats["faults"]["active"] is True
            assert stats["health"]["status"] in ("ok", "degraded")
        finally:
            faults.configure(None)
            live.close()
