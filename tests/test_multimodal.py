"""Integration tests: the end-to-end Regel tool, baselines, and the interactive protocol."""

import pytest

from repro.baselines import DeepRegexBaseline, RegelPbe
from repro.datasets import Benchmark, stackoverflow_dataset
from repro.dsl import matches
from repro.multimodal import Regel, run_interactive
from repro.multimodal.regel import pbe_only_sketches
from repro.sketch import Hole
from repro.synthesis import SynthesisConfig


@pytest.fixture(scope="module")
def fast_config():
    return SynthesisConfig(timeout=6.0, hole_depth=2)


class TestRegelEndToEnd:
    def test_simple_description_and_examples(self, fast_config):
        tool = Regel(config=fast_config, num_sketches=10)
        result = tool.synthesize(
            "2 letters followed by 3 digits",
            positive=["ab123", "xy987"],
            negative=["ab12", "a123", "12345"],
            k=1,
            time_budget=8.0,
        )
        assert result.solved
        regex = result.best
        assert matches(regex, "qq000")
        assert not matches(regex, "qq00")

    def test_returns_at_most_k(self, fast_config):
        tool = Regel(config=fast_config, num_sketches=10)
        result = tool.synthesize(
            "3 digits",
            positive=["123", "456"],
            negative=["12", "1234"],
            k=3,
            time_budget=8.0,
        )
        assert 1 <= len(result.regexes) <= 3
        assert all(matches(r, "789") for r in result.regexes)

    def test_examples_disambiguate_misleading_text(self, fast_config):
        """The NL says 'comma' but the examples use a period (Section 2 situation)."""
        tool = Regel(config=fast_config, num_sketches=15)
        result = tool.synthesize(
            "numbers then a comma then at max 3 numbers",
            positive=["12.5", "1.25", "123.1"],
            negative=["12,5", "1.2345"],
            k=1,
            time_budget=8.0,
        )
        assert result.solved
        assert matches(result.best, "99.1")
        assert not matches(result.best, "99,1")

    def test_budget_limits_sketches_tried(self, fast_config):
        tool = Regel(config=fast_config, num_sketches=25)
        result = tool.synthesize(
            "letters and digits and dashes mixed somehow",
            positive=["a-1"],
            negative=["###"],
            k=1,
            time_budget=0.05,
        )
        assert result.elapsed < 5.0


class TestBaselines:
    def test_pbe_only_uses_unconstrained_hole(self):
        assert pbe_only_sketches() == [Hole(())]

    def test_pbe_only_solves_simple_task(self, fast_config):
        pbe = RegelPbe(config=fast_config)
        result = pbe.solve(["123", "456"], ["12", "abcd"], k=1, time_budget=8.0)
        assert result.solved
        assert matches(result.best, "999")

    def test_deepregex_ignores_examples(self):
        baseline = DeepRegexBaseline()
        with_examples = baseline.solve("3 digits", ["999"], ["12"])
        without_examples = baseline.solve("3 digits", [], [])
        assert with_examples == without_examples
        assert with_examples, "the stylised description should be translatable"

    def test_deepregex_returns_nothing_for_gibberish(self):
        baseline = DeepRegexBaseline()
        assert baseline.solve("zzz qqq www", [], []) == []


class TestInteractiveProtocol:
    def test_solves_immediately_when_tool_is_right(self):
        benchmark = Benchmark(
            benchmark_id="t-ok",
            description="3 digits",
            regex_text="Repeat(<num>,3)",
            positive=("123",),
            negative=("12",),
        )

        def solve(positive, negative):
            from repro.dsl import Repeat, NUM

            return [Repeat(NUM, 3)], 0.01

        session = run_interactive(benchmark, solve, max_iterations=4)
        assert session.solved_at == 0
        assert session.solved_by(0)

    def test_adds_examples_when_tool_is_wrong(self):
        benchmark = Benchmark(
            benchmark_id="t-wrong",
            description="2 to 4 digits",
            regex_text="RepeatRange(<num>,2,4)",
            positive=("12", "1234"),
            negative=("1",),
        )
        calls = []

        def solve(positive, negative):
            from repro.dsl import RepeatAtLeast, NUM

            calls.append((tuple(positive), tuple(negative)))
            return [RepeatAtLeast(NUM, 2)], 0.01

        session = run_interactive(benchmark, solve, max_iterations=2)
        assert session.solved_at is None
        assert len(calls) == 3
        # Examples must grow across iterations.
        assert len(calls[1][0]) + len(calls[1][1]) > len(calls[0][0]) + len(calls[0][1])

    def test_interactive_with_real_tool_on_benchmark(self, fast_config):
        benchmark = stackoverflow_dataset()[5]  # the percentage benchmark
        tool = Regel(config=fast_config, num_sketches=10)

        def solve(positive, negative):
            result = tool.synthesize(
                benchmark.description, positive, negative, k=3, time_budget=6.0
            )
            return result.regexes, result.elapsed

        session = run_interactive(benchmark, solve, max_iterations=1)
        assert session.outcomes
        for outcome in session.outcomes:
            assert outcome.num_positive >= len(benchmark.positive)


class TestCli:
    def test_cli_simple_invocation(self, capsys):
        from repro.cli import main

        code = main(["3 digits", "--pos", "123", "--neg", "12", "-t", "6"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Repeat" in captured.out or "<num>" in captured.out

    def test_cli_failure_exit_code(self, capsys):
        from repro.cli import main

        # Contradictory examples: the same string is both positive and negative.
        code = main(["3 digits", "--pos", "123", "--neg", "123", "-t", "1"])
        assert code == 1
