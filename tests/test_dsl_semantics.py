"""Tests for the exact matching semantics of the DSL (Figure 6)."""

import pytest

from repro.dsl import (
    ALPHANUM,
    ANY,
    And,
    CAP,
    Concat,
    Contains,
    EmptySet,
    EndsWith,
    Epsilon,
    HEX,
    KleeneStar,
    LET,
    LOW,
    Matcher,
    NUM,
    Not,
    Optional,
    Or,
    Repeat,
    RepeatAtLeast,
    RepeatRange,
    StartsWith,
    VOW,
    literal,
    matches,
)
from repro.dsl.ast import string_literal


class TestCharClasses:
    @pytest.mark.parametrize(
        "regex,good,bad",
        [
            (NUM, "7", "a"),
            (LET, "k", "5"),
            (CAP, "Q", "q"),
            (LOW, "q", "Q"),
            (ANY, "%", ""),
            (ALPHANUM, "z", "-"),
            (HEX, "f", "g"),
            (VOW, "e", "t"),
        ],
    )
    def test_single_character_classes(self, regex, good, bad):
        assert matches(regex, good)
        assert not matches(regex, bad)

    def test_char_class_rejects_longer_strings(self):
        assert not matches(NUM, "12")

    def test_literal(self):
        assert matches(literal("."), ".")
        assert not matches(literal("."), ",")


class TestBasicOperators:
    def test_epsilon(self):
        assert matches(Epsilon(), "")
        assert not matches(Epsilon(), "a")

    def test_empty_set(self):
        assert not matches(EmptySet(), "")
        assert not matches(EmptySet(), "a")

    def test_concat(self):
        regex = Concat(NUM, LET)
        assert matches(regex, "1a")
        assert not matches(regex, "a1")
        assert not matches(regex, "1")

    def test_concat_with_optional_part(self):
        regex = Concat(NUM, Optional(LET))
        assert matches(regex, "1")
        assert matches(regex, "1a")

    def test_or(self):
        regex = Or(NUM, LET)
        assert matches(regex, "3")
        assert matches(regex, "x")
        assert not matches(regex, "-")

    def test_and(self):
        regex = And(RepeatAtLeast(ALPHANUM, 1), Contains(NUM))
        assert matches(regex, "ab1")
        assert not matches(regex, "abc")

    def test_not(self):
        regex = Not(NUM)
        assert matches(regex, "a")
        assert matches(regex, "12")
        assert not matches(regex, "5")

    def test_optional(self):
        regex = Optional(NUM)
        assert matches(regex, "")
        assert matches(regex, "3")
        assert not matches(regex, "33")

    def test_kleene_star(self):
        regex = KleeneStar(NUM)
        assert matches(regex, "")
        assert matches(regex, "1")
        assert matches(regex, "12345")
        assert not matches(regex, "12a45")

    def test_kleene_star_of_composite(self):
        regex = KleeneStar(Concat(LET, NUM))
        assert matches(regex, "")
        assert matches(regex, "a1b2")
        assert not matches(regex, "a1b")


class TestContainment:
    def test_starts_with(self):
        regex = StartsWith(string_literal("ab"))
        assert matches(regex, "ab")
        assert matches(regex, "abc")
        assert not matches(regex, "cab")

    def test_ends_with(self):
        regex = EndsWith(NUM)
        assert matches(regex, "a1")
        assert matches(regex, "1")
        assert not matches(regex, "1a")

    def test_contains(self):
        regex = Contains(string_literal("cat"))
        assert matches(regex, "cat")
        assert matches(regex, "a cat!")
        assert not matches(regex, "ca t")

    def test_not_contains(self):
        regex = Not(Contains(literal("@")))
        assert matches(regex, "plain")
        assert not matches(regex, "a@b")


class TestRepetition:
    def test_repeat_exact(self):
        regex = Repeat(NUM, 3)
        assert matches(regex, "123")
        assert not matches(regex, "12")
        assert not matches(regex, "1234")

    def test_repeat_of_composite(self):
        regex = Repeat(Concat(LET, NUM), 2)
        assert matches(regex, "a1b2")
        assert not matches(regex, "a1b")

    def test_repeat_at_least(self):
        regex = RepeatAtLeast(NUM, 2)
        assert not matches(regex, "1")
        assert matches(regex, "12")
        assert matches(regex, "123456")

    def test_repeat_range(self):
        regex = RepeatRange(NUM, 2, 4)
        assert not matches(regex, "1")
        assert matches(regex, "12")
        assert matches(regex, "1234")
        assert not matches(regex, "12345")


class TestMotivatingExample:
    """The decimal(18,3) regex from Section 2 of the paper."""

    regex = Concat(
        RepeatRange(NUM, 1, 15),
        Optional(Concat(literal("."), RepeatRange(NUM, 1, 3))),
    )

    @pytest.mark.parametrize(
        "example",
        ["123456789.123", "123456789123456.12", "12345.1", "123456789123456"],
    )
    def test_positive_examples(self, example):
        assert matches(self.regex, example)

    @pytest.mark.parametrize(
        "example",
        ["1234567891234567", "123.1234", "1.12345", ".1234"],
    )
    def test_negative_examples(self, example):
        assert not matches(self.regex, example)


class TestMatcherReuse:
    def test_matcher_answers_many_regexes(self):
        matcher = Matcher("ab12")
        assert matcher.matches(RepeatAtLeast(ALPHANUM, 1))
        assert not matcher.matches(RepeatAtLeast(NUM, 1))
        assert matcher.matches(Concat(Repeat(LET, 2), Repeat(NUM, 2)))

    def test_matcher_empty_subject(self):
        matcher = Matcher("")
        assert matcher.matches(KleeneStar(ANY))
        assert not matcher.matches(ANY)
