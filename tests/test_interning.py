"""Regression tests for hash-consing and the caches built on top of it."""

import pickle

import pytest

from repro.caches import CACHE_LOCK, registered_caches
from repro.dsl import ast as r
from repro.dsl.parser import parse_regex
from repro.dsl.semantics import Matcher
from repro.sketch import hole, parse_sketch
from repro.synthesis import (
    APPROX_CACHE_STATS,
    Examples,
    PLeaf,
    POp,
    POpen,
    SynthesisConfig,
    Synthesizer,
    approximate_partial,
    open_nodes,
)
from repro.synthesis.partial import FreeLabel, replace_node


def _clear_membership_masks() -> None:
    """Empty the process-global batched-membership cache.

    Tests that assert ``eval_cache_misses > 0`` need the first lookup of their
    (regex, subjects) keys to actually miss; any earlier test in the process
    may have warmed the shared cache with the same keys.
    """
    masks = registered_caches()["synthesis.membership_masks"]
    with CACHE_LOCK:
        masks.clear()


class TestRegexInterning:
    def test_equal_structure_is_identical_object(self):
        a = r.Concat(r.NUM, r.Optional(r.literal(".")))
        b = r.Concat(r.NUM, r.Optional(r.literal(".")))
        assert a is b

    def test_subtrees_are_shared(self):
        inner = r.Repeat(r.NUM, 3)
        outer = r.Or(r.Repeat(r.NUM, 3), r.LET)
        assert outer.left is inner

    def test_parser_returns_canonical_nodes(self):
        text = "Concat(RepeatRange(<num>,1,15),Optional(Concat(<.>,RepeatRange(<num>,1,3))))"
        assert parse_regex(text) is parse_regex(text)

    def test_predefined_singletons_are_canonical(self):
        from repro.dsl.charclass import CharClassKind

        assert r.CharClass(CharClassKind.NUM) is r.NUM
        assert r.literal("a") is r.CharClass("a")

    def test_distinct_structure_distinct_objects(self):
        assert r.Or(r.NUM, r.ANY) is not r.And(r.NUM, r.ANY)
        assert r.Repeat(r.NUM, 2) is not r.Repeat(r.NUM, 3)
        assert r.Concat(r.NUM, r.LET) != r.Concat(r.LET, r.NUM)

    def test_validation_still_raises(self):
        with pytest.raises(ValueError):
            r.Repeat(r.NUM, 0)
        with pytest.raises(ValueError):
            r.RepeatRange(r.NUM, 3, 1)

    def test_pickle_reinterns(self):
        node = r.Concat(r.RepeatAtLeast(r.ALPHANUM, 2), r.Not(r.Contains(r.SPEC)))
        assert pickle.loads(pickle.dumps(node)) is node

    def test_hash_stable_and_usable_in_sets(self):
        assert len({r.Repeat(r.NUM, 2), r.Repeat(r.NUM, 2), r.Repeat(r.NUM, 3)}) == 2


class TestPartialInterning:
    def test_equal_partials_are_identical(self):
        a = POp("Concat", (PLeaf(r.NUM), POpen(hole(r.NUM))))
        b = POp("Concat", (PLeaf(r.NUM), POpen(hole(r.NUM))))
        assert a is b

    def test_replace_node_replaces_only_leftmost_occurrence(self):
        # With hash-consing the two free sibling positions are the *same*
        # object; expansion must still instantiate exactly one position.
        free = POpen(FreeLabel((), 1))
        partial = POp("Concat", (free, free))
        assert partial.children[0] is partial.children[1]
        result = replace_node(partial, free, PLeaf(r.NUM))
        assert result.children[0] == PLeaf(r.NUM)
        assert result.children[1] is free
        assert len(open_nodes(result)) == 1


class TestEvaluationCacheSharing:
    def test_memo_hits_across_structurally_equal_candidates(self):
        matcher = Matcher("ab12")
        first = r.Concat(r.Repeat(r.LET, 2), r.Repeat(r.NUM, 2))
        assert matcher.matches(first)
        misses_after_first = matcher.cache_misses
        hits_after_first = matcher.cache_hits
        # A separately constructed but structurally equal candidate must be
        # answered entirely from cache.
        second = r.Concat(r.Repeat(r.LET, 2), r.Repeat(r.NUM, 2))
        assert matcher.matches(second)
        assert matcher.cache_misses == misses_after_first
        assert matcher.cache_hits > hits_after_first

    def test_shared_subtrees_hit_across_different_candidates(self):
        matcher = Matcher("ab12")
        assert matcher.matches(r.Repeat(r.LET, 2)) is False
        misses = matcher.cache_misses
        # A different candidate reusing the same subtree only pays for the
        # genuinely new nodes: Concat, Repeat(<num>,2), its Repeat(<num>,1)
        # power, and <num> — the whole Repeat(<let>,2) subtree is a hit.
        assert matcher.matches(r.Concat(r.Repeat(r.LET, 2), r.Repeat(r.NUM, 2)))
        new_misses = matcher.cache_misses - misses
        assert new_misses <= 4

    def test_examples_aggregate_cache_stats(self):
        _clear_membership_masks()  # cold global cache => misses are deterministic
        examples = Examples(["ab"], ["cd"])
        regex = r.Repeat(r.LET, 2)
        assert examples.consistent(regex) is False  # accepts "cd" too
        hits, misses = examples.eval_cache_stats()
        assert misses > 0
        examples.consistent(regex)
        hits_again, misses_again = examples.eval_cache_stats()
        assert misses_again == misses
        assert hits_again > hits

    def test_examples_rejects_unknown_evaluator(self):
        with pytest.raises(ValueError):
            Examples(["a"], [], evaluator="nonsense")

    def test_recursive_evaluator_selectable_and_equivalent(self):
        fast = Examples(["ab1", "xy2"], ["ab", "123"])
        slow = Examples(["ab1", "xy2"], ["ab", "123"], evaluator="recursive")
        regex = r.Concat(r.RepeatAtLeast(r.LET, 1), r.NUM)
        assert fast.consistent(regex) == slow.consistent(regex) is True
        assert fast == slow  # evaluator does not affect value semantics


class TestApproximationCache:
    def test_repeated_partials_hit_cache(self):
        partial = POp("Concat", (PLeaf(r.NUM), POpen(hole(r.RepeatRange(r.NUM, 1, 3)))))
        approximate_partial(partial, 2)
        hits_before = APPROX_CACHE_STATS.hits
        again = approximate_partial(partial, 2)
        assert APPROX_CACHE_STATS.hits > hits_before
        assert again == approximate_partial(partial, 2)

    def test_spine_recomputation_reuses_subtrees(self):
        shared = POp("Repeat", (PLeaf(r.NUM),), (3,))
        left = POp("Concat", (shared, POpen(hole(r.NUM))))
        approximate_partial(left, 2)
        hits_before = APPROX_CACHE_STATS.hits
        # A sibling search state containing the same (interned) subtree only
        # recomputes its own spine.
        right = POp("Or", (shared, POpen(hole(r.LET))))
        approximate_partial(right, 2)
        assert APPROX_CACHE_STATS.hits > hits_before


class TestEngineIntegration:
    def test_engine_reports_cache_telemetry(self):
        _clear_membership_masks()  # cold global cache => misses are deterministic
        sketch = parse_sketch(
            "Concat(Hole(RepeatRange(<num>,1,15)),"
            "Hole(Optional(Concat(<.>,RepeatRange(<num>,1,3)))))"
        )
        examples = Examples(
            ["123456789.123", "123456789123456.12", "12345.1", "123456789123456"],
            ["1234567891234567", "123.1234", "1.12345", ".1234"],
        )
        config = SynthesisConfig(hole_depth=2, timeout=15.0)
        result = Synthesizer(config).synthesize(sketch, examples)
        assert result.solved
        assert result.eval_cache_hits > 0
        assert result.eval_cache_misses > 0
        assert result.approx_cache_hits > 0

    def test_subsumption_store_is_structural(self):
        engine = Synthesizer(SynthesisConfig())
        run = engine.start(parse_sketch("Hole()"), Examples(["ab"], []))
        # RepeatAtLeast(<num>, 1) rejects the positive example "ab": the
        # rejection is recorded as a per-argument count threshold ...
        assert run._consistent(r.RepeatAtLeast(r.NUM, 1), run.examples) is False
        assert run._rejected_atleast[r.NUM] == 1
        # ... so every higher count is rejected in O(1).
        assert run._consistent(r.RepeatAtLeast(r.NUM, 7), run.examples) is False
        # Contains rejections subsume StartsWith/EndsWith of the same argument.
        assert run._consistent(r.Contains(r.literal("z")), run.examples) is False
        assert r.literal("z") in run._rejected_contains
        assert run._consistent(r.StartsWith(r.literal("z")), run.examples) is False

    def test_sketch_report_round_trips_cache_fields(self):
        from repro.api.results import SketchReport

        report = SketchReport(
            index=0,
            sketch="Hole()",
            expansions=10,
            pruned=4,
            elapsed=0.1,
            solved=True,
            timed_out=False,
            eval_cache_hits=123,
            eval_cache_misses=45,
            approx_cache_hits=6,
        )
        assert SketchReport.from_dict(report.to_dict()) == report
        # Reports written before the cache counters existed still load.
        legacy = dict(report.to_dict())
        for key in ("eval_cache_hits", "eval_cache_misses", "approx_cache_hits"):
            legacy.pop(key)
        loaded = SketchReport.from_dict(legacy)
        assert loaded.eval_cache_hits == 0
