"""Property tests for the minterm alphabet (:mod:`repro.automata.minterms`).

Three invariants make minterm compression sound, and each gets a
hypothesis-driven property here:

1. the blocks *partition* the concrete alphabet (every printable character
   in exactly one block),
2. the partition *refines* every predicate it was built from (a block is
   fully inside or fully outside each predicate — never split), and
3. membership *round-trips* through the compression: a character and its
   block representative are indistinguishable to every predicate, including
   at class boundaries (the characters right at the ord-edges of a class,
   where an off-by-one in the signature computation would land).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.minterms import Alphabet, alphabet_for, predicates_of
from repro.dsl import ast as r
from repro.dsl.charclass import ALL_CHAR_CLASSES, PRINTABLE_ALPHABET, chars_of

_CLASS_PREDICATES = [chars_of(kind) for kind in ALL_CHAR_CLASSES]

#: Predicates mix the real character classes with arbitrary small character
#: sets, so the partition is exercised beyond the shapes the DSL can produce.
_PREDICATE = st.one_of(
    st.sampled_from(_CLASS_PREDICATES),
    st.sets(st.sampled_from(PRINTABLE_ALPHABET), max_size=8).map(frozenset),
)
_PREDICATES = st.lists(_PREDICATE, max_size=6)


def _boundary_chars(predicate: frozenset) -> set:
    """Characters of ``predicate`` whose ord-neighbour falls outside it.

    These are the edges of contiguous runs like ``0-9`` or ``a-z`` — exactly
    where a signature computed from ranges instead of sets would go wrong —
    plus the outside neighbours themselves when printable.
    """
    chars = set()
    for char in predicate:
        for delta in (-1, 1):
            neighbour = chr(ord(char) + delta)
            if neighbour not in predicate:
                chars.add(char)
                if neighbour in PRINTABLE_ALPHABET:
                    chars.add(neighbour)
    return chars


class TestPartition:
    @given(_PREDICATES)
    @settings(max_examples=100, deadline=None)
    def test_blocks_cover_the_alphabet_exactly_once(self, predicates):
        alphabet = Alphabet(predicates)
        union = set()
        total = 0
        for block in alphabet.blocks:
            assert block, "empty minterm block"
            union |= block
            total += len(block)
        assert union == set(PRINTABLE_ALPHABET)
        assert total == len(PRINTABLE_ALPHABET), "blocks overlap"

    @given(_PREDICATES)
    @settings(max_examples=100, deadline=None)
    def test_symbol_of_is_consistent_with_blocks(self, predicates):
        alphabet = Alphabet(predicates)
        for char in PRINTABLE_ALPHABET:
            symbol = alphabet.symbol_of(char)
            assert symbol is not None
            assert char in alphabet.blocks[symbol]
        assert alphabet.symbol_of("\n") is None

    def test_no_predicates_collapse_to_one_block(self):
        alphabet = Alphabet([])
        assert alphabet.num_symbols == 1
        assert alphabet.blocks[0] == frozenset(PRINTABLE_ALPHABET)


class TestRefinement:
    @given(_PREDICATES)
    @settings(max_examples=100, deadline=None)
    def test_every_block_is_inside_or_outside_each_predicate(self, predicates):
        alphabet = Alphabet(predicates)
        for predicate in predicates:
            for block in alphabet.blocks:
                assert block <= predicate or not (block & predicate), (
                    "block split by predicate",
                    sorted(block),
                    sorted(predicate),
                )

    @given(_PREDICATES)
    @settings(max_examples=100, deadline=None)
    def test_symbols_of_predicate_reconstructs_the_predicate(self, predicates):
        alphabet = Alphabet(predicates)
        for predicate in predicates:
            covered = set()
            for symbol in alphabet.symbols_of_predicate(predicate):
                covered |= alphabet.blocks[symbol]
            assert covered == predicate & set(PRINTABLE_ALPHABET)


class TestMembershipRoundTrip:
    @given(_PREDICATES)
    @settings(max_examples=100, deadline=None)
    def test_representative_is_indistinguishable_from_its_block(self, predicates):
        alphabet = Alphabet(predicates)
        for symbol in alphabet.symbols():
            representative = alphabet.representative(symbol)
            assert alphabet.symbol_of(representative) == symbol
            for predicate in predicates:
                for char in alphabet.blocks[symbol]:
                    assert (char in predicate) == (representative in predicate)

    @pytest.mark.parametrize("kind", ALL_CHAR_CLASSES)
    def test_class_boundary_chars_round_trip(self, kind):
        predicate = chars_of(kind)
        alphabet = Alphabet(_CLASS_PREDICATES)
        inside = alphabet.symbols_of_predicate(predicate)
        for char in _boundary_chars(predicate):
            symbol = alphabet.symbol_of(char)
            assert symbol is not None
            # Compressed membership == concrete membership, right at the edge.
            assert (symbol in inside) == (char in predicate), (kind, char)

    @given(st.text(alphabet=PRINTABLE_ALPHABET, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_encode_round_trips_membership(self, text):
        regex = r.Concat(r.NUM, r.Or(r.LET, r.literal(".")))
        alphabet = alphabet_for(regex)
        encoded = alphabet.encode(text)
        assert encoded is not None
        assert len(encoded) == len(text)
        for char, symbol in zip(text, encoded):
            assert char in alphabet.blocks[symbol]
            for predicate in predicates_of([regex]):
                assert (char in predicate) == (
                    alphabet.blocks[symbol] <= predicate
                )

    def test_extra_chars_stay_distinguishable(self):
        alphabet = alphabet_for(r.NUM, extra_chars="7")
        seven = alphabet.symbol_of("7")
        assert alphabet.blocks[seven] == frozenset("7")
        assert alphabet.symbol_of("8") != seven
