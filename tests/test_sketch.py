"""Tests for the hierarchical sketch language (syntax, parsing, semantics)."""

import pytest

from repro.dsl import (
    Concat,
    Contains,
    NUM,
    Not,
    Or,
    Repeat,
    RepeatRange,
    LET,
    literal,
    parse_regex,
)
from repro.sketch import (
    ConcreteRegexSketch,
    Hole,
    IntOpSketch,
    OpSketch,
    SketchParseError,
    concrete,
    hole,
    parse_sketch,
    sketch_components,
    sketch_contains,
    sketch_size,
    sketch_to_string,
)


class TestConstruction:
    def test_hole_wraps_regexes(self):
        h = hole(NUM, literal(","))
        assert isinstance(h, Hole)
        assert all(isinstance(c, ConcreteRegexSketch) for c in h.components)

    def test_op_sketch_arity_checked(self):
        with pytest.raises(ValueError):
            OpSketch("Concat", [hole(NUM)])
        with pytest.raises(ValueError):
            OpSketch("Bogus", [hole(NUM)])

    def test_int_op_sketch_defaults_symbolic(self):
        sk = IntOpSketch("RepeatRange", hole(NUM))
        assert sk.ints == (None, None)
        with pytest.raises(ValueError):
            IntOpSketch("Repeat", hole(NUM), (1, 2))


class TestPrinterParser:
    def test_round_trip_motivating_sketch(self):
        # The h-sketch of Eq. (1) in the paper.
        text = "Concat(Hole(<num>,<,>),Hole(RepeatRange(<num>,1,3),<,>))"
        sketch = parse_sketch(text)
        assert sketch_to_string(sketch) == text

    def test_round_trip_symbolic_ints(self):
        text = "RepeatAtLeast(Hole(<num>),?)"
        sketch = parse_sketch(text)
        assert isinstance(sketch, IntOpSketch)
        assert sketch.ints == (None,)
        assert sketch_to_string(sketch) == text

    def test_concrete_ops_collapse(self):
        sketch = parse_sketch("Concat(<num>,<let>)")
        assert isinstance(sketch, ConcreteRegexSketch)
        assert sketch.regex == Concat(NUM, LET)

    def test_empty_hole(self):
        sketch = parse_sketch("Hole()")
        assert sketch == Hole(())

    def test_parse_error(self):
        with pytest.raises(SketchParseError):
            parse_sketch("Hole(<num>")
        with pytest.raises(SketchParseError):
            parse_sketch("Frob(<num>)")

    def test_stackoverflow_gold_sketch(self):
        # Section 7: Or(Hole{Repeat(<let>,2), Repeat(<num>,6)}, Hole{Repeat(<num>,8)})
        text = "Or(Hole(Repeat(<let>,2),Repeat(<num>,6)),Hole(Repeat(<num>,8)))"
        sketch = parse_sketch(text)
        assert isinstance(sketch, OpSketch)
        assert sketch.op == "Or"


class TestSemantics:
    def test_example_3_1_positive(self):
        """Example 3.1: Concat(<num>, Contains(<,>)) is in the sketch's language."""
        sketch = parse_sketch("Concat(Hole(<,>,<num>),Hole(<,>,RepeatRange(<num>,1,3)))")
        regex = Concat(NUM, Contains(literal(",")))
        assert sketch_contains(sketch, regex, depth=2)

    def test_example_3_1_depth_restriction(self):
        """With depth 1 for the second hole the same regex is excluded."""
        sketch = parse_sketch("Concat(Hole(<,>,<num>),Hole(<,>,RepeatRange(<num>,1,3)))")
        regex = Concat(NUM, Contains(literal(",")))
        assert not sketch_contains(sketch, regex, depth=1)

    def test_concrete_component_must_match_exactly(self):
        sketch = concrete(Repeat(NUM, 3))
        assert sketch_contains(sketch, Repeat(NUM, 3))
        assert not sketch_contains(sketch, Repeat(NUM, 2))

    def test_int_op_sketch_matches_any_constant(self):
        sketch = IntOpSketch("Repeat", concrete(NUM))
        assert sketch_contains(sketch, Repeat(NUM, 2))
        assert sketch_contains(sketch, Repeat(NUM, 9))
        assert not sketch_contains(sketch, RepeatRange(NUM, 1, 3))

    def test_int_op_sketch_fixed_constant(self):
        sketch = IntOpSketch("Repeat", concrete(NUM), (3,))
        assert sketch_contains(sketch, Repeat(NUM, 3))
        assert not sketch_contains(sketch, Repeat(NUM, 4))

    def test_hole_requires_component_as_leaf(self):
        sketch = hole(literal(","))
        assert sketch_contains(sketch, literal(","), depth=2)
        assert sketch_contains(sketch, Not(literal(",")), depth=2)
        # A regex that never uses the comma component is excluded.
        assert not sketch_contains(sketch, Repeat(NUM, 2), depth=3)

    def test_unconstrained_hole_depth_bound(self):
        sketch = Hole(())
        assert sketch_contains(sketch, NUM, depth=1)
        assert sketch_contains(sketch, Repeat(NUM, 2), depth=2)
        assert not sketch_contains(sketch, Not(Repeat(NUM, 2)), depth=2)

    def test_motivating_example_solution_in_sketch(self):
        """The final regex of Section 2 belongs to the Eq. (1) h-sketch."""
        sketch = parse_sketch(
            "Concat(Hole(<num>,<,>),Hole(RepeatRange(<num>,1,3),<,>))"
        )
        regex = parse_regex(
            "Concat(RepeatRange(<num>,1,15),Optional(Concat(<.>,RepeatRange(<num>,1,3))))"
        )
        assert sketch_contains(sketch, regex, depth=3)


class TestUtilities:
    def test_sketch_components(self):
        sketch = parse_sketch("Concat(Hole(<num>,<,>),Hole(RepeatRange(<num>,1,3)))")
        components = sketch_components(sketch)
        assert len(components) == 3

    def test_sketch_size(self):
        sketch = parse_sketch("Concat(Hole(<num>),Hole(<,>))")
        assert sketch_size(sketch) == 5
