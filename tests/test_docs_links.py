"""Dead-link checker over the markdown docs.

Every relative link in ``README.md``, ``docs/*.md``, and the other top-level
markdown files must resolve to a real file; ``path#anchor`` links must also
hit a real heading (GitHub slug rules).  External ``http(s)``/``mailto``
links are out of scope — this guards the docs *site's* internal integrity,
which is what rots silently when files move.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

DOCS = sorted(
    [
        ROOT / "README.md",
        ROOT / "DESIGN.md",
        ROOT / "EXPERIMENTS.md",
        *(ROOT / "docs").glob("*.md"),
    ]
)

#: Inline markdown links: [text](target), skipping images and code spans.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor rule: lowercase, drop punctuation, dashes."""
    heading = re.sub(r"[`*]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match) for match in _HEADING.findall(text)}


def links_of(path: pathlib.Path) -> list:
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return _LINK.findall(text)


def test_doc_set_is_nonempty():
    assert (ROOT / "docs" / "api.md").is_file()
    assert (ROOT / "docs" / "architecture.md").is_file()
    assert (ROOT / "docs" / "deployment.md").is_file()


@pytest.mark.parametrize("doc", DOCS, ids=lambda path: str(path.relative_to(ROOT)))
def test_relative_links_resolve(doc):
    broken = []
    for target in links_of(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        if path_part and not resolved.exists():
            broken.append(f"{target} (missing file)")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                broken.append(f"{target} (missing anchor)")
    assert not broken, f"dead links in {doc.name}: {broken}"


def test_readme_links_to_the_docs_site():
    text = (ROOT / "README.md").read_text(encoding="utf-8")
    for target in ("docs/api.md", "docs/architecture.md", "docs/deployment.md"):
        assert target in text, f"README must link to {target}"
