"""Tests for ``tools/check_invariants.py`` (the repository-invariant linter).

Two halves: the real tree must be clean (that is the CI gate), and each
invariant must actually fire on a synthetic violation — otherwise the green
check proves nothing.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_invariants", REPO_ROOT / "tools" / "check_invariants.py"
)
check_invariants = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_invariants)


def _check_source(tmp_path, source, relative="repro/fake.py"):
    path = tmp_path / "fake.py"
    path.write_text(source, encoding="utf-8")
    return check_invariants.check_file(path, relative=relative)


class TestRealTree:
    def test_src_tree_is_clean(self):
        assert check_invariants.check_tree() == []


class TestFrozenMutation:
    def test_setattr_outside_lifecycle_modules_flagged(self, tmp_path):
        findings = _check_source(
            tmp_path, "def poke(node):\n    object.__setattr__(node, 'x', 1)\n"
        )
        assert [f[2] for f in findings] == ["frozen-mutation"]

    def test_setattr_in_lifecycle_module_allowed(self, tmp_path):
        findings = _check_source(
            tmp_path,
            "def poke(node):\n    object.__setattr__(node, 'x', 1)\n",
            relative="repro/dsl/ast.py",
        )
        assert findings == []


class TestLegacyImport:
    def test_from_import_flagged(self, tmp_path):
        findings = _check_source(
            tmp_path, "from repro.solver.legacy import LegacySolver\n"
        )
        assert [f[2] for f in findings] == ["legacy-import"]

    def test_plain_import_flagged(self, tmp_path):
        findings = _check_source(tmp_path, "import repro.solver.legacy\n")
        assert [f[2] for f in findings] == ["legacy-import"]

    def test_reexport_from_solver_package_flagged(self, tmp_path):
        findings = _check_source(
            tmp_path, "from repro.solver import legacy\n"
        )
        assert [f[2] for f in findings] == ["legacy-import"]

    def test_owning_package_allowed(self, tmp_path):
        findings = _check_source(
            tmp_path,
            "from repro.solver.legacy import LegacySolver\n",
            relative="repro/solver/__init__.py",
        )
        assert findings == []

    def test_normal_solver_import_allowed(self, tmp_path):
        findings = _check_source(tmp_path, "from repro.solver import Solver\n")
        assert findings == []


class TestUnregisteredMutable:
    def test_empty_dict_flagged(self, tmp_path):
        findings = _check_source(tmp_path, "_CACHE = {}\n")
        assert [f[2] for f in findings] == ["unregistered-mutable"]

    def test_empty_constructor_flagged(self, tmp_path):
        source = "import weakref\n_CACHE = weakref.WeakKeyDictionary()\n"
        findings = _check_source(tmp_path, source)
        assert [f[2] for f in findings] == ["unregistered-mutable"]

    def test_registered_cache_allowed(self, tmp_path):
        source = (
            "from repro import caches\n"
            "_CACHE = caches.register_cache('fake._CACHE', caches.GuardedDict())\n"
        )
        assert _check_source(tmp_path, source) == []

    def test_literal_table_allowed(self, tmp_path):
        # Tables built in full at import time are read-only by convention.
        assert _check_source(tmp_path, "_OPERATORS = {'Or': 2, 'Not': 1}\n") == []

    def test_dunder_all_allowed(self, tmp_path):
        assert _check_source(tmp_path, "__all__ = []\n") == []

    def test_function_local_containers_allowed(self, tmp_path):
        source = "def build():\n    cache = {}\n    return cache\n"
        assert _check_source(tmp_path, source) == []
