"""Tests for DSL printing, parsing, round-trips, and Python-regex export."""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsl import (
    ANY,
    And,
    Concat,
    Contains,
    Epsilon,
    KleeneStar,
    LET,
    NUM,
    Not,
    Optional,
    Or,
    Repeat,
    RepeatAtLeast,
    RepeatRange,
    RegexParseError,
    StartsWith,
    UnsupportedConstructError,
    literal,
    matches,
    parse_regex,
    to_dsl_string,
    to_python_regex,
)


class TestPrinter:
    def test_simple_notation(self):
        regex = Concat(RepeatRange(NUM, 1, 15), Optional(Concat(literal("."), NUM)))
        text = to_dsl_string(regex)
        assert text == "Concat(RepeatRange(<num>,1,15),Optional(Concat(<.>,<num>)))"

    def test_space_literal_named(self):
        assert to_dsl_string(literal(" ")) == "<space>"

    def test_epsilon_and_empty(self):
        assert to_dsl_string(Epsilon()) == "<eps>"
        assert "null" in to_dsl_string(parse_regex("<null>"))


class TestParser:
    def test_round_trip_simple(self):
        text = "Or(Repeat(<let>,2),RepeatAtLeast(<num>,3))"
        assert to_dsl_string(parse_regex(text)) == text

    def test_parse_with_whitespace(self):
        regex = parse_regex("Concat( <num> , <let> )")
        assert regex == Concat(NUM, LET)

    def test_parse_named_space(self):
        assert parse_regex("<space>") == literal(" ")

    def test_parse_angle_literals(self):
        assert parse_regex("<.>") == literal(".")
        assert parse_regex("<,>") == literal(",")

    def test_parse_error_unknown_operator(self):
        with pytest.raises(RegexParseError):
            parse_regex("Bogus(<num>)")

    def test_parse_error_trailing(self):
        with pytest.raises(RegexParseError):
            parse_regex("<num>)")

    def test_parse_error_bad_arity(self):
        with pytest.raises(RegexParseError):
            parse_regex("Repeat(<num>)")


# ---------------------------------------------------------------------------
# Property-based round trip and Python-regex agreement
# ---------------------------------------------------------------------------

_LEAVES = st.sampled_from([NUM, LET, ANY, literal("."), literal("-"), literal("a")])


def _regex_strategy():
    return st.recursive(
        _LEAVES,
        lambda children: st.one_of(
            st.builds(Optional, children),
            st.builds(KleeneStar, children),
            st.builds(Not, children),
            st.builds(Contains, children),
            st.builds(StartsWith, children),
            st.builds(Concat, children, children),
            st.builds(Or, children, children),
            st.builds(And, children, children),
            st.builds(Repeat, children, st.integers(1, 3)),
            st.builds(RepeatAtLeast, children, st.integers(1, 2)),
            st.builds(RepeatRange, children, st.integers(1, 2), st.integers(2, 4)),
        ),
        max_leaves=8,
    )


class TestRoundTripProperties:
    @given(_regex_strategy())
    @settings(max_examples=150, deadline=None)
    def test_print_parse_round_trip(self, regex):
        assert parse_regex(to_dsl_string(regex)) == regex


class TestPythonRegexExport:
    def test_not_and_unsupported(self):
        with pytest.raises(UnsupportedConstructError):
            to_python_regex(Not(NUM))
        with pytest.raises(UnsupportedConstructError):
            to_python_regex(And(NUM, ANY))

    @given(
        _regex_strategy().filter(
            lambda r: not any(isinstance(n, (Not, And)) for n in r.walk())
        ),
        st.text(alphabet="ab1.-", max_size=6),
    )
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_dsl_semantics(self, regex, subject):
        """re.fullmatch on the exported pattern agrees with the DSL matcher."""
        pattern = to_python_regex(regex)
        expected = matches(regex, subject)
        got = re.fullmatch(pattern, subject, flags=re.DOTALL) is not None
        assert got == expected
