"""End-to-end tests for the PBE engine: encoding, InferConstants, and search."""

import pytest

from repro.dsl import (
    Concat,
    NUM,
    Optional,
    Repeat,
    RepeatAtLeast,
    RepeatRange,
    literal,
    matches,
    parse_regex,
)
from repro.sketch import Hole, concrete, hole, parse_sketch
from repro.solver import Solver
from repro.synthesis import (
    EngineVariant,
    Examples,
    PLeaf,
    POp,
    SymInt,
    SynthesisConfig,
    Synthesizer,
    constraint_for_examples,
    infer_constants,
    synthesize,
)
from repro.solver.terms import substitute, var_names
from repro.solver.solver import _evaluate  # type: ignore


class TestEncoding:
    def test_example_4_5_constraint(self):
        """The symbolic regex of Example 4.5 admits k1 + k2 <= 7 for example '12345.1'."""
        partial = POp(
            "Concat",
            (
                POp("Repeat", (PLeaf(parse_regex("Or(<.>,<num>)")),), (SymInt("k1"),)),
                POp(
                    "RepeatAtLeast",
                    (PLeaf(RepeatRange(NUM, 1, 3)),),
                    (SymInt("k2"),),
                ),
            ),
        )
        examples = Examples(["12345.1"], [])
        config = SynthesisConfig(max_kappa=30)
        formula, domains, kappas = constraint_for_examples(partial, examples, config)
        assert kappas == {"k1", "k2"}
        solver = Solver()
        # k1 = k2 = 1 is allowed; k1 = 7, k2 = 1 is allowed; k1 + k2 > 7 is not.
        assert solver.satisfiable(
            substitute(formula, {"k1": 1, "k2": 1}),
            {name: domains[name] for name in var_names(formula)},
        )
        assert not solver.satisfiable(
            substitute(formula, {"k1": 7, "k2": 2}),
            {name: domains[name] for name in var_names(formula)},
        )

    def test_constraint_respects_all_positive_examples(self):
        partial = POp("RepeatAtLeast", (PLeaf(NUM),), (SymInt("k1"),))
        examples = Examples(["123", "12345"], [])
        config = SynthesisConfig()
        formula, domains, _ = constraint_for_examples(partial, examples, config)
        solver = Solver()
        # RepeatAtLeast(<num>, k) requires k <= len(s) for every positive
        # example, so the shortest example (length 3) bounds k.
        assert solver.satisfiable(substitute(formula, {"k1": 3}), domains)
        assert not solver.satisfiable(substitute(formula, {"k1": 4}), domains)

    def test_exact_repeat_conflicting_lengths_unsat(self):
        partial = POp("Repeat", (PLeaf(NUM),), (SymInt("k1"),))
        examples = Examples(["123", "12345"], [])
        formula, domains, _ = constraint_for_examples(partial, examples, SynthesisConfig())
        # No single exact repeat count matches strings of length 3 and 5.
        assert Solver().solve(formula, domains, prefer=["k1"]) is None


class TestInferConstants:
    def test_infers_exact_repeat_count(self):
        partial = POp("Repeat", (PLeaf(NUM),), (SymInt("k1"),))
        examples = Examples(["1234"], ["123"])
        config = SynthesisConfig()
        candidates = infer_constants(partial, examples, config)
        regexes = [c for c in candidates]
        assert any(
            examples.consistent(_to_regex(c)) for c in regexes
        ), "expected Repeat(<num>,4) among the candidates"

    def test_prunes_against_negative_examples(self):
        partial = POp(
            "Concat",
            (
                POp("RepeatRange", (PLeaf(NUM),), (1, SymInt("k1"))),
                PLeaf(Optional(Concat(literal("."), RepeatRange(NUM, 1, 3)))),
            ),
        )
        examples = Examples(
            ["123456789.123", "12345.1", "123456789123456"],
            ["1234567891234567"],
        )
        config = SynthesisConfig(max_kappa=20)
        candidates = infer_constants(partial, examples, config)
        consistent = [c for c in candidates if examples.consistent(_to_regex(c))]
        assert consistent, "expected a consistent completion with k1 = 15"
        assert any(_to_regex(c) == parse_regex(
            "Concat(RepeatRange(<num>,1,15),Optional(Concat(<.>,RepeatRange(<num>,1,3))))"
        ) for c in consistent)


def _to_regex(partial):
    from repro.synthesis import to_regex

    return to_regex(partial)


class TestSynthesizer:
    def test_completes_concrete_sketch(self):
        result = synthesize(concrete(Repeat(NUM, 3)), ["123"], ["12"])
        assert result.solved
        assert result.best == Repeat(NUM, 3)

    def test_rejects_inconsistent_concrete_sketch(self):
        result = synthesize(concrete(Repeat(NUM, 3)), ["1234"], [])
        assert not result.solved

    def test_small_hole_search(self):
        """An unconstrained-but-shallow hole can still find Repeat(<num>, 2)."""
        config = SynthesisConfig(hole_depth=2, timeout=10.0)
        result = synthesize(
            hole(NUM), ["12", "99", "07"], ["1", "123", "ab"], config=config
        )
        assert result.solved
        regex = result.best
        assert matches(regex, "56")
        assert not matches(regex, "5")

    def test_sketch_guides_to_target(self):
        """A sketch with useful hints completes to a consistent regex."""
        sketch = parse_sketch("Concat(Hole(RepeatRange(<let>,1,3)),Hole(Repeat(<num>,2)))")
        config = SynthesisConfig(hole_depth=2, timeout=10.0)
        result = synthesize(
            sketch,
            ["ab12", "a34", "xyz99"],
            ["ab1", "1234", "abcd12"],
            config=config,
        )
        assert result.solved
        regex = result.best
        assert matches(regex, "zz55")
        assert not matches(regex, "zz5")

    def test_motivating_example_with_good_sketch(self):
        """Section 2 end-to-end: decimal(18,3) from the Eq. (1)-style sketch."""
        sketch = parse_sketch(
            "Concat(Hole(RepeatRange(<num>,1,15)),"
            "Hole(Optional(Concat(<.>,RepeatRange(<num>,1,3)))))"
        )
        positives = ["123456789.123", "123456789123456.12", "12345.1", "123456789123456"]
        negatives = ["1234567891234567", "123.1234", "1.12345", ".1234"]
        config = SynthesisConfig(hole_depth=2, timeout=15.0)
        result = synthesize(sketch, positives, negatives, config=config)
        assert result.solved
        regex = result.best
        assert all(matches(regex, p) for p in positives)
        assert not any(matches(regex, n) for n in negatives)

    def test_timeout_respected(self):
        config = SynthesisConfig(hole_depth=4, timeout=0.2)
        result = synthesize(hole(), ["aa1", "bb2"], ["zzz9"], config=config)
        assert result.elapsed < 5.0

    def test_variants_produce_same_answer_on_easy_problem(self):
        sketch = parse_sketch("Repeat(Hole(<num>),?)")
        for variant in EngineVariant:
            result = synthesize(sketch, ["123"], ["12", "1234"], variant=variant,
                                config=SynthesisConfig(timeout=10.0, hole_depth=2))
            assert result.solved, variant
            assert matches(result.best, "456")

    def test_multiple_results_ranked_by_size(self):
        config = SynthesisConfig(hole_depth=2, timeout=10.0, max_results=3)
        result = synthesize(hole(NUM), ["12", "34"], ["1", "abc"], config=config)
        assert result.solved
        sizes = [_size(r) for r in result.regexes]
        assert sizes == sorted(sizes)


def _size(regex):
    from repro.dsl.simplify import size

    return size(regex)
