"""Unit and property tests for the automaton substrate."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsl import (
    ANY,
    And,
    Concat,
    Contains,
    KleeneStar,
    LET,
    NUM,
    Not,
    Optional,
    Or,
    Repeat,
    RepeatAtLeast,
    RepeatRange,
    StartsWith,
    EndsWith,
    literal,
    matches,
)
from repro.automata import (
    Alphabet,
    alphabet_for,
    compile_regex,
    difference_witness,
    distinguishing_examples,
    enumerate_language,
    language_nonempty,
    regex_equivalent,
    regex_included,
    sample_negative,
    sample_positive,
)
from repro.automata.nfa import NFA


class TestAlphabet:
    def test_partition_covers_alphabet(self):
        alphabet = alphabet_for(NUM, LET)
        total = sum(len(block) for block in alphabet.blocks)
        assert total == len(set("".join("".join(b) for b in alphabet.blocks)))
        assert alphabet.symbol_of("5") is not None
        assert alphabet.symbol_of("5") != alphabet.symbol_of("x")

    def test_minterms_group_indistinguishable_chars(self):
        alphabet = alphabet_for(NUM)
        assert alphabet.symbol_of("3") == alphabet.symbol_of("7")
        assert alphabet.symbol_of("a") == alphabet.symbol_of("b")

    def test_extra_chars_refine(self):
        alphabet = alphabet_for(NUM, extra_chars="a")
        assert alphabet.symbol_of("a") != alphabet.symbol_of("b")

    def test_encode_unknown_char(self):
        alphabet = alphabet_for(NUM)
        assert alphabet.encode("ab\x00") is None

    def test_representative_is_member(self):
        alphabet = alphabet_for(NUM, literal("."))
        for symbol in alphabet.symbols():
            assert alphabet.representative(symbol) in alphabet.blocks[symbol]


class TestNFA:
    def test_manual_nfa_accepts(self):
        nfa = NFA(2)
        s1 = nfa.new_state()
        nfa.add_transition(nfa.start, 0, s1)
        nfa.add_transition(s1, 1, s1)
        nfa.add_accepting(s1)
        assert nfa.accepts_symbols([0])
        assert nfa.accepts_symbols([0, 1, 1])
        assert not nfa.accepts_symbols([1])
        dfa = nfa.determinize()
        assert dfa.accepts_symbols([0, 1])
        assert not dfa.accepts_symbols([])


class TestCompiledRegex:
    def test_membership_simple(self):
        compiled = compile_regex(RepeatAtLeast(NUM, 2))
        assert compiled.accepts("12")
        assert compiled.accepts("123456")
        assert not compiled.accepts("1")
        assert not compiled.accepts("1a")

    def test_not_and(self):
        compiled = compile_regex(And(RepeatAtLeast(ANY, 1), Not(Contains(NUM))))
        assert compiled.accepts("abc-")
        assert not compiled.accepts("ab1")
        assert not compiled.accepts("")

    def test_empty_language_detection(self):
        compiled = compile_regex(And(NUM, LET))
        assert compiled.is_empty()
        assert not language_nonempty(And(NUM, LET))
        assert language_nonempty(Or(NUM, LET))

    def test_shortest_example(self):
        compiled = compile_regex(Concat(Repeat(NUM, 2), literal("-")))
        example = compiled.shortest_example()
        assert example is not None
        assert len(example) == 3
        assert matches(Concat(Repeat(NUM, 2), literal("-")), example)

    def test_motivating_example_language(self):
        regex = Concat(
            RepeatRange(NUM, 1, 15),
            Optional(Concat(literal("."), RepeatRange(NUM, 1, 3))),
        )
        compiled = compile_regex(regex)
        assert compiled.accepts("123456789.123")
        assert compiled.accepts("123456789123456")
        assert not compiled.accepts("1234567891234567")
        assert not compiled.accepts(".1234")


class TestEquivalence:
    def test_optional_desugaring(self):
        # Optional(r) == Or(eps, r);   KleeneStar(r) == Optional(RepeatAtLeast(r,1))
        assert regex_equivalent(Optional(NUM), Or(NUM, Optional(And(NUM, LET))))
        assert regex_equivalent(KleeneStar(NUM), Optional(RepeatAtLeast(NUM, 1)))

    def test_repeat_range_unrolling(self):
        assert regex_equivalent(
            RepeatRange(NUM, 1, 2), Or(Repeat(NUM, 1), Repeat(NUM, 2))
        )

    def test_non_equivalent(self):
        assert not regex_equivalent(RepeatAtLeast(NUM, 1), RepeatAtLeast(NUM, 2))

    def test_inclusion(self):
        assert regex_included(Repeat(NUM, 3), RepeatAtLeast(NUM, 1))
        assert not regex_included(RepeatAtLeast(NUM, 1), Repeat(NUM, 3))

    def test_difference_witness(self):
        witness = difference_witness(RepeatAtLeast(NUM, 1), RepeatAtLeast(NUM, 2))
        assert witness is not None
        assert len(witness) == 1
        assert witness.isdigit()
        assert difference_witness(Repeat(NUM, 2), RepeatAtLeast(NUM, 1)) is None

    def test_containment_operators_equivalence(self):
        assert regex_equivalent(
            Contains(NUM), Concat(KleeneStar(ANY), Concat(NUM, KleeneStar(ANY)))
        )
        assert regex_equivalent(StartsWith(NUM), Concat(NUM, KleeneStar(ANY)))
        assert regex_equivalent(EndsWith(NUM), Concat(KleeneStar(ANY), NUM))


class TestSampling:
    def test_enumerate_language(self):
        strings = enumerate_language(RepeatRange(literal("a"), 1, 3), max_length=4)
        assert strings == ["a", "aa", "aaa"]

    def test_sample_positive_all_match(self):
        regex = Concat(RepeatRange(NUM, 1, 4), Optional(Concat(literal("."), NUM)))
        samples = sample_positive(regex, 6, random.Random(7))
        assert samples
        assert all(matches(regex, s) for s in samples)

    def test_sample_negative_all_reject(self):
        regex = Concat(RepeatRange(NUM, 1, 4), Optional(Concat(literal("."), NUM)))
        positives = sample_positive(regex, 5, random.Random(7))
        negatives = sample_negative(regex, 6, random.Random(8), positives=positives)
        assert negatives
        assert all(not matches(regex, s) for s in negatives)

    def test_distinguishing_examples_disagree(self):
        truth = RepeatRange(NUM, 1, 3)
        candidate = RepeatAtLeast(NUM, 1)
        pairs = distinguishing_examples(truth, candidate)
        assert pairs
        for text, should_match in pairs:
            assert matches(truth, text) == should_match
            assert matches(candidate, text) != should_match


# ---------------------------------------------------------------------------
# Property: automaton membership agrees with the direct DSL semantics
# ---------------------------------------------------------------------------

_LEAVES = st.sampled_from([NUM, LET, literal("."), literal("a")])

_REGEXES = st.recursive(
    _LEAVES,
    lambda children: st.one_of(
        st.builds(Optional, children),
        st.builds(KleeneStar, children),
        st.builds(Not, children),
        st.builds(Contains, children),
        st.builds(Concat, children, children),
        st.builds(Or, children, children),
        st.builds(And, children, children),
        st.builds(Repeat, children, st.integers(1, 3)),
        st.builds(RepeatRange, children, st.integers(1, 2), st.integers(2, 3)),
    ),
    max_leaves=6,
)


class TestAgreementWithSemantics:
    @given(_REGEXES, st.text(alphabet="a1.b", max_size=5))
    @settings(max_examples=120, deadline=None)
    def test_dfa_matches_iff_semantics_matches(self, regex, subject):
        compiled = compile_regex(regex, extra_chars=subject)
        assert compiled.accepts(subject) == matches(regex, subject)

    @given(_REGEXES)
    @settings(max_examples=60, deadline=None)
    def test_shortest_example_is_accepted(self, regex):
        compiled = compile_regex(regex)
        example = compiled.shortest_example()
        if example is not None:
            assert matches(regex, example)
        else:
            assert compiled.is_empty()
