"""Differential tests for the propagation-based solver.

The new compiled-store solver is pinned to two oracles on randomized
formulas, mirroring the ``RecursiveMatcher`` pattern of the evaluation layer:

* a **brute-force oracle** that enumerates every assignment of the (small)
  domains and evaluates the formula ground — SAT/UNSAT must agree, and every
  returned model must actually satisfy the formula,
* the **legacy backtracker** (:class:`repro.solver.legacy.LegacySolver`),
  the implementation the store replaced.

Plus behaviour tests for the incremental path: assumption literals,
push/pop frames, deadline and step budgets.
"""

import itertools
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import (
    Add,
    AndF,
    Cmp,
    Const,
    LegacySolver,
    Mul,
    NotF,
    OrF,
    Solver,
    TRUE,
    Var,
    conjoin,
    var_names,
)
from repro.solver import terms as T


# ---------------------------------------------------------------------------
# Ground evaluation (the specification)
# ---------------------------------------------------------------------------

def _term_value(term, env):
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return env[term.name]
    if isinstance(term, Add):
        return sum(_term_value(t, env) for t in term.terms)
    if isinstance(term, Mul):
        value = 1
        for t in term.terms:
            value *= _term_value(t, env)
        return value
    raise TypeError(term)


def _holds(formula, env):
    if isinstance(formula, T.BoolConst):
        return formula.value
    if isinstance(formula, Cmp):
        lhs, rhs = _term_value(formula.lhs, env), _term_value(formula.rhs, env)
        return {
            "<=": lhs <= rhs,
            "<": lhs < rhs,
            ">=": lhs >= rhs,
            ">": lhs > rhs,
            "==": lhs == rhs,
            "!=": lhs != rhs,
        }[formula.op]
    if isinstance(formula, AndF):
        return all(_holds(p, env) for p in formula.parts)
    if isinstance(formula, OrF):
        return any(_holds(p, env) for p in formula.parts)
    if isinstance(formula, NotF):
        return not _holds(formula.arg, env)
    if isinstance(formula, T.Exists):
        return _holds(formula.body, env)
    raise TypeError(formula)


def _brute_force_sat(formula, domains):
    names = sorted(domains)
    ranges = [range(domains[n][0], domains[n][1] + 1) for n in names]
    for values in itertools.product(*ranges):
        env = dict(zip(names, values))
        if _holds(formula, env):
            return env
    return None


# ---------------------------------------------------------------------------
# Random formula generation
# ---------------------------------------------------------------------------

_NAMES = ("a", "b", "c")

_terms = st.one_of(
    st.sampled_from(_NAMES).map(Var),
    st.integers(-3, 12).map(Const),
    st.tuples(st.sampled_from(_NAMES), st.sampled_from(_NAMES)).map(
        lambda pair: Add((Var(pair[0]), Var(pair[1])))
    ),
    st.tuples(st.sampled_from(_NAMES), st.sampled_from(_NAMES)).map(
        lambda pair: Mul((Var(pair[0]), Var(pair[1])))
    ),
    st.tuples(st.sampled_from(_NAMES), st.integers(1, 3)).map(
        lambda pair: Mul((Var(pair[0]), Const(pair[1])))
    ),
)

_atoms = st.tuples(
    st.sampled_from(("<=", "<", ">=", ">", "==", "!=")), _terms, _terms
).map(lambda t: Cmp(t[0], t[1], t[2]))


def _boolean(children):
    return st.one_of(
        st.lists(children, min_size=1, max_size=3).map(lambda ps: AndF(ps)),
        st.lists(children, min_size=1, max_size=3).map(lambda ps: OrF(ps)),
        children.map(NotF),
    )


_formulas = st.recursive(_atoms, _boolean, max_leaves=8)

_DOMAINS = {name: (0, 6) for name in _NAMES}


class TestDifferentialVsBruteForce:
    @given(st.lists(_formulas, min_size=1, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_sat_agrees_and_models_satisfy(self, parts):
        formula = conjoin(parts) if len(parts) > 1 else parts[0]
        oracle = _brute_force_sat(formula, _DOMAINS)
        model = Solver().solve(formula, _DOMAINS)
        if oracle is None:
            assert model is None, f"solver found spurious model {model}"
        else:
            assert model is not None, f"solver missed model {oracle}"
            env = {name: model.get(name, _DOMAINS[name][0]) for name in _NAMES}
            assert _holds(formula, env), f"model {model} does not satisfy"

    @given(st.lists(_formulas, min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_sat_agrees_with_legacy_backtracker(self, parts):
        formula = conjoin(parts) if len(parts) > 1 else parts[0]
        legacy = LegacySolver().solve(formula, _DOMAINS)
        model = Solver().solve(formula, _DOMAINS)
        assert (model is None) == (legacy is None)

    @given(st.lists(_formulas, min_size=1, max_size=3), st.integers(0, 6))
    @settings(max_examples=100, deadline=None)
    def test_assumptions_equal_conjoined_constraints(self, parts, pin):
        """solve(assumptions) ≡ solving the conjunction with the literal."""
        formula = conjoin(parts) if len(parts) > 1 else parts[0]
        instance = Solver().compile(formula, _DOMAINS)
        assumed = instance.solve([("a", "==", pin)])
        conjoined = Solver().solve(
            conjoin([formula, Cmp("==", Var("a"), Const(pin))]), _DOMAINS
        )
        assert (assumed is None) == (conjoined is None)
        if assumed is not None:
            env = {name: assumed.get(name, _DOMAINS[name][0]) for name in _NAMES}
            assert env["a"] == pin
            assert _holds(formula, env)


class TestIncrementalEnumeration:
    def _formula(self):
        return AndF([
            Cmp("<=", Add((Var("k1"), Var("k2"))), Const(7)),
            Cmp(">=", Var("k1"), Const(1)),
            Cmp(">=", Var("k2"), Const(1)),
        ])

    def test_blocking_assumptions_match_legacy_blocking_clauses(self):
        """Enumerating k1 by assumption literals = legacy conjoined blocking."""
        domains = {"k1": (1, 30), "k2": (1, 30)}
        instance = Solver().compile(self._formula(), domains, shared=("k1", "k2"))
        new_seen = []
        assumptions = []
        while True:
            model = instance.solve(assumptions, prefer=["k1", "k2"])
            if model is None or len(new_seen) >= 10:
                break
            new_seen.append(model["k1"])
            assumptions.append(("k1", "!=", model["k1"]))

        legacy_seen = []
        legacy = LegacySolver()
        blocked = self._formula()
        while True:
            model = legacy.solve(blocked, domains, prefer=["k1", "k2"])
            if model is None or len(legacy_seen) >= 10:
                break
            legacy_seen.append(model["k1"])
            blocked = AndF([blocked, NotF(Cmp("==", Var("k1"), Const(model["k1"])))])

        assert new_seen == legacy_seen == [1, 2, 3, 4, 5, 6]

    def test_push_pop_frames(self):
        domains = {"k1": (1, 30), "k2": (1, 30)}
        instance = Solver().compile(self._formula(), domains, shared=("k1",))
        assert instance.solve()["k1"] == 1
        instance.push(Cmp(">=", Var("k1"), Const(4)))
        assert instance.solve()["k1"] == 4
        instance.push(Cmp("==", Var("k2"), Const(3)))
        model = instance.solve()
        assert model["k1"] == 4 and model["k2"] == 3
        instance.pop()
        instance.pop()
        assert instance.solve()["k1"] == 1

    def test_push_unsat_frame_then_pop(self):
        domains = {"k1": (1, 30), "k2": (1, 30)}
        instance = Solver().compile(self._formula(), domains)
        instance.push(T.FALSE)
        assert instance.solve() is None
        instance.pop()
        assert instance.solve() is not None

    def test_assumption_on_variable_outside_the_formula(self):
        """Blocking literals may name κ the encoding never mentions."""
        instance = Solver().compile(TRUE, {"k": (1, 5)})
        model = instance.solve([("k", "!=", 1), ("k", "!=", 2)])
        assert model["k"] == 3
        assert instance.solve(
            [("k", "!=", v) for v in range(1, 6)]
        ) is None


class TestPropagationSoundness:
    def test_self_requeue_after_own_narrowing(self):
        """A conjunct that narrows its own variables must be revised again.

        Regression: HC4 narrows each monomial against totals computed before
        the narrowing, so a conjunct's own revision can leave its variables
        in a violating box; the propagation worklist must let the revising
        conjunct wake itself.  This instance once returned {'b': 0, 'c': 5}
        for an UNSAT conjunction.
        """
        formula = NotF(
            Cmp(
                "<=",
                Mul((Add((Const(8), Var("b"))), Add((Const(-3), Var("c"))))),
                Mul((Add((Var("c"), Const(4))), Add((Const(1), Var("c"))))),
            )
        )
        domains = {"b": (0, 5), "c": (0, 5)}
        instance = Solver().compile(formula, domains, shared=("b", "c"))
        model = instance.solve([("b", "<", 4)])
        blocked = conjoin([formula, Cmp("<", Var("b"), Const(4))])
        assert _brute_force_sat(blocked, domains) is None
        assert model is None

    def test_fixpoint_cache_isolated_between_solves(self):
        """Assumption narrowing must never leak into later solves."""
        formula = Cmp("<=", Add((Var("a"), Var("b"))), Const(6))
        instance = Solver().compile(formula, {"a": (0, 6), "b": (0, 6)})
        pinned = instance.solve([("a", ">=", 5)])
        assert pinned["a"] == 5
        fresh = instance.solve()
        assert fresh["a"] == 0


class TestBudgets:
    def test_deadline_raises_runtime_error(self):
        domains = {name: (0, 50) for name in ("a", "b", "c")}
        formula = AndF([
            Cmp("==", Add((Var("a"), Var("b"), Var("c"))), Const(75)),
            Cmp("!=", Add((Var("a"), Var("b"))), Const(50)),
        ])
        instance = Solver().compile(formula, domains)
        with pytest.raises(RuntimeError, match="deadline"):
            instance.solve(deadline=time.monotonic() - 1.0)

    def test_step_budget_raises_runtime_error(self):
        # Propagation alone cannot decide this; branching burns steps.
        domains = {name: (0, 20) for name in ("a", "b")}
        formula = OrF([
            Cmp("==", Mul((Var("a"), Var("b"))), Const(391)),
            Cmp("==", Mul((Var("a"), Var("b"))), Const(389)),
        ])
        with pytest.raises(RuntimeError, match="step budget"):
            Solver(max_steps=3).solve(formula, domains)

    def test_satisfiable_respects_deadline(self):
        domains = {name: (0, 50) for name in ("a", "b", "c")}
        formula = Cmp("==", Add((Var("a"), Var("b"), Var("c"))), Const(75))
        with pytest.raises(RuntimeError, match="deadline"):
            Solver().satisfiable(formula, domains, deadline=time.monotonic() - 1.0)

    def test_satisfiable_threads_prefer(self):
        formula = Cmp("<=", Add((Var("k"), Var("x"))), Const(10))
        assert Solver().satisfiable(
            formula, {"k": (1, 30), "x": (0, 30)}, prefer=["k"]
        )


class TestStatsCounters:
    def test_propagation_and_model_counters_advance(self):
        solver = Solver()
        formula = AndF([
            Cmp("==", Add((Var("a"), Var("b"))), Const(9)),
            Cmp(">=", Var("a"), Const(4)),
        ])
        model = solver.solve(formula, {"a": (0, 9), "b": (0, 9)})
        assert model is not None
        assert solver.stats.models == 1
        assert solver.stats.propagations > 0

    def test_conflict_counter_advances_on_unsat(self):
        solver = Solver()
        formula = AndF([
            Cmp(">=", Var("a"), Const(5)),
            Cmp("<=", Var("a"), Const(3)),
        ])
        assert solver.solve(formula, {"a": (0, 9)}) is None
        assert solver.stats.conflicts > 0
