"""Tests for the bounded-integer constraint solver (the Z3 substitute)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import (
    Add,
    AndF,
    Cmp,
    Const,
    Exists,
    FALSE,
    Mul,
    NotF,
    OrF,
    Solver,
    TRUE,
    Var,
    conjoin,
    disjoin,
    var_names,
)
from repro.solver.terms import substitute


def _check(model, formula_fn):
    """Evaluate a ground formula checker against a model."""
    assert model is not None
    assert formula_fn(model)


class TestTermsAndFormulas:
    def test_operator_sugar(self):
        term = Var("x") + 3
        assert isinstance(term, Add)
        product = Var("x") * Var("k")
        assert isinstance(product, Mul)

    def test_cmp_validates_operator(self):
        with pytest.raises(ValueError):
            Cmp("<>", Var("x"), Const(1))

    def test_conjoin_simplifications(self):
        assert conjoin([TRUE, TRUE]) == TRUE
        assert conjoin([TRUE, FALSE]) == FALSE
        atom = Cmp("<=", Var("x"), Const(3))
        assert conjoin([atom]) == atom

    def test_disjoin_simplifications(self):
        assert disjoin([]) == FALSE
        assert disjoin([FALSE, TRUE]) == TRUE

    def test_var_names_includes_bound(self):
        formula = Exists(["x1"], Cmp("==", Var("x1"), Var("k")))
        assert var_names(formula) == {"x1", "k"}

    def test_substitute(self):
        formula = Cmp("<=", Add((Var("x"), Var("k"))), Const(5))
        ground = substitute(formula, {"x": 2, "k": 3})
        assert var_names(ground) == set()


class TestSolverBasics:
    def test_trivially_true(self):
        assert Solver().solve(TRUE, {}) == {}

    def test_trivially_false(self):
        assert Solver().solve(FALSE, {}) is None

    def test_simple_inequality(self):
        formula = Cmp("<=", Add((Var("k1"), Var("k2"))), Const(7))
        model = Solver().solve(formula, {"k1": (1, 30), "k2": (1, 30)})
        _check(model, lambda m: m["k1"] + m["k2"] <= 7)

    def test_unsat_bounds(self):
        formula = AndF([
            Cmp(">=", Var("k"), Const(5)),
            Cmp("<=", Var("k"), Const(3)),
        ])
        assert Solver().solve(formula, {"k": (1, 30)}) is None

    def test_equality_and_disjunction(self):
        formula = OrF([
            Cmp("==", Var("x"), Const(4)),
            Cmp("==", Var("x"), Const(9)),
        ])
        model = Solver().solve(formula, {"x": (0, 20)})
        _check(model, lambda m: m["x"] in (4, 9))

    def test_negation(self):
        formula = AndF([
            NotF(Cmp("==", Var("k"), Const(1))),
            Cmp("<=", Var("k"), Const(2)),
        ])
        model = Solver().solve(formula, {"k": (1, 5)})
        _check(model, lambda m: m["k"] == 2)

    def test_nonlinear_product(self):
        # x = k1 * k2, x == 12, k1 < k2
        formula = AndF([
            Cmp("==", Var("x"), Mul((Var("k1"), Var("k2")))),
            Cmp("==", Var("x"), Const(12)),
            Cmp("<", Var("k1"), Var("k2")),
        ])
        model = Solver().solve(formula, {"x": (0, 20), "k1": (1, 12), "k2": (1, 12)})
        _check(model, lambda m: m["k1"] * m["k2"] == 12 and m["k1"] < m["k2"])

    def test_exists_is_flattened(self):
        formula = Exists(
            ["x1"],
            AndF([
                Cmp("==", Var("x"), Add((Var("x1"), Var("k")))),
                Cmp(">=", Var("x1"), Const(2)),
            ]),
        )
        model = Solver().solve(
            substitute(formula, {"x": 5}), {"x1": (0, 10), "k": (1, 10)}
        )
        _check(model, lambda m: m["x1"] + m["k"] == 5 and m["x1"] >= 2)

    def test_prefer_order_respected_for_branching(self):
        formula = Cmp("<=", Add((Var("k"), Var("x"))), Const(10))
        model = Solver().solve(formula, {"k": (1, 30), "x": (0, 30)}, prefer=["k"])
        _check(model, lambda m: m["k"] + m["x"] <= 10)


class TestPaperExample:
    """Example 4.6 of the paper: kappa1 + kappa2 <= 7 with both in [1, MAX]."""

    def test_example_4_6(self):
        max_bound = 30
        formula = AndF([
            Cmp("<=", Add((Var("k1"), Var("k2"))), Const(7)),
            Cmp(">=", Var("k1"), Const(1)),
            Cmp(">=", Var("k2"), Const(1)),
        ])
        solver = Solver()
        domains = {"k1": (1, max_bound), "k2": (1, max_bound)}
        model = solver.solve(formula, domains, prefer=["k1", "k2"])
        _check(model, lambda m: m["k1"] + m["k2"] <= 7)

        # Blocking clause loop: enumerate several distinct models of k1.
        seen = set()
        blocked = formula
        for _ in range(4):
            model = solver.solve(blocked, domains, prefer=["k1", "k2"])
            if model is None:
                break
            seen.add(model["k1"])
            blocked = AndF([blocked, NotF(Cmp("==", Var("k1"), Const(model["k1"])))])
        assert len(seen) >= 3


class TestComponentDecomposition:
    def test_independent_conjuncts_solved(self):
        # Two groups sharing only the symbolic integer k.
        parts = []
        for index, total in enumerate((7, 12)):
            x = Var(f"x{index}")
            parts.append(Cmp("==", Const(total), Add((x, Var("k")))))
            parts.append(Cmp(">=", x, Const(1)))
        formula = AndF(parts)
        domains = {"k": (1, 30), "x0": (0, 30), "x1": (0, 30)}
        model = Solver().solve(formula, domains, prefer=["k"])
        _check(
            model,
            lambda m: m["x0"] + m["k"] == 7 and m["x1"] + m["k"] == 12 and m["x0"] >= 1,
        )

    def test_many_independent_examples_fast(self):
        # 8 independent example groups; naive search over the cross product
        # would be hopeless, component decomposition makes it immediate.
        parts = [Cmp("<=", Var("k"), Const(5))]
        domains = {"k": (1, 30)}
        for index in range(8):
            x = Var(f"x{index}")
            y = Var(f"y{index}")
            parts.append(Cmp("==", Const(10 + index), Add((x, y, Var("k")))))
            domains[f"x{index}"] = (0, 30)
            domains[f"y{index}"] = (0, 30)
        model = Solver(max_steps=50_000).solve(AndF(parts), domains, prefer=["k"])
        assert model is not None
        for index in range(8):
            assert model[f"x{index}"] + model[f"y{index}"] + model["k"] == 10 + index


class TestSolverProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["<=", ">=", "==", "<", ">", "!="]),
                st.sampled_from(["a", "b", "c"]),
                st.integers(0, 10),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_models_satisfy_constraints(self, atoms):
        formula = AndF([Cmp(op, Var(name), Const(value)) for op, name, value in atoms])
        domains = {name: (0, 10) for name in "abc"}
        model = Solver().solve(formula, domains)
        if model is None:
            # Cross-check UNSAT by brute force.
            found = False
            for a in range(11):
                for b in range(11):
                    for c in range(11):
                        env = {"a": a, "b": b, "c": c}
                        if all(_holds(op, env[name], value) for op, name, value in atoms):
                            found = True
            assert not found
        else:
            for op, name, value in atoms:
                assert _holds(op, model[name], value)


def _holds(op, lhs, rhs):
    return {
        "<=": lhs <= rhs,
        ">=": lhs >= rhs,
        "==": lhs == rhs,
        "!=": lhs != rhs,
        "<": lhs < rhs,
        ">": lhs > rhs,
    }[op]
